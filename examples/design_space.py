#!/usr/bin/env python3
"""Design-space exploration with the public experiment API.

Reproduces the paper's two tuning studies interactively:

- Fig. 4 / §III-A — how long should the duplication history window be?
- Fig. 21 / §IV-E2 — how big must the metadata caches be, and how much
  does prefetch granularity matter?

and adds the repository's own ablations (PNA, verify-read bound).

Run:  python examples/design_space.py  [--accesses N]
"""

from __future__ import annotations

import argparse
import statistics

from repro.analysis import (
    ExperimentSettings,
    metadata_cache_sweep,
    prediction_accuracy_survey,
)
from repro.analysis.reporting import Table
from repro.core.config import DeWriteConfig
from repro.core.dewrite import DeWriteController
from repro.nvm.memory import NvmMainMemory
from repro.system import simulate


def history_window_study(settings: ExperimentSettings) -> None:
    print(prediction_accuracy_survey(settings, windows=(1, 2, 3, 5, 8)).render())
    print()


def cache_sizing_study(settings: ExperimentSettings) -> None:
    table = metadata_cache_sweep(
        settings,
        cache_sizes_kb=(64, 256, 512),
        prefetch_entries=(64, 256, 1024),
    )
    print(table.render())
    print()


def pna_and_verify_study(settings: ExperimentSettings) -> None:
    table = Table(
        "PNA and verify-read bound vs eliminated writes",
        ["configuration", "write_reduction", "mean_write_ns", "metadata_reads"],
    )
    configs = {
        "paper defaults": DeWriteConfig(),
        "PNA off": DeWriteConfig(enable_pna=False),
        "1 verify read": DeWriteConfig(max_verify_reads=1),
        "4 verify reads": DeWriteConfig(max_verify_reads=4),
    }
    for label, config in configs.items():
        reductions, latencies, reads = [], [], []
        for profile in settings.profiles():
            controller = DeWriteController(NvmMainMemory(), config=config)
            simulate(controller, settings.trace_for(profile), settings.core_config)
            reductions.append(controller.stats.write_reduction)
            latencies.append(controller.stats.write_latency.mean_ns)
            reads.append(controller.stats.metadata_reads)
        table.add_row(
            label,
            statistics.fmean(reductions),
            statistics.fmean(latencies),
            statistics.fmean(reads),
        )
    print(table.render())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--accesses", type=int, default=8_000)
    args = parser.parse_args()

    settings = ExperimentSettings(
        accesses=args.accesses,
        applications=("lbm", "cactusADM", "mcf", "sjeng", "gcc", "vips"),
    )
    history_window_study(settings)
    cache_sizing_study(settings)
    pna_and_verify_study(settings)


if __name__ == "__main__":
    main()
