#!/usr/bin/env python3
"""Endurance study: how much device lifetime does DeWrite buy?

PCM cells endure ~10^8 writes (paper §I).  This example replays the
paper's application mix through the traditional secure-NVM controller and
through DeWrite on identical devices, then converts the measured cell-flip
rates into projected device lifetimes under ideal wear levelling.

Run:  python examples/endurance_study.py  [--apps lbm,mcf,...] [--accesses N]
"""

from __future__ import annotations

import argparse

from repro import DeWriteController, NvmMainMemory
from repro.baselines import TraditionalSecureNvmController
from repro.nvm import StartGapConfig, WearLevelledNvm
from repro.system import simulate
from repro.workloads import ALL_PROFILES, generate_trace, profile_by_name


def projected_lifetime_years(
    nvm: NvmMainMemory, makespan_ns: float, duty_cycle: float = 1.0
) -> float:
    """Lifetime under ideal wear levelling (see WearTracker for the model)."""
    return nvm.wear.projected_lifetime_years(
        total_lines=nvm.config.organization.total_lines,
        line_bits=nvm.config.line_bits,
        cell_endurance_writes=nvm.config.cell_endurance_writes,
        makespan_ns=makespan_ns,
        duty_cycle=duty_cycle,
    )


def print_heatmaps(profile_name: str, baseline: NvmMainMemory, dewrite: NvmMainMemory) -> None:
    """Side-by-side wear heatmaps over the touched address range."""
    from repro.analysis.charts import render_heatmap

    for label, nvm in (("baseline", baseline), ("dewrite", dewrite)):
        highest = nvm.wear.highest_line_written()
        touched = (highest + 1) if highest is not None else 1
        grid = nvm.wear.heatmap_grid(touched, rows=4, cols=48, metric="flips")
        print()
        print(
            render_heatmap(
                grid,
                title=f"{profile_name} / {label}: bit flips over lines [0, {touched})",
                cell_label="flips",
            )
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", default="", help="comma-separated subset (default: all 20)")
    parser.add_argument("--accesses", type=int, default=12_000)
    parser.add_argument(
        "--wear-level",
        action="store_true",
        help="run both systems on Start-Gap wear-levelled devices and "
        "additionally report the hottest-line write count",
    )
    parser.add_argument(
        "--heatmap",
        action="store_true",
        help="also render per-application ASCII wear heatmaps "
        "(bit flips over the touched address range)",
    )
    args = parser.parse_args()

    if args.apps:
        profiles = [profile_by_name(name.strip()) for name in args.apps.split(",")]
    else:
        profiles = list(ALL_PROFILES)

    header = (
        f"{'application':15s}{'writes saved':>13s}{'flips saved':>12s}"
        f"{'lifetime x':>11s}{'base yrs':>10s}{'dewrite yrs':>12s}"
    )
    if args.wear_level:
        header += f"{'hot line b/d':>14s}"
    print(header)
    factors = []
    for profile in profiles:
        trace = generate_trace(profile, args.accesses, seed=1)
        baseline_nvm = NvmMainMemory()
        dewrite_nvm = NvmMainMemory()
        if args.wear_level:
            gap = StartGapConfig(gap_interval=100)
            baseline_device = WearLevelledNvm(baseline_nvm, config=gap)
            dewrite_device = WearLevelledNvm(dewrite_nvm, config=gap)
        else:
            baseline_device, dewrite_device = baseline_nvm, dewrite_nvm
        base_report = simulate(TraditionalSecureNvmController(baseline_device), trace)
        dewrite = DeWriteController(dewrite_device)
        dw_report = simulate(dewrite, trace)

        factor = dewrite_nvm.wear.lifetime_factor(baseline_nvm.wear)
        factors.append(factor)
        base_years = projected_lifetime_years(baseline_nvm, base_report.makespan_ns)
        dewrite_years = projected_lifetime_years(dewrite_nvm, dw_report.makespan_ns)
        base_flips = baseline_nvm.wear.summary().total_bit_flips
        dw_flips = dewrite_nvm.wear.summary().total_bit_flips
        row = (
            f"{profile.name:15s}"
            f"{dewrite.stats.write_reduction:>12.0%}"
            f"{1 - dw_flips / base_flips:>12.0%}"
            f"{factor:>10.2f}x"
            f"{base_years:>10.1f}"
            f"{dewrite_years:>12.1f}"
        )
        if args.wear_level:
            base_hot = baseline_nvm.wear.summary().max_line_writes
            dw_hot = dewrite_nvm.wear.summary().max_line_writes
            row += f"{base_hot:>7d}/{dw_hot:<6d}"
        print(row)
        if args.heatmap:
            print_heatmaps(profile.name, baseline_nvm, dewrite_nvm)

    mean_factor = sum(factors) / len(factors)
    print(f"\naverage lifetime extension: {mean_factor:.2f}x across {len(profiles)} applications")
    print("(lifetimes assume ideal wear levelling and continuous duty; the")
    print(" ratio, not the absolute years, is the meaningful number)")


if __name__ == "__main__":
    main()
