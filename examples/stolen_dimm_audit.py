#!/usr/bin/env python3
"""Stolen-DIMM audit: what does an attacker actually see at rest?

The paper's threat model (§II-A): an attacker steals the NVM DIMM (or
snoops the bus) and streams out its contents.  This example writes
recognisable secrets through four controllers, then plays the attacker —
scanning the raw device image for the plaintext — and reports who leaked.

It also demonstrates why deduplication does NOT weaken the at-rest story:
DeWrite's duplicate elimination happens before encryption decides bits,
and each stored line's ciphertext is still under a unique (address,
counter) pad.

Run:  python examples/stolen_dimm_audit.py
"""

from __future__ import annotations

from repro import DeWriteController, NvmMainMemory
from repro.baselines import INvmmController, TraditionalSecureNvmController

LINE = 256
SECRET = b"TOP-SECRET:customer-keys-0042"


class UnencryptedNvmController:
    """A strawman with no memory encryption at all (for contrast)."""

    def __init__(self, nvm: NvmMainMemory) -> None:
        self.nvm = nvm

    def write(self, address: int, data: bytes, arrival_ns: float):
        return self.nvm.write(address, data, arrival_ns)

    def read(self, address: int, arrival_ns: float):
        return self.nvm.read(address, arrival_ns)


def dump_device(nvm: NvmMainMemory, lines: int = 64) -> bytes:
    """The attacker's view: stream raw line contents off the stolen DIMM."""
    return b"".join(nvm.peek(address) for address in range(lines))


def audit(name: str, controller, nvm: NvmMainMemory, shutdown=None) -> None:
    record = SECRET.ljust(LINE, b"\x00")
    now = 0.0
    for address in range(8):  # the secret is duplicated across lines
        outcome = controller.write(address, record, now)
        now = outcome.complete_ns + 500.0
    if shutdown is not None:
        shutdown(now)

    image = dump_device(nvm)
    leaked = image.count(SECRET)
    stored_lines = sum(1 for a in range(64) if nvm.contains(a))
    verdict = "LEAKED" if leaked else "safe"
    print(
        f"{name:34s} lines stored: {stored_lines:2d}   "
        f"secret found in image: {leaked}x   -> {verdict}"
    )


def main() -> None:
    print(f"writing 8 copies of {SECRET!r} through each controller,")
    print("then scanning the raw DIMM image as the §II-A attacker would:\n")

    nvm = NvmMainMemory()
    audit("no encryption (strawman)", UnencryptedNvmController(nvm), nvm)

    nvm = NvmMainMemory()
    audit("i-NVMM (hot data plaintext)", INvmmController(nvm), nvm)

    nvm = NvmMainMemory()
    i_nvmm = INvmmController(nvm)
    audit(
        "i-NVMM after shutdown sweep",
        i_nvmm,
        nvm,
        shutdown=i_nvmm.shutdown,
    )

    nvm = NvmMainMemory()
    audit("traditional secure NVM (CME)", TraditionalSecureNvmController(nvm), nvm)

    nvm = NvmMainMemory()
    dewrite = DeWriteController(nvm)
    audit("DeWrite (dedup + CME)", dewrite, nvm)
    print(
        f"\nDeWrite stored the 8 identical secret lines as "
        f"{dewrite.stats.writes_stored} physical line(s) — deduplicated AND "
        f"encrypted; the attacker sees neither content nor even distinct copies."
    )
    print(
        "note: i-NVMM is only safe *after* its shutdown sweep — a DIMM pulled "
        "from a live machine leaks its hot set (the paper's §V criticism)."
    )


if __name__ == "__main__":
    main()
