#!/usr/bin/env python3
"""A persistent key-value store on encrypted NVM, with and without DeWrite.

The scenario the paper's introduction motivates: persistent memory keeps
application data structures durable, so every store is flushed and fenced
— writes sit on the critical path.  A KV store checkpointing mostly-
unchanged values (session tables, configuration snapshots, mostly-idle
counters) produces highly duplicated line writes; DeWrite cancels them.

The store maps fixed-size records onto 256 B lines, runs the same update/
checkpoint/lookup workload against the traditional secure-NVM controller
and against DeWrite on identical devices, and compares latency, endurance
and energy.

Run:  python examples/persistent_kvstore.py
"""

from __future__ import annotations

import random

from repro import DeWriteController, MemoryController, NvmMainMemory
from repro.baselines import TraditionalSecureNvmController

LINE = 256
RECORDS = 512
CHECKPOINT_EVERY = 200
OPERATIONS = 4_000


class PersistentKvStore:
    """A line-granular persistent KV store over any secure-NVM controller."""

    def __init__(self, controller: MemoryController) -> None:
        self._controller = controller
        self._now = 0.0
        self.write_ns = 0.0
        self.read_ns = 0.0

    def put(self, key: int, value: bytes) -> None:
        """Durably store one record (flush + fence: the core waits)."""
        record = value.ljust(LINE, b"\x00")[:LINE]
        outcome = self._controller.write(key, record, self._now)
        self.write_ns += outcome.latency_ns
        self._now = outcome.complete_ns + 50.0

    def get(self, key: int) -> bytes:
        """Load one record."""
        outcome = self._controller.read(key, self._now)
        self.read_ns += outcome.latency_ns
        self._now = outcome.complete_ns + 50.0
        return outcome.data.rstrip(b"\x00")


def run_workload(store: PersistentKvStore, seed: int = 42) -> None:
    """Updates + periodic full checkpoints + lookups."""
    rng = random.Random(seed)
    values = {key: f"user-{key}:session=idle".encode() for key in range(RECORDS)}
    # Initial population.
    for key, value in values.items():
        store.put(key, value)

    for op in range(OPERATIONS):
        if op % CHECKPOINT_EVERY == 0:
            # Checkpoint: rewrite every record; most are unchanged, so the
            # lines are duplicates of what the device already holds.
            for key in range(RECORDS):
                store.put(key, values[key])
        key = rng.randrange(RECORDS)
        if rng.random() < 0.3:
            values[key] = f"user-{key}:session={rng.randrange(10**6)}".encode()
            store.put(key, values[key])
        else:
            assert store.get(key) == values[key]


def main() -> None:
    systems = {
        "traditional secure NVM": TraditionalSecureNvmController(NvmMainMemory()),
        "DeWrite": DeWriteController(NvmMainMemory()),
    }
    results = {}
    for name, controller in systems.items():
        store = PersistentKvStore(controller)
        run_workload(store)
        nvm = controller.nvm
        results[name] = {
            "array writes": nvm.writes,
            "bit flips": nvm.wear.summary().total_bit_flips,
            "mean put latency (ns)": store.write_ns / controller.stats.writes_requested,
            "mean get latency (ns)": store.read_ns / max(controller.stats.reads_requested, 1),
            "energy (uJ)": nvm.energy.total_nj / 1000.0,
        }

    print(f"{'metric':28s}{'traditional':>16s}{'DeWrite':>12s}{'ratio':>9s}")
    for metric in results["DeWrite"]:
        base = results["traditional secure NVM"][metric]
        ours = results["DeWrite"][metric]
        ratio = base / ours if ours else float("inf")
        print(f"{metric:28s}{base:16,.1f}{ours:12,.1f}{ratio:8.2f}x")

    dewrite = systems["DeWrite"]
    print(
        f"\nDeWrite cancelled {dewrite.stats.writes_deduplicated:,} of "
        f"{dewrite.stats.writes_requested:,} durable writes "
        f"({dewrite.stats.write_reduction:.0%}) — checkpoints of unchanged "
        f"records never touch the array."
    )


if __name__ == "__main__":
    main()
