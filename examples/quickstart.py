#!/usr/bin/env python3
"""Quickstart: a DeWrite secure-NVM controller in thirty lines.

Builds the banked NVM device, attaches the DeWrite controller, writes a
few 256 B lines (some duplicated), reads them back, and prints what the
deduplication layer did.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DeWriteController, NvmMainMemory


def main() -> None:
    nvm = NvmMainMemory()  # 16 GB PCM model: 75 ns reads, 300 ns writes
    controller = DeWriteController(nvm)  # dedup + counter-mode encryption

    page_of_zeros = bytes(256)
    config_block = b"server=alpha;retries=3;".ljust(256, b"\x00")

    now = 0.0
    workload = [
        (0, config_block),  # unique: stored (encrypted)
        (1, page_of_zeros),  # unique: first zero line
        (2, page_of_zeros),  # duplicate of line 1 -> write cancelled
        (3, config_block),  # duplicate of line 0 -> write cancelled
        (4, config_block),  # another duplicate
    ]
    for address, data in workload:
        outcome = controller.write(address, data, now)
        status = "DEDUPLICATED" if outcome.deduplicated else "stored"
        print(f"write line {address}: {status:13s} latency {outcome.latency_ns:7.1f} ns")
        now = outcome.complete_ns + 500.0

    # Reads are redirected through the address-mapping table transparently.
    for address, expected in workload:
        outcome = controller.read(address, now)
        assert outcome.data == expected, f"line {address} corrupted!"
        now = outcome.complete_ns + 500.0
    print("\nall lines read back correctly (decrypted + redirected)")

    stats = controller.stats
    print(f"\nwrites requested:      {stats.writes_requested}")
    print(f"writes deduplicated:   {stats.writes_deduplicated}")
    print(f"write reduction:       {stats.write_reduction:.0%}")
    print(f"NVM array writes:      {nvm.writes}")
    print(f"ciphertext at rest:    {nvm.peek(0) != config_block}")
    print(f"energy so far:         {nvm.energy.total_nj:.0f} nJ")


if __name__ == "__main__":
    main()
