"""Every example script must run end-to-end (examples rot otherwise)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "DEDUPLICATED" in out
        assert "all lines read back correctly" in out

    def test_persistent_kvstore(self):
        out = run_example("persistent_kvstore.py")
        assert "DeWrite cancelled" in out
        assert "array writes" in out

    def test_endurance_study(self):
        out = run_example(
            "endurance_study.py", "--apps", "lbm,vips", "--accesses", "2500"
        )
        assert "average lifetime extension" in out
        assert "lbm" in out

    def test_endurance_study_heatmap(self):
        out = run_example(
            "endurance_study.py", "--apps", "lbm", "--accesses", "2500", "--heatmap"
        )
        assert "flips over lines" in out
        assert "scale:" in out
        # Both the baseline and DeWrite panels are rendered.
        assert out.count("flips over lines") == 2

    def test_endurance_study_wear_levelled(self):
        out = run_example(
            "endurance_study.py", "--apps", "mcf", "--accesses", "2500", "--wear-level"
        )
        assert "hot line b/d" in out

    def test_design_space(self):
        out = run_example("design_space.py", "--accesses", "2500")
        assert "history window" in out.lower() or "window=1" in out
        assert "PNA" in out

    def test_stolen_dimm_audit(self):
        out = run_example("stolen_dimm_audit.py")
        assert "LEAKED" in out  # the strawmen leak
        assert out.count("safe") >= 3  # the encrypted designs do not
        assert "deduplicated AND" in out
