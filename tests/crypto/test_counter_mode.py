"""Counter-mode engine: round trips, involution, OTP-reuse detection."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.counter_mode import CounterModeEngine, OtpReuseError
from repro.crypto.otp import AesPadGenerator


class TestRoundTrip:
    @given(st.binary(min_size=256, max_size=256), st.integers(0, 2**30), st.integers(1, 2**28))
    def test_decrypt_inverts_encrypt(self, line, address, counter):
        engine = CounterModeEngine()
        assert engine.decrypt(engine.encrypt(line, address, counter), address, counter) == line

    def test_cross_instance_decrypt(self):
        # Ciphertexts written by one engine instance decrypt in another
        # with the same key (the NVM DIMM outlives the controller).
        key = b"\x33" * 16
        line = bytes(range(256))
        ct = CounterModeEngine(key=key).encrypt(line, 9, 4)
        assert CounterModeEngine(key=key).decrypt(ct, 9, 4) == line

    def test_aes_pad_generator_roundtrip(self):
        engine = CounterModeEngine(pad_generator=AesPadGenerator(b"\x44" * 16))
        line = bytes(range(256))
        assert engine.decrypt(engine.encrypt(line, 1, 1), 1, 1) == line

    def test_counter_mode_is_involution(self):
        # encrypt and decrypt are the same XOR.
        engine = CounterModeEngine()
        line = bytes(range(256))
        assert engine.decrypt(line, 5, 5) == engine.encrypt(line, 5, 5)


class TestSecurityProperties:
    def test_wrong_counter_garbles(self):
        engine = CounterModeEngine()
        line = bytes(range(256))
        ct = engine.encrypt(line, 7, 1)
        assert engine.decrypt(ct, 7, 2) != line

    def test_wrong_address_garbles(self):
        engine = CounterModeEngine()
        line = bytes(range(256))
        ct = engine.encrypt(line, 7, 1)
        assert engine.decrypt(ct, 8, 1) != line

    def test_rewrite_diffuses(self):
        # Identical plaintext re-encrypted under the next counter yields a
        # ~50 % different ciphertext — the diffusion of §I.
        engine = CounterModeEngine()
        line = bytes(256)
        a = int.from_bytes(engine.encrypt(line, 3, 1), "little")
        b = int.from_bytes(engine.encrypt(line, 3, 2), "little")
        assert 0.4 <= (a ^ b).bit_count() / 2048 <= 0.6


class TestOtpReuseTracking:
    def test_reuse_raises(self):
        engine = CounterModeEngine(track_otp_reuse=True)
        engine.encrypt(bytes(256), 1, 1)
        with pytest.raises(OtpReuseError):
            engine.encrypt(bytes(256), 1, 1)

    def test_distinct_counters_allowed(self):
        engine = CounterModeEngine(track_otp_reuse=True)
        for counter in range(1, 20):
            engine.encrypt(bytes(256), 1, counter)

    def test_decrypt_never_raises(self):
        engine = CounterModeEngine(track_otp_reuse=True)
        ct = engine.encrypt(bytes(256), 1, 1)
        for _ in range(3):
            engine.decrypt(ct, 1, 1)

    def test_tracking_off_by_default(self):
        engine = CounterModeEngine()
        engine.encrypt(bytes(256), 1, 1)
        engine.encrypt(bytes(256), 1, 1)  # no error
