"""Direct (metadata) encryption: round trips and address tweaking."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.direct import DirectEncryptionEngine


class TestFastPath:
    @given(st.binary(min_size=256, max_size=256), st.integers(0, 2**40))
    def test_roundtrip(self, line, address):
        engine = DirectEncryptionEngine()
        assert engine.decrypt(engine.encrypt(line, address), address) == line

    def test_ciphertext_differs_from_plaintext(self):
        engine = DirectEncryptionEngine()
        line = bytes(range(256))
        assert engine.encrypt(line, 1) != line

    def test_address_tweak(self):
        # Identical metadata at different addresses encrypts differently
        # (the ECB-penguin fix).
        engine = DirectEncryptionEngine()
        line = bytes(range(256))
        assert engine.encrypt(line, 1) != engine.encrypt(line, 2)

    def test_deterministic(self):
        line = bytes(range(256))
        assert DirectEncryptionEngine().encrypt(line, 3) == DirectEncryptionEngine().encrypt(line, 3)

    def test_key_dependence(self):
        line = bytes(range(256))
        a = DirectEncryptionEngine(key=b"\x01" * 16).encrypt(line, 3)
        b = DirectEncryptionEngine(key=b"\x02" * 16).encrypt(line, 3)
        assert a != b


class TestAesPath:
    def test_roundtrip(self):
        engine = DirectEncryptionEngine(use_aes=True)
        line = bytes(range(256))
        assert engine.decrypt(engine.encrypt(line, 5), 5) == line

    def test_address_tweak(self):
        engine = DirectEncryptionEngine(use_aes=True)
        line = bytes(range(256))
        assert engine.encrypt(line, 1) != engine.encrypt(line, 2)

    def test_identical_blocks_within_line_differ(self):
        # Two identical 16-byte blocks in one line must not produce
        # identical ciphertext blocks (per-block tweak).
        engine = DirectEncryptionEngine(use_aes=True)
        line = b"\xab" * 256
        ct = engine.encrypt(line, 9)
        blocks = [ct[i : i + 16] for i in range(0, 256, 16)]
        assert len(set(blocks)) == 16

    def test_non_block_multiple_rejected(self):
        engine = DirectEncryptionEngine(use_aes=True)
        with pytest.raises(ValueError, match="multiple of 16"):
            engine.encrypt(b"x" * 20, 0)


class TestValidation:
    def test_bad_key_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            DirectEncryptionEngine(key=b"short")
