"""Split counters: overflow semantics and pad uniqueness under overflow."""

from __future__ import annotations

import random

import pytest

from repro.baselines.secure_nvm import SecureNvmConfig, TraditionalSecureNvmController
from repro.crypto.split_counter import SplitCounterStore
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


class TestStore:
    def test_counters_start_at_zero_and_advance(self):
        store = SplitCounterStore(minor_bits=4, lines_per_page=4)
        assert store.counter_of(0) == 0
        counter, overflow = store.advance(0)
        assert counter == 1
        assert overflow is None

    def test_overflow_fires_at_minor_limit(self):
        store = SplitCounterStore(minor_bits=2, lines_per_page=4)  # limit 4
        for _ in range(3):
            _, overflow = store.advance(0)
            assert overflow is None
        counter, overflow = store.advance(0)  # 4th write overflows
        assert overflow is not None
        assert overflow.page == 0
        assert overflow.lines == (0, 1, 2, 3)
        assert overflow.new_major == 1
        assert store.overflows == 1
        # The triggering line continues at minor 1 under the new major.
        assert counter == (1 << 2) | 1

    def test_old_counters_snapshot(self):
        store = SplitCounterStore(minor_bits=2, lines_per_page=2)
        store.advance(1)  # line 1 minor = 1
        for _ in range(4):  # minors 1, 2, 3, then overflow
            _, overflow = store.advance(0)
        assert overflow is not None
        assert overflow.old_counters == {0: 3, 1: 1}

    def test_combined_counters_strictly_increase(self):
        # Pad-uniqueness: per line the combined counter never repeats.
        store = SplitCounterStore(minor_bits=2, lines_per_page=2)
        rng = random.Random(1)
        seen: dict[int, set[int]] = {0: set(), 1: set(), 2: set(), 3: set()}
        for _ in range(200):
            line = rng.randrange(4)
            counter, _ = store.advance(line)
            assert counter not in seen[line], "pad reuse!"
            seen[line].add(counter)

    def test_pages_are_independent(self):
        store = SplitCounterStore(minor_bits=2, lines_per_page=2)
        for _ in range(4):
            store.advance(0)  # overflows page 0
        assert store.counter_of(2) == 0  # page 1 untouched

    def test_validation(self):
        with pytest.raises(ValueError):
            SplitCounterStore(minor_bits=0)
        with pytest.raises(ValueError):
            SplitCounterStore(lines_per_page=0)


class TestControllerIntegration:
    def make_controller(self, minor_bits: int = 3) -> TraditionalSecureNvmController:
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        config = SecureNvmConfig(
            use_split_counters=True, minor_counter_bits=minor_bits, lines_per_page=4
        )
        return TraditionalSecureNvmController(nvm, config=config)

    def test_correct_memory_across_overflows(self):
        controller = self.make_controller(minor_bits=2)  # overflow every 4 writes
        model = {}
        rng = random.Random(5)
        now = 0.0
        for step in range(120):
            address = rng.randrange(8)
            data = bytes([step % 250 + 1]) * LINE
            now = controller.write(address, data, now).complete_ns + 100
            model[address] = data
        assert controller.page_reencryptions > 0
        for address, expected in model.items():
            assert controller.read(address, now).data == expected

    def test_reencryption_writes_hit_the_array(self):
        controller = self.make_controller(minor_bits=2)
        now = 0.0
        # Populate a full page, then hammer one line until it overflows.
        for address in range(4):
            now = controller.write(address, bytes([address + 1]) * LINE, now).complete_ns + 100
        writes_before = controller.nvm.writes
        for step in range(4):
            now = controller.write(0, bytes([step + 10]) * LINE, now).complete_ns + 100
        # 4 data writes + 3 page-mates re-encrypted at least once.
        assert controller.nvm.writes - writes_before > 4
        assert controller.reencrypted_lines >= 3
        # And the page-mates still decrypt correctly.
        for address in range(1, 4):
            assert controller.read(address, now).data == bytes([address + 1]) * LINE

    def test_realistic_28_bits_never_overflow(self):
        controller = self.make_controller(minor_bits=28)
        now = 0.0
        for step in range(100):
            now = controller.write(0, bytes([step % 250 + 1]) * LINE, now).complete_ns + 100
        assert controller.page_reencryptions == 0
