"""One-time-pad generators: determinism, uniqueness, diffusion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.otp import AesPadGenerator, SplitmixPadGenerator

GENERATORS = [SplitmixPadGenerator, AesPadGenerator]


@pytest.mark.parametrize("generator_cls", GENERATORS)
class TestPadContract:
    def test_deterministic(self, generator_cls):
        a = generator_cls(b"\x07" * 16)
        b = generator_cls(b"\x07" * 16)
        assert a.pad(42, 3, 256) == b.pad(42, 3, 256)

    def test_requested_length(self, generator_cls):
        gen = generator_cls(b"\x07" * 16)
        for length in (1, 8, 15, 16, 17, 64, 256):
            assert len(gen.pad(1, 1, length)) == length

    def test_counter_changes_pad(self, generator_cls):
        gen = generator_cls(b"\x07" * 16)
        assert gen.pad(5, 1, 64) != gen.pad(5, 2, 64)

    def test_address_changes_pad(self, generator_cls):
        gen = generator_cls(b"\x07" * 16)
        assert gen.pad(5, 1, 64) != gen.pad(6, 1, 64)

    def test_key_changes_pad(self, generator_cls):
        assert generator_cls(b"\x00" * 16).pad(5, 1, 64) != generator_cls(b"\x01" * 16).pad(5, 1, 64)

    def test_bad_key_rejected(self, generator_cls):
        with pytest.raises(ValueError):
            generator_cls(b"short")


class TestUniqueness:
    def test_no_pad_reuse_over_grid(self):
        gen = SplitmixPadGenerator(b"\x99" * 16)
        pads = {
            gen.pad(address, counter, 32)
            for address in range(64)
            for counter in range(16)
        }
        assert len(pads) == 64 * 16

    def test_consecutive_addresses_uncorrelated(self):
        gen = SplitmixPadGenerator(b"\x99" * 16)
        a = int.from_bytes(gen.pad(100, 1, 256), "little")
        b = int.from_bytes(gen.pad(101, 1, 256), "little")
        distance = (a ^ b).bit_count()
        assert 850 <= distance <= 1200  # ~1024 of 2048 bits


class TestDiffusion:
    def test_counter_bump_rerandomises_half_the_bits(self):
        # This is the property that defeats DCW/FNW on encrypted NVM
        # (Fig. 13): a rewrite takes a new counter, hence a fresh pad.
        gen = SplitmixPadGenerator(b"\x42" * 16)
        total = 0
        trials = 50
        for counter in range(trials):
            a = int.from_bytes(gen.pad(7, counter, 256), "little")
            b = int.from_bytes(gen.pad(7, counter + 1, 256), "little")
            total += (a ^ b).bit_count()
        mean_fraction = total / trials / 2048
        assert 0.47 <= mean_fraction <= 0.53

    def test_pad_bytes_look_balanced(self):
        gen = SplitmixPadGenerator(b"\x42" * 16)
        pad = gen.pad(1, 1, 4096)
        ones = int.from_bytes(pad, "little").bit_count()
        assert 0.47 <= ones / (4096 * 8) <= 0.53


class TestAesPadSpecifics:
    def test_block_structure(self):
        gen = AesPadGenerator(b"\x10" * 16)
        pad = gen.pad(3, 9, 48)
        # Each 16-byte block is an independent AES output: no two equal.
        blocks = [pad[i : i + 16] for i in range(0, 48, 16)]
        assert len(set(blocks)) == 3

    def test_prefix_stability(self):
        # Shorter pads are prefixes of longer ones (same nonce sequence).
        gen = AesPadGenerator(b"\x10" * 16)
        assert gen.pad(3, 9, 48)[:16] == gen.pad(3, 9, 16)
