"""AES-128: FIPS-197 vectors, inverse cipher, key handling."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.crypto.aes import AES128, _SBOX, _INV_SBOX, _gmul


class TestFips197Vectors:
    def test_appendix_b_encrypt(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_appendix_c1_encrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_appendix_c1_decrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES128(key).decrypt_block(ciphertext) == expected


class TestRoundTrip:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, key, block):
        aes = AES128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    def test_encryption_changes_block(self, block):
        aes = AES128(b"\x00" * 16)
        assert aes.encrypt_block(block) != block or block == aes.encrypt_block(block)
        # At minimum: decrypting a different block gives a different result.
        other = bytes(b ^ 0xFF for b in block)
        assert aes.encrypt_block(block) != aes.encrypt_block(other)

    def test_different_keys_different_ciphertexts(self):
        block = bytes(16)
        assert AES128(b"\x00" * 16).encrypt_block(block) != AES128(b"\x01" * 16).encrypt_block(block)


class TestDiffusion:
    def test_single_bit_flip_diffuses(self):
        # The §I diffusion property: one plaintext bit flips ~half the
        # ciphertext bits.
        aes = AES128(b"\x5a" * 16)
        base = aes.encrypt_block(bytes(16))
        flipped = aes.encrypt_block(b"\x01" + bytes(15))
        distance = sum(
            bin(a ^ b).count("1") for a, b in zip(base, flipped)
        )
        assert 40 <= distance <= 88  # 128 bits; expect ~64


class TestStructure:
    def test_sbox_is_permutation(self):
        assert sorted(_SBOX) == list(range(256))

    def test_inv_sbox_inverts_sbox(self):
        for value in range(256):
            assert _INV_SBOX[_SBOX[value]] == value

    def test_sbox_known_entries(self):
        # FIPS-197 Figure 7 spot checks.
        assert _SBOX[0x00] == 0x63
        assert _SBOX[0x53] == 0xED
        assert _SBOX[0xFF] == 0x16

    def test_gmul_known_products(self):
        # {57} x {83} = {c1} — FIPS-197 §4.2 example.
        assert _gmul(0x57, 0x83) == 0xC1
        assert _gmul(0x57, 0x13) == 0xFE


class TestValidation:
    @pytest.mark.parametrize("size", [0, 15, 17, 32])
    def test_bad_key_size_rejected(self, size):
        with pytest.raises(ValueError, match="16 bytes"):
            AES128(b"k" * size)

    @pytest.mark.parametrize("size", [0, 15, 17])
    def test_bad_block_size_rejected(self, size):
        aes = AES128(b"\x00" * 16)
        with pytest.raises(ValueError, match="16 bytes"):
            aes.encrypt_block(b"p" * size)
        with pytest.raises(ValueError, match="16 bytes"):
            aes.decrypt_block(b"c" * size)
