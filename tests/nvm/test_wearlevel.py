"""Start-Gap wear levelling: translation algebra and device facade."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.nvm.wearlevel import StartGapConfig, StartGapMapper, WearLevelledNvm

LINE = 256


def small_nvm(lines: int = 1024) -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=lines * LINE))
    )


class TestMapperAlgebra:
    def test_initial_mapping_is_identity(self):
        mapper = StartGapMapper(8)
        assert [mapper.translate(l) for l in range(8)] == list(range(8))

    def test_mapping_always_bijective(self):
        mapper = StartGapMapper(8, StartGapConfig(gap_interval=1))
        for _ in range(100):
            mapper.record_write()
            assert mapper.mapping_is_bijective()

    def test_gap_move_reports_copy(self):
        mapper = StartGapMapper(8, StartGapConfig(gap_interval=1))
        move = mapper.record_write()
        assert move == (7, 8)  # line above the gap slides into it
        assert mapper.gap == 7

    def test_wrap_advances_start(self):
        mapper = StartGapMapper(4, StartGapConfig(gap_interval=1))
        for _ in range(4):
            mapper.record_write()
        assert mapper.gap == 0
        # The wrap copies the top slot's line down into slot 0.
        assert mapper.record_write() == (4, 0)
        assert mapper.start == 1
        assert mapper.gap == 4
        assert mapper.rotations == 1
        assert mapper.mapping_is_bijective()

    def test_full_rotation_returns_to_identity(self):
        region = 5
        mapper = StartGapMapper(region, StartGapConfig(gap_interval=1))
        baseline = [mapper.translate(l) for l in range(region)]
        # One full rotation = slots x (region moves + wrap).
        for _ in range((region + 1) * (region + 1)):
            mapper.record_write()
        # After slots rotations start wraps to 0 again.
        while mapper.start != 0 or mapper.gap != region:
            mapper.record_write()
        assert [mapper.translate(l) for l in range(region)] == baseline

    def test_out_of_region_rejected(self):
        mapper = StartGapMapper(8)
        with pytest.raises(IndexError):
            mapper.translate(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapMapper(0)
        with pytest.raises(ValueError):
            StartGapConfig(gap_interval=0)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(2, 40), st.integers(1, 200))
    def test_bijectivity_under_random_churn(self, region, writes):
        mapper = StartGapMapper(region, StartGapConfig(gap_interval=1))
        for _ in range(writes):
            mapper.record_write()
        assert mapper.mapping_is_bijective()


class TestWearLevelledDevice:
    def test_read_your_writes_across_gap_moves(self):
        device = WearLevelledNvm(small_nvm(), region_lines=16, config=StartGapConfig(gap_interval=2))
        model = {}
        rng = random.Random(3)
        now = 0.0
        for step in range(200):
            address = rng.randrange(16)
            data = bytes([step % 251 + 1]) * LINE
            device.write(address, data, now)
            model[address] = data
            now += 1_000.0
            probe = rng.randrange(16)
            assert device.read(probe, now).data == model.get(probe, bytes(LINE))
            now += 1_000.0

    def test_levelling_writes_accounted(self):
        device = WearLevelledNvm(small_nvm(), region_lines=16, config=StartGapConfig(gap_interval=5))
        now = 0.0
        for step in range(50):
            device.write(0, bytes([step % 250 + 1]) * LINE, now)
            now += 1_000.0
        assert device.levelling_writes == pytest.approx(50 / 5, abs=2)
        assert device.writes == 50 + device.levelling_writes

    def test_hot_line_wear_spreads(self):
        # A single scorching-hot line must not keep hitting one slot.
        device = WearLevelledNvm(small_nvm(), region_lines=32, config=StartGapConfig(gap_interval=1))
        now = 0.0
        total_writes = 400
        for step in range(total_writes):
            device.write(5, bytes([step % 250 + 1]) * LINE, now)
            now += 1_000.0
        max_per_slot = max(
            device.wear.writes_to(slot) for slot in range(33)
        )
        # Without levelling one slot would take all 400 writes; Start-Gap
        # at interval 1 spreads a rotation every 33 writes.
        assert max_per_slot < total_writes * 0.2

    def test_region_too_large_rejected(self):
        with pytest.raises(ValueError, match="spare"):
            WearLevelledNvm(small_nvm(16), region_lines=16)

    def test_controller_runs_on_levelled_device(self):
        # DeWrite on top of Start-Gap: full stack still a correct memory.
        base = small_nvm(64 * 1024)
        device = WearLevelledNvm(base, region_lines=64 * 1024 - 1,
                                 config=StartGapConfig(gap_interval=50))
        controller = DeWriteController(device)  # type: ignore[arg-type]
        now = 0.0
        model = {}
        rng = random.Random(7)
        for step in range(150):
            address = rng.randrange(64)
            data = bytes([rng.randrange(1, 5)]) * LINE
            now = controller.write(address, data, now).complete_ns + 100
            model[address] = data
        for address, expected in model.items():
            assert controller.read(address, now).data == expected
