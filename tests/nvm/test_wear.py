"""Wear tracker: accounting, summaries, lifetime comparisons."""

from __future__ import annotations

import pytest

from repro.nvm.wear import WearTracker


class TestRecording:
    def test_counts_accumulate(self):
        tracker = WearTracker()
        tracker.record_write(1, bit_flips=10, bits_written=100)
        tracker.record_write(1, bit_flips=5, bits_written=50)
        tracker.record_write(2, bit_flips=1, bits_written=1)
        summary = tracker.summary()
        assert summary.total_line_writes == 3
        assert summary.total_bit_flips == 16
        assert summary.total_bits_written == 151
        assert summary.max_line_writes == 2
        assert summary.distinct_lines_written == 2

    def test_negative_rejected(self):
        tracker = WearTracker()
        with pytest.raises(ValueError):
            tracker.record_write(0, bit_flips=-1, bits_written=0)

    def test_mean_flips_per_write(self):
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=100, bits_written=100)
        tracker.record_write(0, bit_flips=50, bits_written=50)
        assert tracker.summary().mean_flips_per_write == 75.0

    def test_empty_summary(self):
        summary = WearTracker().summary()
        assert summary.total_line_writes == 0
        assert summary.mean_flips_per_write == 0.0
        assert summary.max_line_writes == 0


class TestLifetime:
    def test_lifetime_factor(self):
        dedup = WearTracker()
        baseline = WearTracker()
        for _ in range(10):
            baseline.record_write(0, bit_flips=1000, bits_written=1000)
        for _ in range(5):
            dedup.record_write(0, bit_flips=1000, bits_written=1000)
        assert dedup.lifetime_factor(baseline) == 2.0

    def test_zero_flips_gives_infinite_factor(self):
        dedup = WearTracker()
        baseline = WearTracker()
        baseline.record_write(0, bit_flips=10, bits_written=10)
        assert dedup.lifetime_factor(baseline) == float("inf")

    def test_both_zero_is_parity(self):
        assert WearTracker().lifetime_factor(WearTracker()) == 1.0


class TestReset:
    def test_reset(self):
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=1, bits_written=1)
        tracker.reset()
        assert tracker.summary().total_line_writes == 0
        assert tracker.writes_to(0) == 0
        assert tracker.flips_to(0) == 0
        assert tracker.highest_line_written() is None


class TestSpatialProfiles:
    def _tracker(self) -> WearTracker:
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=10, bits_written=10)
        tracker.record_write(0, bit_flips=10, bits_written=10)
        tracker.record_write(5, bit_flips=2, bits_written=2)
        tracker.record_write(13, bit_flips=1, bits_written=1)
        return tracker

    def test_region_wear_partitions_address_space(self):
        regions = self._tracker().region_wear(total_lines=16, regions=2)
        assert [r.first_line for r in regions] == [0, 8]
        assert [r.lines for r in regions] == [8, 8]
        assert regions[0].line_writes == 3
        assert regions[0].bit_flips == 22
        assert regions[0].max_line_writes == 2
        assert regions[0].hottest_line == 0
        assert regions[1].line_writes == 1
        assert regions[1].hottest_line == 13
        assert regions[0].mean_writes_per_line == pytest.approx(3 / 8)

    def test_region_wear_short_remainder_region(self):
        # 10 lines over 3 regions: spans of 4/4/2.
        regions = WearTracker().region_wear(total_lines=10, regions=3)
        assert [r.lines for r in regions] == [4, 4, 2]
        assert sum(r.lines for r in regions) == 10

    def test_bank_wear_uses_round_robin_interleave(self):
        banks = self._tracker().bank_wear(total_banks=4)
        # line % 4: lines 0 -> bank 0, 5 -> bank 1, 13 -> bank 1.
        assert banks[0].line_writes == 2
        assert banks[1].line_writes == 2
        assert banks[1].hottest_line in (5, 13)
        assert banks[2].line_writes == 0
        assert banks[2].hottest_line is None

    def test_invalid_arguments_rejected(self):
        tracker = WearTracker()
        with pytest.raises(ValueError):
            tracker.region_wear(total_lines=0, regions=1)
        with pytest.raises(ValueError):
            tracker.bank_wear(total_banks=0)

    def test_highest_line_written(self):
        assert self._tracker().highest_line_written() == 13


class TestHeatmap:
    def test_grid_shape_and_totals(self):
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=3, bits_written=3)
        tracker.record_write(15, bit_flips=5, bits_written=5)
        grid = tracker.heatmap_grid(total_lines=16, rows=2, cols=4)
        assert len(grid) == 2 and all(len(row) == 4 for row in grid)
        assert grid[0][0] == 1  # writes metric by default
        assert grid[1][3] == 1
        flips = tracker.heatmap_grid(total_lines=16, rows=2, cols=4, metric="flips")
        assert flips[0][0] == 3
        assert flips[1][3] == 5
        assert sum(sum(row) for row in flips) == 8

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            WearTracker().heatmap_grid(total_lines=4, rows=1, cols=2, metric="volts")

    def test_render_heatmap_and_csv(self):
        from repro.analysis.charts import heatmap_csv, render_heatmap

        tracker = WearTracker()
        tracker.record_write(0, bit_flips=9, bits_written=9)
        grid = tracker.heatmap_grid(total_lines=8, rows=2, cols=4)
        text = render_heatmap(grid, title="t", cell_label="writes")
        assert "t" in text and "scale:" in text
        csv = heatmap_csv(grid)
        assert csv.splitlines()[0].split(",")[0] == "1"


class TestProjectedLifetime:
    def test_ratio_matches_lifetime_factor(self):
        slow, fast = WearTracker(), WearTracker()
        for _ in range(10):
            slow.record_write(0, bit_flips=100, bits_written=100)
        fast.record_write(0, bit_flips=100, bits_written=100)
        kwargs = dict(
            total_lines=1024, line_bits=2048,
            cell_endurance_writes=1e8, makespan_ns=1e6,
        )
        ratio = fast.projected_lifetime_years(**kwargs) / slow.projected_lifetime_years(
            **kwargs
        )
        assert ratio == pytest.approx(fast.lifetime_factor(slow))

    def test_no_flips_or_no_time_is_infinite(self):
        tracker = WearTracker()
        assert tracker.projected_lifetime_years(
            total_lines=1, line_bits=1, cell_endurance_writes=1.0, makespan_ns=1.0
        ) == float("inf")
        tracker.record_write(0, bit_flips=1, bits_written=1)
        assert tracker.projected_lifetime_years(
            total_lines=1, line_bits=1, cell_endurance_writes=1.0, makespan_ns=0.0
        ) == float("inf")

    def test_duty_cycle_scales_lifetime(self):
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=10, bits_written=10)
        kwargs = dict(
            total_lines=64, line_bits=2048,
            cell_endurance_writes=1e8, makespan_ns=1e6,
        )
        full = tracker.projected_lifetime_years(**kwargs)
        half = tracker.projected_lifetime_years(duty_cycle=0.5, **kwargs)
        assert half == pytest.approx(2 * full)


class TestCombineSummaries:
    """Pool rollup over disjoint shard devices (the serve merge fold)."""

    def _summary(self, **overrides) -> "WearSummary":
        from repro.nvm.wear import WearSummary

        base = dict(
            total_line_writes=10, total_bit_flips=100, total_bits_written=1000,
            max_line_writes=4, distinct_lines_written=6,
        )
        base.update(overrides)
        return WearSummary(**base)

    def test_totals_add_and_hottest_line_is_max(self):
        from repro.nvm.wear import combine_summaries

        combined = combine_summaries(
            [self._summary(), self._summary(max_line_writes=9, total_line_writes=3)]
        )
        assert combined.total_line_writes == 13
        assert combined.total_bit_flips == 200
        assert combined.total_bits_written == 2000
        assert combined.max_line_writes == 9
        assert combined.distinct_lines_written == 12

    def test_single_summary_is_identity(self):
        from repro.nvm.wear import combine_summaries

        summary = self._summary()
        assert combine_summaries([summary]) == summary

    def test_empty_list_rejected(self):
        from repro.nvm.wear import combine_summaries

        with pytest.raises(ValueError):
            combine_summaries([])

    def test_mean_flips_per_write_recomputes_from_pool_sums(self):
        from repro.nvm.wear import combine_summaries

        a = self._summary(total_line_writes=10, total_bit_flips=100)
        b = self._summary(total_line_writes=30, total_bit_flips=60)
        assert combine_summaries([a, b]).mean_flips_per_write == pytest.approx(4.0)
