"""Wear tracker: accounting, summaries, lifetime comparisons."""

from __future__ import annotations

import pytest

from repro.nvm.wear import WearTracker


class TestRecording:
    def test_counts_accumulate(self):
        tracker = WearTracker()
        tracker.record_write(1, bit_flips=10, bits_written=100)
        tracker.record_write(1, bit_flips=5, bits_written=50)
        tracker.record_write(2, bit_flips=1, bits_written=1)
        summary = tracker.summary()
        assert summary.total_line_writes == 3
        assert summary.total_bit_flips == 16
        assert summary.total_bits_written == 151
        assert summary.max_line_writes == 2
        assert summary.distinct_lines_written == 2

    def test_negative_rejected(self):
        tracker = WearTracker()
        with pytest.raises(ValueError):
            tracker.record_write(0, bit_flips=-1, bits_written=0)

    def test_mean_flips_per_write(self):
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=100, bits_written=100)
        tracker.record_write(0, bit_flips=50, bits_written=50)
        assert tracker.summary().mean_flips_per_write == 75.0

    def test_empty_summary(self):
        summary = WearTracker().summary()
        assert summary.total_line_writes == 0
        assert summary.mean_flips_per_write == 0.0
        assert summary.max_line_writes == 0


class TestLifetime:
    def test_lifetime_factor(self):
        dedup = WearTracker()
        baseline = WearTracker()
        for _ in range(10):
            baseline.record_write(0, bit_flips=1000, bits_written=1000)
        for _ in range(5):
            dedup.record_write(0, bit_flips=1000, bits_written=1000)
        assert dedup.lifetime_factor(baseline) == 2.0

    def test_zero_flips_gives_infinite_factor(self):
        dedup = WearTracker()
        baseline = WearTracker()
        baseline.record_write(0, bit_flips=10, bits_written=10)
        assert dedup.lifetime_factor(baseline) == float("inf")

    def test_both_zero_is_parity(self):
        assert WearTracker().lifetime_factor(WearTracker()) == 1.0


class TestReset:
    def test_reset(self):
        tracker = WearTracker()
        tracker.record_write(0, bit_flips=1, bits_written=1)
        tracker.reset()
        assert tracker.summary().total_line_writes == 0
        assert tracker.writes_to(0) == 0
