"""Energy account arithmetic."""

from __future__ import annotations

import pytest

from repro.nvm.config import NvmEnergyConfig
from repro.nvm.energy import EnergyAccount


def make_account() -> EnergyAccount:
    return EnergyAccount(config=NvmEnergyConfig(), line_size_bytes=256)


class TestBuckets:
    def test_read_bucket(self):
        account = make_account()
        account.add_line_read()
        assert account.nvm_read_nj == pytest.approx(2048 * 2.47 / 1000)
        assert account.nvm_write_nj == 0.0

    def test_write_bucket_default_full_line(self):
        account = make_account()
        account.add_line_write()
        assert account.nvm_write_nj == pytest.approx(2048 * 16.82 / 1000)

    def test_write_bucket_partial(self):
        account = make_account()
        account.add_line_write(bits_written=512)
        assert account.nvm_write_nj == pytest.approx(512 * 16.82 / 1000)

    def test_aes_bucket(self):
        account = make_account()
        account.add_aes_line()
        assert account.aes_nj == pytest.approx(16 * 5.9)

    def test_dedup_bucket(self):
        account = make_account()
        account.add_dedup_op()
        assert account.dedup_logic_nj == pytest.approx(0.1)

    def test_dedup_logic_negligible_vs_aes(self):
        # The §IV-D claim that makes the prediction scheme worthwhile.
        account = make_account()
        account.add_aes_line()
        account.add_dedup_op()
        assert account.dedup_logic_nj < 0.01 * account.aes_nj


class TestTotals:
    def test_total_is_sum(self):
        account = make_account()
        account.add_line_read()
        account.add_line_write()
        account.add_aes_line()
        account.add_dedup_op()
        assert account.total_nj == pytest.approx(
            account.nvm_read_nj + account.nvm_write_nj + account.aes_nj + account.dedup_logic_nj
        )

    def test_reset(self):
        account = make_account()
        account.add_line_read()
        account.reset()
        assert account.total_nj == 0.0
