"""NVM main memory: functional storage, timing, wear, energy, row buffer."""

from __future__ import annotations

import pytest

from repro.nvm.config import NvmConfig, NvmOrganization, NvmTimingConfig
from repro.nvm.memory import NvmMainMemory

LINE = 256


def small_memory() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=1024 * LINE))
    )


class TestFunctionalStorage:
    def test_unwritten_lines_read_zero(self):
        nvm = small_memory()
        assert nvm.read(5, 0.0).data == bytes(LINE)
        assert not nvm.contains(5)

    def test_read_returns_written_data(self):
        nvm = small_memory()
        data = bytes(range(256))
        nvm.write(3, data, 0.0)
        assert nvm.read(3, 1000.0).data == data
        assert nvm.contains(3)

    def test_overwrite(self):
        nvm = small_memory()
        nvm.write(3, b"\x01" * LINE, 0.0)
        nvm.write(3, b"\x02" * LINE, 1000.0)
        assert nvm.peek(3) == b"\x02" * LINE

    def test_peek_has_no_timing_effect(self):
        nvm = small_memory()
        nvm.peek(9)
        assert nvm.reads == 0
        assert nvm.energy.total_nj == 0.0

    def test_wrong_line_size_rejected(self):
        nvm = small_memory()
        with pytest.raises(ValueError, match="256 bytes"):
            nvm.write(0, b"short", 0.0)

    @pytest.mark.parametrize("address", [-1, 1024, 10**9])
    def test_out_of_range_rejected(self, address):
        nvm = small_memory()
        with pytest.raises(IndexError):
            nvm.read(address, 0.0)
        with pytest.raises(IndexError):
            nvm.write(address, bytes(LINE), 0.0)


class TestTiming:
    def test_write_latency(self):
        nvm = small_memory()
        result = nvm.write(0, bytes(LINE), 10.0)
        assert result.start_ns == 10.0
        assert result.complete_ns == 310.0
        assert result.latency_ns == 300.0
        assert result.wait_ns == 0.0

    def test_read_latency(self):
        nvm = small_memory()
        result = nvm.read(0, 10.0)
        assert result.latency_ns == 75.0

    def test_same_bank_conflict(self):
        nvm = small_memory()
        banks = nvm.config.organization.total_banks
        nvm.write(0, bytes(LINE), 0.0)
        conflicted = nvm.write(banks, bytes(LINE), 0.0)  # same bank 0
        assert conflicted.start_ns == 300.0
        parallel = nvm.write(1, bytes(LINE), 0.0)  # different bank
        assert parallel.start_ns == 0.0

    def test_row_buffer_hit(self):
        nvm = small_memory()
        nvm.read(0, 0.0)
        hit = nvm.read(0, 500.0)
        assert hit.latency_ns == nvm.config.timing.row_hit_ns
        assert sum(b.row_hits for b in nvm.banks) == 1

    def test_row_buffer_miss_after_other_line(self):
        nvm = small_memory()
        banks = nvm.config.organization.total_banks
        nvm.read(0, 0.0)
        nvm.read(banks, 500.0)  # same bank, different line
        miss = nvm.read(0, 1000.0)
        assert miss.latency_ns == 75.0

    def test_write_opens_row(self):
        nvm = small_memory()
        nvm.write(0, bytes(LINE), 0.0)
        hit = nvm.read(0, 1000.0)
        assert hit.latency_ns == nvm.config.timing.row_hit_ns


class TestWearAccounting:
    def test_bit_flips_counted_vs_previous_content(self):
        nvm = small_memory()
        nvm.write(0, b"\x00" * LINE, 0.0)
        nvm.write(0, b"\xff" * LINE, 1000.0)
        summary = nvm.wear.summary()
        assert summary.total_line_writes == 2
        assert summary.total_bit_flips == 2048  # all-zero -> all-one

    def test_first_write_flips_from_erased_state(self):
        nvm = small_memory()
        nvm.write(0, b"\x0f" * LINE, 0.0)
        assert nvm.wear.summary().total_bit_flips == 4 * LINE

    def test_identical_rewrite_flips_nothing(self):
        nvm = small_memory()
        data = bytes(range(256))
        nvm.write(0, data, 0.0)
        flips_after_first = nvm.wear.summary().total_bit_flips
        nvm.write(0, data, 1000.0)
        assert nvm.wear.summary().total_bit_flips == flips_after_first

    def test_bits_written_defaults_to_full_line(self):
        nvm = small_memory()
        nvm.write(0, bytes(LINE), 0.0)
        assert nvm.wear.summary().total_bits_written == 2048

    def test_bits_written_override(self):
        nvm = small_memory()
        nvm.write(0, bytes(LINE), 0.0, bits_written=100)
        assert nvm.wear.summary().total_bits_written == 100

    def test_per_line_write_counts(self):
        nvm = small_memory()
        for _ in range(5):
            nvm.write(7, bytes(LINE), 0.0)
        assert nvm.wear.writes_to(7) == 5
        assert nvm.wear.writes_to(8) == 0


class TestEnergyAccounting:
    def test_write_energy(self):
        nvm = small_memory()
        nvm.write(0, bytes(LINE), 0.0)
        expected = nvm.config.energy.write_nj(2048)
        assert nvm.energy.nvm_write_nj == pytest.approx(expected)

    def test_read_energy(self):
        nvm = small_memory()
        nvm.read(0, 0.0)
        expected = nvm.config.energy.read_nj_per_line(LINE)
        assert nvm.energy.nvm_read_nj == pytest.approx(expected)

    def test_row_hit_read_is_cheap(self):
        nvm = small_memory()
        nvm.read(0, 0.0)
        first = nvm.energy.nvm_read_nj
        nvm.read(0, 100.0)
        assert nvm.energy.nvm_read_nj - first == pytest.approx(0.1 * first)

    def test_breakdown_sums_to_total(self):
        nvm = small_memory()
        nvm.write(0, bytes(LINE), 0.0)
        nvm.read(0, 1000.0)
        nvm.energy.add_aes_line()
        nvm.energy.add_dedup_op()
        breakdown = nvm.energy.breakdown()
        parts = (
            breakdown["nvm_read_nj"]
            + breakdown["nvm_write_nj"]
            + breakdown["aes_nj"]
            + breakdown["dedup_logic_nj"]
        )
        assert breakdown["total_nj"] == pytest.approx(parts)


class TestReset:
    def test_reset_timing_keeps_data(self):
        nvm = small_memory()
        data = bytes(range(256))
        nvm.write(0, data, 0.0)
        nvm.reset_timing()
        assert nvm.peek(0) == data
        assert nvm.reads == 0
        assert nvm.writes == 0
        assert nvm.energy.total_nj == 0.0
        assert nvm.wear.summary().total_line_writes == 0

    def test_mean_bank_wait_empty(self):
        assert small_memory().mean_bank_wait_ns() == 0.0
