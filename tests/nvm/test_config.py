"""NVM configuration: validation, derived quantities, address mapping."""

from __future__ import annotations

import pytest

from repro.nvm.config import NvmConfig, NvmEnergyConfig, NvmOrganization, NvmTimingConfig


class TestTiming:
    def test_paper_defaults(self):
        timing = NvmTimingConfig()
        assert timing.read_ns == 75.0
        assert timing.write_ns == 300.0
        assert timing.asymmetry == 4.0  # within the paper's 3-8x band

    def test_asymmetry_in_paper_band(self):
        assert 3.0 <= NvmTimingConfig().asymmetry <= 8.0

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            NvmTimingConfig(read_ns=0)

    def test_rejects_write_faster_than_read(self):
        with pytest.raises(ValueError, match="write latency >= read"):
            NvmTimingConfig(read_ns=100, write_ns=50)

    def test_rejects_slow_row_hit(self):
        with pytest.raises(ValueError, match="row-buffer"):
            NvmTimingConfig(row_hit_ns=80)


class TestEnergy:
    def test_aes_energy_per_line(self):
        energy = NvmEnergyConfig()
        # 256 B = 16 AES blocks at 5.9 nJ each.
        assert energy.aes_nj_per_line(256) == pytest.approx(16 * 5.9)

    def test_read_energy_scales_with_line(self):
        energy = NvmEnergyConfig()
        assert energy.read_nj_per_line(512) == pytest.approx(2 * energy.read_nj_per_line(256))

    def test_row_hit_read_energy_discounted(self):
        energy = NvmEnergyConfig()
        assert energy.read_nj_per_line(256, row_hit=True) == pytest.approx(
            0.1 * energy.read_nj_per_line(256)
        )

    def test_write_energy_per_bits(self):
        energy = NvmEnergyConfig()
        assert energy.write_nj(1000) == pytest.approx(1000 * 16.82 / 1000.0)

    def test_write_dominates_read_per_bit(self):
        energy = NvmEnergyConfig()
        assert energy.write_pj_per_bit > energy.read_pj_per_bit


class TestOrganization:
    def test_defaults(self):
        org = NvmOrganization()
        assert org.capacity_bytes == 16 * 2**30
        assert org.line_size_bytes == 256
        assert org.total_lines == 16 * 2**30 // 256

    def test_bank_interleaving(self):
        org = NvmOrganization()
        banks = org.total_banks
        assert [org.bank_of(i) for i in range(banks)] == list(range(banks))
        assert org.bank_of(banks) == 0  # wraps round-robin

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            NvmOrganization(line_size_bytes=100)

    def test_rejects_fractional_lines(self):
        with pytest.raises(ValueError):
            NvmOrganization(capacity_bytes=1000, line_size_bytes=256)

    def test_rejects_zero_banks(self):
        with pytest.raises(ValueError):
            NvmOrganization(banks_per_rank=0)


class TestNvmConfig:
    def test_line_bits(self):
        assert NvmConfig().line_bits == 2048

    def test_endurance_default(self):
        assert NvmConfig().cell_endurance_writes == 1e8
