"""Bank scheduling: write backlog, read priority, drain watermark, stats."""

from __future__ import annotations

import pytest

from repro.nvm.bank import Bank

WRITE = 300.0
READ = 75.0


class TestWriteScheduling:
    def test_idle_bank_services_immediately(self):
        bank = Bank(index=0)
        start, complete = bank.schedule(100.0, WRITE)
        assert start == 100.0
        assert complete == 400.0

    def test_busy_bank_queues(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)
        start, complete = bank.schedule(50.0, WRITE)
        assert start == 300.0
        assert complete == 600.0

    def test_late_arrival_does_not_wait(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)
        start, _ = bank.schedule(1000.0, WRITE)
        assert start == 1000.0

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            Bank(index=0).schedule(0.0, -1.0)

    def test_wait_statistics(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)
        bank.schedule(0.0, WRITE)  # waits 300
        assert bank.total_wait_ns == 300.0
        assert bank.serviced_requests == 2
        assert bank.mean_wait_ns == 150.0


class TestReadPriority:
    def test_read_on_idle_bank(self):
        bank = Bank(index=0)
        start, complete = bank.schedule_read(10.0, READ, bypass_cap_ns=WRITE)
        assert start == 10.0
        assert complete == 85.0

    def test_read_bypasses_shallow_write_queue(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)  # in service until 300
        start, _ = bank.schedule_read(50.0, READ, bypass_cap_ns=WRITE)
        # Waits only for the in-service write, not a full backlog.
        assert start == 300.0

    def test_read_waits_at_most_one_write_when_shallow(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)
        bank.schedule(0.0, WRITE)  # backlog ends at 600 (2 writes = watermark)
        start, _ = bank.schedule_read(0.0, READ, bypass_cap_ns=WRITE)
        assert start <= 300.0 + 1e-9

    def test_deep_backlog_forces_drain_wait(self):
        bank = Bank(index=0)
        for _ in range(6):
            bank.schedule(0.0, WRITE)  # backlog ends at 1800
        start, _ = bank.schedule_read(0.0, READ, bypass_cap_ns=WRITE, drain_watermark=2)
        # Must wait for the backlog to shrink to ~2 writes: 1800-600=1200,
        # plus up to one in-service write.
        assert start >= 1200.0

    def test_reads_serialise_among_themselves(self):
        bank = Bank(index=0)
        _, first = bank.schedule_read(0.0, READ, bypass_cap_ns=WRITE)
        start, _ = bank.schedule_read(0.0, READ, bypass_cap_ns=WRITE)
        assert start == first

    def test_read_pushes_write_backlog_back(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)
        bank.schedule_read(0.0, READ, bypass_cap_ns=WRITE)
        start, _ = bank.schedule(0.0, WRITE)
        assert start >= 375.0  # write + stolen read service


class TestRowBufferState:
    def test_open_line_tracking_is_callers_job(self):
        bank = Bank(index=0)
        assert bank.open_line is None
        bank.open_line = 7
        assert bank.open_line == 7


class TestReset:
    def test_reset_clears_everything(self):
        bank = Bank(index=0)
        bank.schedule(0.0, WRITE)
        bank.schedule_read(0.0, READ, bypass_cap_ns=WRITE)
        bank.open_line = 3
        bank.reset()
        assert bank.busy_until_ns == 0.0
        assert bank.read_tail_ns == 0.0
        assert bank.open_line is None
        assert bank.serviced_requests == 0
        assert bank.mean_wait_ns == 0.0
