"""Hash latency model: Table Ia's constants and lookups."""

from __future__ import annotations

import pytest

from repro.hashes.latency import CRC32_MODEL, MD5_MODEL, SHA1_MODEL, HashModel, model_for


class TestTableIaConstants:
    def test_crc32(self):
        assert CRC32_MODEL.latency_ns == 15.0
        assert CRC32_MODEL.digest_bits == 32

    def test_sha1(self):
        assert SHA1_MODEL.latency_ns == 321.0
        assert SHA1_MODEL.digest_bits == 160

    def test_md5(self):
        assert MD5_MODEL.latency_ns == 312.0
        assert MD5_MODEL.digest_bits == 128

    def test_cryptographic_hashes_exceed_nvm_write(self):
        # The paper's Table Ib argument: >300 ns detection per line.
        nvm_write_ns = 300.0
        assert SHA1_MODEL.latency_ns > nvm_write_ns
        assert MD5_MODEL.latency_ns > nvm_write_ns
        assert CRC32_MODEL.latency_ns < nvm_write_ns / 10

    def test_digest_bytes(self):
        assert CRC32_MODEL.digest_bytes == 4
        assert SHA1_MODEL.digest_bytes == 20
        assert MD5_MODEL.digest_bytes == 16


class TestLookup:
    @pytest.mark.parametrize("name,model", [
        ("crc-32", CRC32_MODEL),
        ("CRC-32", CRC32_MODEL),
        ("sha-1", SHA1_MODEL),
        ("md5", MD5_MODEL),
    ])
    def test_model_for(self, name, model):
        assert model_for(name) is model

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown hash model"):
            model_for("sha-256")

    def test_model_is_frozen(self):
        with pytest.raises(Exception):
            CRC32_MODEL.latency_ns = 1.0  # type: ignore[misc]
