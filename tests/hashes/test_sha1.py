"""SHA-1: FIPS 180-1 vectors, padding edges, stdlib equivalence."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.hashes.sha1 import sha1, sha1_hexdigest


class TestKnownVectors:
    def test_empty(self):
        assert sha1_hexdigest(b"") == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_abc(self):
        # FIPS 180-1 Appendix A.
        assert sha1_hexdigest(b"abc") == "a9993e364706816aba3e25717850c26c9cd0d89d"

    def test_two_block_message(self):
        # FIPS 180-1 Appendix B.
        message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert sha1_hexdigest(message) == "84983e441c3bd26ebaae4aa1f95129e5e54670f1"

    def test_million_a(self):
        # FIPS 180-1 Appendix C (kept as the one slow-ish canonical case).
        assert sha1_hexdigest(b"a" * 10_000) == hashlib.sha1(b"a" * 10_000).hexdigest()


class TestPaddingBoundaries:
    @pytest.mark.parametrize("length", [0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128])
    def test_lengths_around_block_boundaries(self, length):
        data = bytes(range(256))[:length] * 1 if length <= 256 else b"x" * length
        data = (b"0123456789" * 20)[:length]
        assert sha1(data) == hashlib.sha1(data).digest()


class TestStdlibEquivalence:
    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert sha1(data) == hashlib.sha1(data).digest()

    def test_digest_is_20_bytes(self):
        assert len(sha1(b"anything")) == 20

    def test_cache_line_sized_input(self):
        line = bytes(range(256))
        assert sha1(line) == hashlib.sha1(line).digest()
