"""SWAR batched hash kernels: bit-identical to the stdlib, lane by lane.

``sha1_many``/``md5_many`` evaluate a whole write burst through packed
lanes; the contract is exact digest identity with ``hashlib`` for every
message independently, regardless of burst size or length mix.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.hashes.vector import md5_many, sha1_many

# Padding boundaries: empty, short, 55/56/57 (length-field straddle),
# 63/64/65 (block straddle), one full line, line+1.
LENGTHS = [0, 1, 3, 55, 56, 57, 63, 64, 65, 127, 128, 256, 257]


def messages_of(lengths, seed=0):
    rng = random.Random(seed)
    return [rng.randbytes(n) for n in lengths]


class TestSha1Many:
    def test_empty_burst(self):
        assert sha1_many([]) == []

    def test_single_message(self):
        assert sha1_many([b"abc"]) == [hashlib.sha1(b"abc").digest()]

    @pytest.mark.parametrize("length", LENGTHS)
    def test_every_padding_boundary(self, length):
        message = messages_of([length], seed=length)[0]
        assert sha1_many([message]) == [hashlib.sha1(message).digest()]

    def test_mixed_length_burst(self):
        burst = messages_of(LENGTHS, seed=42)
        assert sha1_many(burst) == [hashlib.sha1(m).digest() for m in burst]

    def test_large_uniform_burst(self):
        burst = messages_of([256] * 64, seed=7)
        assert sha1_many(burst) == [hashlib.sha1(m).digest() for m in burst]


class TestMd5Many:
    def test_empty_burst(self):
        assert md5_many([]) == []

    def test_single_message(self):
        assert md5_many([b"abc"]) == [hashlib.md5(b"abc").digest()]

    @pytest.mark.parametrize("length", LENGTHS)
    def test_every_padding_boundary(self, length):
        message = messages_of([length], seed=length)[0]
        assert md5_many([message]) == [hashlib.md5(message).digest()]

    def test_mixed_length_burst(self):
        burst = messages_of(LENGTHS, seed=42)
        assert md5_many(burst) == [hashlib.md5(m).digest() for m in burst]

    def test_large_uniform_burst(self):
        burst = messages_of([256] * 64, seed=7)
        assert md5_many(burst) == [hashlib.md5(m).digest() for m in burst]
