"""CRC-32: from-scratch implementation vs the stdlib and its own algebra."""

from __future__ import annotations

import binascii
import zlib

import pytest
from hypothesis import given, strategies as st

from repro.hashes.crc32 import crc32, crc32_fast, line_fingerprint


class TestAgainstStdlib:
    def test_empty(self):
        assert crc32(b"") == binascii.crc32(b"")

    def test_single_byte_all_values(self):
        for value in range(256):
            data = bytes([value])
            assert crc32(data) == binascii.crc32(data)

    def test_known_vector_check_value(self):
        # The CRC-32 "check" value of "123456789" is the canonical test.
        assert crc32(b"123456789") == 0xCBF43926

    def test_ascii_string(self):
        assert crc32(b"hello world") == zlib.crc32(b"hello world")

    @given(st.binary(min_size=0, max_size=1024))
    def test_matches_binascii_on_arbitrary_input(self, data):
        assert crc32(data) == binascii.crc32(data) & 0xFFFFFFFF

    @given(st.binary(max_size=512))
    def test_fast_path_is_same_function(self, data):
        assert crc32(data) == crc32_fast(data)

    @given(st.binary(max_size=512))
    def test_line_fingerprint_matches(self, data):
        assert line_fingerprint(data) == crc32(data)


class TestAlgebraicProperties:
    @given(st.binary(max_size=256), st.binary(max_size=256))
    def test_incremental_equals_whole(self, a, b):
        # crc(a || b) computed by chaining equals one-shot.
        assert crc32(b, crc32(a)) == crc32(a + b)

    def test_result_is_32_bit_unsigned(self):
        for data in (b"", b"\xff" * 300, b"abc"):
            value = crc32(data)
            assert 0 <= value <= 0xFFFFFFFF

    @given(st.binary(min_size=1, max_size=64))
    def test_single_bit_flip_changes_crc(self, data):
        # CRC-32 detects all single-bit errors.
        flipped = bytearray(data)
        flipped[0] ^= 0x01
        assert crc32(bytes(flipped)) != crc32(data)

    def test_distinct_lines_rarely_collide(self):
        import random

        rng = random.Random(7)
        seen = {crc32(rng.randbytes(256)) for _ in range(2000)}
        # Birthday bound: 2000 random 32-bit values collide with p ~ 0.05 %.
        assert len(seen) >= 1999

    def test_chaining_with_initial_zero_is_identity_start(self):
        assert crc32(b"xyz", 0) == crc32(b"xyz")
