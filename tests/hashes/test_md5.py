"""MD5: RFC 1321 vectors, padding edges, stdlib equivalence."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, strategies as st

from repro.hashes.md5 import md5, md5_hexdigest


class TestRfc1321Vectors:
    # The seven test vectors from RFC 1321 §A.5.
    VECTORS = {
        b"": "d41d8cd98f00b204e9800998ecf8427e",
        b"a": "0cc175b9c0f1b6a831c399e269772661",
        b"abc": "900150983cd24fb0d6963f7d28e17f72",
        b"message digest": "f96b697d7cb7938d525a2f31aaf161d0",
        b"abcdefghijklmnopqrstuvwxyz": "c3fcd3d76192e4007dfb496cca67e13b",
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789": (
            "d174ab98d277d9f5a5611c2c9f419d9f"
        ),
        b"1234567890" * 8: "57edf4a22be3c955ac49da2e2107b67a",
    }

    @pytest.mark.parametrize("message,expected", sorted(VECTORS.items()))
    def test_vector(self, message, expected):
        assert md5_hexdigest(message) == expected


class TestPaddingBoundaries:
    @pytest.mark.parametrize("length", [0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128, 256])
    def test_lengths_around_block_boundaries(self, length):
        data = (b"abcdefgh" * 64)[:length]
        assert md5(data) == hashlib.md5(data).digest()


class TestStdlibEquivalence:
    @given(st.binary(max_size=300))
    def test_matches_hashlib(self, data):
        assert md5(data) == hashlib.md5(data).digest()

    def test_digest_is_16_bytes(self):
        assert len(md5(b"anything")) == 16

    def test_cache_line_sized_input(self):
        line = bytes(range(256))
        assert md5(line) == hashlib.md5(line).digest()
