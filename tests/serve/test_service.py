"""Service orchestration: shard jobs, the lease loop, run_service."""

from __future__ import annotations

import pytest

from repro.obs.metrics import reset_registry
from repro.runner import provider
from repro.serve.control import AdmissionPolicy, LeaseTable
from repro.serve.service import (
    SERVE_JOB_KIND,
    ServiceConfig,
    run_service,
    run_shard_job,
    shard_spec,
)
from repro.workloads.tenants import TenantTrafficConfig

TRAFFIC = TenantTrafficConfig(
    tenants=300, accesses=500, seed=11, shared_pool_lines=64, lines_per_tenant=16
)
CONFIG = ServiceConfig(traffic=TRAFFIC, shards=2)


@pytest.fixture(autouse=True)
def _hermetic():
    reset_registry()
    provider.reset()
    yield
    reset_registry()
    provider.reset()


class _FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestServiceConfig:
    def test_round_trip(self):
        config = ServiceConfig(
            traffic=TRAFFIC,
            policy=AdmissionPolicy(max_tenant_slots=10, tenant_quota=3),
            shards=4,
            controller_opts={"hash_latency_ns": 20},
        )
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            ServiceConfig(shards=0)


class TestShardSpec:
    def test_specs_are_content_keyed_and_distinct(self):
        a = shard_spec(CONFIG, 0)
        b = shard_spec(CONFIG, 0)
        c = shard_spec(CONFIG, 1)
        assert a.identity == b.identity
        assert a.identity != c.identity
        assert a.kind == SERVE_JOB_KIND
        assert a.experiment == "serve"

    def test_rejects_out_of_range_shard(self):
        with pytest.raises(ValueError):
            shard_spec(CONFIG, 2)
        with pytest.raises(ValueError):
            shard_spec(CONFIG, -1)


class TestRunShardJob:
    def test_payload_shape_and_accounting(self):
        params = CONFIG.to_dict()
        params["shard"] = 0
        payload = run_shard_job(params)
        assert payload["shard"] == 0
        assert payload["simulations"] == 1
        assert payload["offered"] == (
            payload["admitted"] + payload["deferred"] + payload["rejected"]
        )
        assert payload["tenants"] > 0
        assert payload["report"]["stats"]["writes_requested"] > 0
        # Summary-mode stage accounting rode along with the simulation.
        assert payload["stages"]["stages"]

    def test_job_is_deterministic(self):
        params = CONFIG.to_dict()
        params["shard"] = 1
        first = run_shard_job(params)
        reset_registry()
        second = run_shard_job(params)
        assert first == second


class TestRunService:
    def test_smoke_run_completes_every_lease(self):
        table = LeaseTable(CONFIG.shards, clock=_FakeClock())
        outcome = run_service(CONFIG, leases=table)
        assert outcome.leases.counts()["done"] == CONFIG.shards
        assert outcome.leases.total_attempts() == CONFIG.shards
        report = outcome.report
        assert len(report.shards) == CONFIG.shards
        assert report.fallbacks == {}
        assert report.merged.stats.writes_requested > 0
        assert outcome.run.planned == CONFIG.shards
        # The whole seeded budget was offered across the shard set.
        assert sum(s.offered for s in report.shards) == TRAFFIC.accesses

    def test_persistent_failure_raises_after_redispatch(self, monkeypatch):
        import repro.serve.service as service_module

        real = run_shard_job

        def broken(params):
            if int(params["shard"]) == 1:
                raise RuntimeError("shard 1 exploded")
            return real(params)

        monkeypatch.setattr(service_module, "run_shard_job", broken)
        table = LeaseTable(CONFIG.shards, clock=_FakeClock())
        with pytest.raises(RuntimeError, match="shard\\(s\\) 1 failed"):
            run_service(CONFIG, leases=table)
        assert table.state_of(0) == "done"
        assert table.state_of(1) == "failed"
        assert table.lease(1).attempts == 2

    def test_flaky_shard_recovers_on_redispatch(self, monkeypatch):
        import repro.serve.service as service_module

        real = run_shard_job
        crashes = {"left": 2}  # run_jobs retries once, so 2 kills wave one

        def flaky(params):
            if int(params["shard"]) == 1 and crashes["left"] > 0:
                crashes["left"] -= 1
                raise RuntimeError("transient")
            return real(params)

        monkeypatch.setattr(service_module, "run_shard_job", flaky)
        table = LeaseTable(CONFIG.shards, clock=_FakeClock())
        outcome = run_service(CONFIG, leases=table)
        assert table.state_of(1) == "done"
        assert table.lease(1).attempts == 2
        assert table.lease(0).attempts == 1
        assert len(outcome.report.shards) == CONFIG.shards

    def test_shard_metrics_are_published(self):
        run_service(CONFIG)
        from repro.obs.metrics import registry

        snapshot = registry().to_dict()
        for shard in range(CONFIG.shards):
            assert f"serve.shard.{shard}.admitted" in snapshot
