"""Report fold: shard payload merging, summaries, the service report."""

from __future__ import annotations

import json

import pytest

from repro.core.stats import LatencyAccumulator
from repro.obs.metrics import reset_registry
from repro.runner import provider
from repro.serve.report import (
    ServiceReport,
    _merge_latency,
    merge_shard_reports,
    shard_summary_from_payload,
)
from repro.serve.service import ServiceConfig, run_service, run_shard_job
from repro.system.metrics import SimulationReport
from repro.workloads.tenants import TenantTrafficConfig

TRAFFIC = TenantTrafficConfig(
    tenants=300, accesses=500, seed=11, shared_pool_lines=64, lines_per_tenant=16
)
CONFIG = ServiceConfig(traffic=TRAFFIC, shards=2)


@pytest.fixture(scope="module")
def payloads():
    reset_registry()
    provider.reset()
    built = []
    for shard in range(CONFIG.shards):
        params = CONFIG.to_dict()
        params["shard"] = shard
        built.append(run_shard_job(params))
    reset_registry()
    return built


@pytest.fixture(scope="module")
def service_report():
    reset_registry()
    provider.reset()
    outcome = run_service(CONFIG)
    reset_registry()
    provider.reset()
    return outcome.report


class TestMergeLatency:
    def test_folds_sum_count_and_extrema(self):
        a = LatencyAccumulator(total_ns=100.0, count=2, max_ns=70.0, min_ns=30.0)
        b = LatencyAccumulator(total_ns=10.0, count=1, max_ns=10.0, min_ns=10.0)
        merged = _merge_latency([a, b])
        assert merged.count == 3
        assert merged.total_ns == 110.0
        assert merged.max_ns == 70.0
        assert merged.min_ns == 10.0

    def test_empty_accumulators_are_skipped(self):
        a = LatencyAccumulator(total_ns=50.0, count=1, max_ns=50.0, min_ns=50.0)
        merged = _merge_latency([LatencyAccumulator(), a])
        assert merged.count == 1
        assert merged.min_ns == 50.0


class TestMergeShardReports:
    def test_empty_payload_list_raises(self):
        with pytest.raises(ValueError):
            merge_shard_reports([])

    def test_single_payload_returns_report_verbatim(self, payloads):
        merged = merge_shard_reports([payloads[0]])
        assert merged == SimulationReport.from_dict(payloads[0]["report"])

    def test_counters_add_and_makespan_is_max(self, payloads):
        merged = merge_shard_reports(payloads)
        reports = [SimulationReport.from_dict(p["report"]) for p in payloads]
        assert merged.workload == f"serve/{len(reports)}-shards"
        assert merged.instructions == sum(r.instructions for r in reports)
        assert merged.total_cycles == sum(r.total_cycles for r in reports)
        assert merged.makespan_ns == max(r.makespan_ns for r in reports)
        assert merged.energy_nj == sum(r.energy_nj for r in reports)
        assert merged.stats.writes_requested == sum(
            r.stats.writes_requested for r in reports
        )
        assert merged.wear.total_line_writes == sum(
            r.wear.total_line_writes for r in reports
        )
        assert merged.wear.max_line_writes == max(
            r.wear.max_line_writes for r in reports
        )

    def test_derived_means_recomputed_from_merged_sums(self, payloads):
        merged = merge_shard_reports(payloads)
        assert merged.ipc == pytest.approx(merged.instructions / merged.total_cycles)
        assert merged.mean_write_latency_ns == pytest.approx(
            merged.stats.write_latency.mean_ns
        )

    def test_merge_is_order_independent(self, payloads):
        forward = merge_shard_reports(list(payloads))
        backward = merge_shard_reports(list(reversed(payloads)))
        assert forward == backward


class TestShardSummary:
    def test_projection_from_payload(self, payloads):
        summary = shard_summary_from_payload(payloads[0])
        report = SimulationReport.from_dict(payloads[0]["report"])
        assert summary.shard == payloads[0]["shard"]
        assert summary.accesses == (
            report.stats.writes_requested + report.stats.reads_requested
        )
        assert summary.admitted == payloads[0]["admitted"]
        assert 0.0 <= summary.dedup_ratio <= 1.0

    def test_round_trip(self, payloads):
        summary = shard_summary_from_payload(payloads[1])
        clone = type(summary).from_dict(summary.to_dict())
        assert clone == summary


class TestServiceReport:
    def test_round_trip_is_byte_lossless(self, service_report):
        blob = json.dumps(service_report.to_dict(), sort_keys=True)
        clone = ServiceReport.from_dict(json.loads(blob))
        assert json.dumps(clone.to_dict(), sort_keys=True) == blob

    def test_render_names_the_load_bearing_facts(self, service_report):
        text = service_report.render()
        assert f"{len(service_report.shards)} shard(s)" in text
        assert "dedup:" in text
        assert "fused path: no batch fallbacks" in text
        assert "p99" in text
        # One table row per shard.
        for summary in service_report.shards:
            assert f"\n  {summary.shard:>5}  " in text

    def test_render_reports_fallbacks_when_present(self, service_report):
        degraded = ServiceReport(
            config=service_report.config,
            merged=service_report.merged,
            stages=service_report.stages,
            shards=service_report.shards,
            fallbacks={"batch.fallback.multi_stream": 3.0},
        )
        assert "FALLBACKS: multi_stream=3" in degraded.render()

    def test_latency_quantiles_are_monotone(self, service_report):
        p50 = service_report.latency_quantile_ns("write", 50)
        p99 = service_report.latency_quantile_ns("write", 99)
        assert 0 < p50 <= p99
        assert service_report.latency_quantile_ns("no-such-stage", 50) == 0.0

    def test_wear_imbalance_bounds(self, service_report):
        # max/mean over shards: at least 1 when any writes landed.
        assert service_report.wear_imbalance >= 1.0

    def test_csv_tables_are_well_formed(self, service_report):
        wear_rows = service_report.wear_table_csv().strip().split("\n")
        assert wear_rows[0].startswith("shard,tenants,")
        assert len(wear_rows) == 1 + len(service_report.shards)
        dedup_rows = service_report.dedup_table_csv().strip().split("\n")
        assert dedup_rows[-1].startswith("pool,")
        assert len(dedup_rows) == 2 + len(service_report.shards)
        pool_requested = int(dedup_rows[-1].split(",")[1])
        assert pool_requested == service_report.merged.stats.writes_requested
