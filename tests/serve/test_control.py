"""Control plane: shard routing, tenant registry, admission, leases."""

from __future__ import annotations

import pytest

from repro.serve.control import AdmissionPolicy, LeaseTable, ShardLease
from repro.serve.tenants import MIN_SHARD_LINES, ShardMap, TenantRegistry


class _FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestShardMap:
    def test_routing_is_stable_and_in_range(self):
        shard_map = ShardMap(shards=8, seed=7)
        for tenant in range(500):
            shard = shard_map.shard_of(tenant)
            assert 0 <= shard < 8
            assert shard == shard_map.shard_of(tenant)

    def test_routing_spreads_tenants(self):
        shard_map = ShardMap(shards=4, seed=3)
        hit = {shard_map.shard_of(tenant) for tenant in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_seed_changes_routing(self):
        a = ShardMap(shards=16, seed=1)
        b = ShardMap(shards=16, seed=2)
        assert any(a.shard_of(t) != b.shard_of(t) for t in range(64))

    def test_round_trip(self):
        shard_map = ShardMap(shards=8, seed=7)
        assert ShardMap.from_dict(shard_map.to_dict()) == shard_map

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ValueError):
            ShardMap(shards=0, seed=1)


class TestTenantRegistry:
    def test_slots_assigned_in_first_appearance_order(self):
        registry = TenantRegistry(lines_per_tenant=64)
        assert registry.slot_of(900) == 0
        assert registry.slot_of(5) == 1
        assert registry.slot_of(900) == 0
        assert registry.tenants_registered == 2

    def test_window_covers_the_slot(self):
        registry = TenantRegistry(lines_per_tenant=32)
        registry.slot_of(42)
        registry.slot_of(43)
        assert registry.window(43) == (32, 32)
        assert registry.window(999) is None

    def test_max_slots_backpressure(self):
        registry = TenantRegistry(lines_per_tenant=8, max_slots=2)
        assert registry.slot_of(1) == 0
        assert registry.slot_of(2) == 1
        assert registry.slot_of(3) is None
        # Existing tenants keep their slots when the registry is full.
        assert registry.slot_of(1) == 0

    def test_device_lines_has_a_floor(self):
        registry = TenantRegistry(lines_per_tenant=64)
        registry.slot_of(1)
        assert registry.capacity_lines() == 64
        assert registry.device_lines() == MIN_SHARD_LINES

    def test_round_trip_preserves_slots(self):
        registry = TenantRegistry(lines_per_tenant=16, max_slots=10)
        for tenant in (7, 3, 11):
            registry.slot_of(tenant)
        clone = TenantRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()
        assert clone.slot_of(3) == registry.slot_of(3)


class TestAdmissionPolicy:
    def test_round_trip(self):
        policy = AdmissionPolicy(max_tenant_slots=10, tenant_quota=3)
        assert AdmissionPolicy.from_dict(policy.to_dict()) == policy

    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_tenant_slots=-1)
        with pytest.raises(ValueError):
            AdmissionPolicy(tenant_quota=-1)


class TestLeaseTable:
    def test_claim_stamps_custody(self):
        clock = _FakeClock(100.0)
        table = LeaseTable(4, clock=clock, lease_s=30.0)
        lease = table.claim(2, "wave-1")
        assert lease.state == "leased"
        assert lease.worker == "wave-1"
        assert lease.attempts == 1
        assert lease.claimed_unix_s == 100.0
        assert lease.expires_unix_s == 130.0
        assert table.state_of(2) == "leased"

    def test_claiming_a_live_or_done_lease_raises(self):
        table = LeaseTable(2, clock=_FakeClock())
        table.claim(0, "a")
        with pytest.raises(ValueError):
            table.claim(0, "b")
        table.mark_done(0)
        with pytest.raises(ValueError):
            table.claim(0, "c")

    def test_failed_shard_is_reclaimable(self):
        table = LeaseTable(2, clock=_FakeClock())
        table.claim(1, "wave-1")
        table.mark_failed(1)
        lease = table.claim(1, "wave-2")
        assert lease.attempts == 2
        assert lease.worker == "wave-2"

    def test_heartbeat_extends_the_lease(self):
        clock = _FakeClock(100.0)
        table = LeaseTable(1, clock=clock, lease_s=30.0)
        table.claim(0, "w")
        clock.now = 120.0
        table.heartbeat(0)
        assert table.lease(0).heartbeat_unix_s == 120.0
        assert table.lease(0).expires_unix_s == 150.0

    def test_heartbeat_requires_a_live_lease(self):
        table = LeaseTable(1, clock=_FakeClock())
        with pytest.raises(ValueError):
            table.heartbeat(0)

    def test_reclaim_stale_returns_expired_leases_sorted(self):
        clock = _FakeClock(100.0)
        table = LeaseTable(4, clock=clock, lease_s=10.0)
        for shard in (3, 0, 1):
            table.claim(shard, "w")
        table.mark_done(1)
        clock.now = 200.0
        assert table.reclaim_stale() == [0, 3]
        assert table.state_of(0) == "pending"
        assert table.state_of(1) == "done"
        # Live leases survive.
        clock.now = 201.0
        table.claim(0, "w2")
        assert table.reclaim_stale() == []

    def test_counts_and_render(self):
        table = LeaseTable(3, clock=_FakeClock())
        table.claim(0, "w")
        table.mark_done(0)
        table.claim(1, "w")
        assert table.counts() == {"pending": 1, "leased": 1, "done": 1, "failed": 0}
        line = table.render()
        assert "1 done" in line
        assert "2 claim(s)" in line

    def test_round_trip(self):
        clock = _FakeClock(50.0)
        table = LeaseTable(3, clock=clock, lease_s=15.0)
        table.claim(0, "w")
        table.mark_failed(0)
        table.claim(2, "w")
        clone = LeaseTable.from_dict(table.to_dict(), clock=clock)
        assert clone.to_dict() == table.to_dict()
        assert len(clone) == 3
        assert clone.state_of(0) == "failed"

    def test_shard_lease_round_trip(self):
        lease = ShardLease(shard=5, state="leased", worker="w", attempts=2,
                           claimed_unix_s=1.0, heartbeat_unix_s=2.0,
                           expires_unix_s=3.0)
        assert ShardLease.from_dict(lease.to_dict()) == lease

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            LeaseTable(0)
        with pytest.raises(ValueError):
            LeaseTable(1, lease_s=0.0)
