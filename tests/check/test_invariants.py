"""Unit tests for the runtime invariant checker.

One test per conservation law proves the check *fires* on a seeded
violation (acceptance criterion), plus clean-path coverage and the
``verify()`` methods grown on the metadata structures.
"""

from __future__ import annotations

import pytest

from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.check.invariants import CheckedController, InvariantViolation
from repro.core.dewrite import DeWriteController
from repro.core.metadata_cache import MetadataCache
from repro.core.tables import DedupIndex, DedupIndexError
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


def make_checked(**kwargs) -> CheckedController:
    return CheckedController(DeWriteController(make_nvm()), **kwargs)


def fill(controller, count: int = 16, start: float = 0.0) -> float:
    now = start
    for i in range(count):
        data = bytes([i % 7]) * LINE
        now = controller.write(i, data, now).complete_ns + 50.0
    return now


class TestCleanPath:
    def test_mixed_traffic_raises_nothing(self):
        checked = make_checked(deep_check_interval=8)
        now = fill(checked, 48)
        for i in range(48):
            outcome = checked.read(i, now)
            now = outcome.complete_ns + 25.0
        checked.close(now)
        assert checked.operations == 96
        assert checked.deep_checks >= 96 // 8

    def test_wrapper_is_timing_transparent(self):
        # Checked and unchecked runs must produce identical outcomes.
        plain = DeWriteController(make_nvm())
        checked = make_checked()
        now_a = now_b = 0.0
        for i in range(32):
            data = bytes([i % 5]) * LINE
            a = plain.write(i, data, now_a)
            b = checked.write(i, data, now_b)
            assert (a.latency_ns, a.deduplicated) == (b.latency_ns, b.deduplicated)
            now_a = a.complete_ns + 10.0
            now_b = b.complete_ns + 10.0
        assert plain.stats.as_dict() == checked.stats.as_dict()

    def test_forwards_inner_attributes(self):
        checked = make_checked()
        assert checked.index is checked.inner.index
        assert checked.mode == "predictive"
        with pytest.raises(AttributeError):
            checked.no_such_attribute  # noqa: B018

    def test_baseline_controller_supported(self):
        checked = CheckedController(TraditionalSecureNvmController(make_nvm()))
        now = fill(checked, 24)
        for i in range(24):
            now = checked.read(i, now).complete_ns + 10.0
        checked.close(now)


class TestWriteConservationFires:
    def test_stats_tampering_detected(self):
        checked = make_checked(deep_check_interval=0)
        fill(checked, 8)
        checked.stats.writes_stored += 3  # phantom stores
        with pytest.raises(InvariantViolation, match="write conservation"):
            checked.verify()

    def test_per_operation_delta_checked(self):
        checked = make_checked(deep_check_interval=0)
        fill(checked, 4)
        inner_write = checked.inner.write

        def double_counting_write(address, data, arrival_ns):
            outcome = inner_write(address, data, arrival_ns)
            checked.inner.stats.writes_requested += 1  # corrupt the delta
            return outcome

        checked.inner.write = double_counting_write
        with pytest.raises(InvariantViolation, match="writes_requested"):
            checked.write(90, bytes(LINE), 10_000_000.0)


class TestDeviceWriteConservationFires:
    def test_unaccounted_device_write_detected(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        # A rogue write straight to the device bypasses the controller's
        # accounting: the cumulative sweep must notice.
        checked.nvm.write(200, bytes(LINE), now)
        with pytest.raises(InvariantViolation, match="device-write conservation"):
            checked.verify()

    def test_rogue_write_during_operation_detected(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        inner_write = checked.inner.write

        def leaky_write(address, data, arrival_ns):
            outcome = inner_write(address, data, arrival_ns)
            checked.nvm.write(300, bytes(LINE), arrival_ns)  # unaccounted
            return outcome

        checked.inner.write = leaky_write
        with pytest.raises(InvariantViolation, match="device-write conservation"):
            checked.write(9, bytes([9]) * LINE, now)


class TestRefcountLawFires:
    def test_refcount_mapping_mismatch_detected(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        # Duplicate pair: two logicals mapped to one physical, reference 2.
        checked.write(30, b"\x42" * LINE, now)
        now = checked.write(31, b"\x42" * LINE, now + 1_000.0).complete_ns
        index = checked.index
        physical = index.physical_of(31)
        crc = index.content_crc(physical)
        index._hash_table[crc][physical] += 1  # corrupt the refcount
        with pytest.raises(InvariantViolation, match="dedup index inconsistent"):
            checked.verify()


class TestCounterMonotonicityFires:
    def test_decreasing_counter_detected_by_sweep(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        # Rewrite line 3 so its counter reaches 2: the rollback to 1 then
        # passes the structural index check (counter still >= 1) and only
        # the monotonicity sweep can catch it.
        checked.write(3, b"\x55" * LINE, now)
        physical = checked.index.physical_of(3)
        checked.verify()  # records the shadow
        checked.index._counters[physical] -= 1
        with pytest.raises(InvariantViolation, match="one-time pad reuse"):
            checked.verify()

    def test_decreasing_counter_detected_on_next_write(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        inner_write = checked.inner.write

        def counter_rollback_write(address, data, arrival_ns):
            outcome = inner_write(address, data, arrival_ns)
            physical = checked.index.physical_of(address)
            checked.index._counters[physical] -= 2
            return outcome

        checked.inner.write = counter_rollback_write
        with pytest.raises(InvariantViolation, match="one-time pad reuse"):
            checked.write(3, b"\x99" * LINE, now)


class TestRoundTripLawFires:
    def test_ciphertext_corruption_detected_at_write(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        inner_write = checked.inner.write

        def corrupting_write(address, data, arrival_ns):
            outcome = inner_write(address, data, arrival_ns)
            physical = checked.index.physical_of(address)
            stored = bytearray(checked.nvm.peek(physical))
            stored[0] ^= 0xFF
            checked.nvm._lines[physical] = bytes(stored)
            return outcome

        checked.inner.write = corrupting_write
        with pytest.raises(InvariantViolation, match="round-trip"):
            checked.write(50, b"\x07" * LINE, now)

    def test_read_corruption_detected(self):
        checked = make_checked(deep_check_interval=0)
        now = fill(checked, 8)
        physical = checked.index.physical_of(5)
        stored = bytearray(checked.nvm.peek(physical))
        stored[0] ^= 0xFF
        checked.nvm._lines[physical] = bytes(stored)
        with pytest.raises(InvariantViolation, match="corrupted data"):
            checked.read(5, now)


class TestVerifyMethods:
    def test_dedup_index_verify_clean_and_counter_law(self):
        index = DedupIndex(total_lines=64)
        touches = []
        dest = index.apply_unique(3, 0xABCD, touches)
        index.bump_counter(dest, touches)
        index.verify()
        # Live data with a zeroed counter breaks the encrypted-at-least-once law.
        index._counters[dest] = 0
        with pytest.raises(DedupIndexError, match="never encrypted"):
            index.verify()

    def test_metadata_cache_verify_capacity(self):
        cache = MetadataCache("t", capacity_blocks=2)
        for i in range(5):
            cache.access(i, write=False)
        cache.verify()
        cache._blocks[99] = False
        cache._blocks[98] = False  # force over capacity
        with pytest.raises(ValueError, match="exceed"):
            cache.verify()

    def test_metadata_system_verify_clean(self):
        controller = DeWriteController(make_nvm())
        fill(controller, 16)
        controller.metadata.verify()

    def test_checked_controller_rejects_negative_interval(self):
        with pytest.raises(ValueError):
            make_checked(deep_check_interval=-1)
