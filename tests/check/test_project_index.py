"""Unit tests of the whole-program index (symbols, imports, calls, MRO)."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.check.index import ProjectIndex, module_name_for


def build(tmp_path: Path, files: dict[str, str]) -> ProjectIndex:
    parsed = []
    for name, source in files.items():
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        parsed.append((path, ast.parse(path.read_text())))
    return ProjectIndex.build(parsed)


class TestModuleNaming:
    def test_package_modules_get_dotted_names(self, tmp_path: Path):
        (tmp_path / "repro" / "core").mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (tmp_path / "repro" / "core" / "__init__.py").write_text("")
        target = tmp_path / "repro" / "core" / "stats.py"
        target.write_text("X = 1\n")
        assert module_name_for(target) == "repro.core.stats"

    def test_loose_module_named_by_stem(self, tmp_path: Path):
        target = tmp_path / "fixture_mod.py"
        target.write_text("X = 1\n")
        assert module_name_for(target) == "fixture_mod"


class TestSymbols:
    def test_functions_classes_and_methods_indexed(self, tmp_path: Path):
        index = build(tmp_path, {
            "m.py": """\
                def free(a, b):
                    return a + b

                class Box:
                    limit = 4

                    def put(self, item):
                        return item
            """,
        })
        assert "m.free" in index.functions
        assert index.functions["m.free"].params == ("a", "b")
        assert "m.Box" in index.classes
        put = index.functions["m.Box.put"]
        assert put.is_method and put.cls == "Box"
        assert put.params == ("item",)  # self stripped
        assert "limit" in index.classes["m.Box"].class_constants

    def test_methods_named_collects_across_classes(self, tmp_path: Path):
        index = build(tmp_path, {
            "a.py": "class A:\n    def run(self):\n        pass\n",
            "b.py": "class B:\n    def run(self):\n        pass\n",
        })
        assert {m.qualname for m in index.methods_named("run")} == {
            "a.A.run", "b.B.run",
        }


class TestImportsAndCalls:
    def test_stdlib_attribute_call_resolves_syntactically(self, tmp_path: Path):
        index = build(tmp_path, {
            "m.py": """\
                import time

                def f():
                    return time.perf_counter()
            """,
        })
        calls = index.functions["m.f"].calls
        assert [c.callee for c in calls] == ["time.perf_counter"]

    def test_from_import_and_local_call_edges(self, tmp_path: Path):
        index = build(tmp_path, {
            "util.py": "def helper():\n    return 1\n",
            "m.py": """\
                from util import helper

                def outer():
                    return helper() + inner()

                def inner():
                    return 2
            """,
        })
        callees = {c.callee for c in index.functions["m.outer"].calls}
        assert callees == {"util.helper", "m.inner"}

    def test_function_local_lazy_import_resolves(self, tmp_path: Path):
        # The repo's registry idiom: imports inside the builder body.
        index = build(tmp_path, {
            "impl.py": "class Widget:\n    pass\n",
            "factory.py": """\
                def build():
                    from impl import Widget
                    return Widget()
            """,
        })
        callees = {c.callee for c in index.functions["factory.build"].calls}
        assert "impl.Widget" in callees

    def test_unresolvable_attribute_call_becomes_method_edge(self, tmp_path: Path):
        index = build(tmp_path, {
            "m.py": """\
                def f(obj):
                    return obj.flush()
            """,
        })
        calls = index.functions["m.f"].calls
        assert [(c.callee, c.method) for c in calls] == [("", "flush")]

    def test_relative_import_resolved_against_package(self, tmp_path: Path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "__init__.py").write_text("")
        index = build(tmp_path, {
            "pkg/helper.py": "def aid():\n    return 1\n",
            "pkg/user.py": """\
                from .helper import aid

                def go():
                    return aid()
            """,
        })
        callees = {c.callee for c in index.functions["pkg.user.go"].calls}
        assert callees == {"pkg.helper.aid"}


class TestHierarchy:
    def test_ancestors_cross_module(self, tmp_path: Path):
        index = build(tmp_path, {
            "base.py": "class Root:\n    def close(self):\n        pass\n",
            "mid.py": """\
                from base import Root

                class Middle(Root):
                    pass
            """,
            "leaf.py": """\
                from mid import Middle

                class Leaf(Middle):
                    pass
            """,
        })
        leaf = index.classes["leaf.Leaf"]
        assert [a.qualname for a in index.ancestors(leaf)] == [
            "mid.Middle", "base.Root",
        ]
        resolved = index.method_resolution(leaf, "close")
        assert resolved is not None and resolved.qualname == "base.Root.close"

    def test_cyclic_bases_terminate(self, tmp_path: Path):
        index = build(tmp_path, {
            "m.py": """\
                class A(B):
                    pass

                class B(A):
                    pass
            """,
        })
        ancestors = index.ancestors(index.classes["m.A"])
        assert [a.qualname for a in ancestors] == ["m.B"]


class TestDeterminism:
    def test_build_order_is_input_order_independent(self, tmp_path: Path):
        files = {
            "z_last.py": "def zf():\n    pass\n",
            "a_first.py": "def af():\n    pass\n",
        }
        forward = build(tmp_path, files)
        backward = build(tmp_path, dict(reversed(list(files.items()))))
        assert list(forward.modules) == list(backward.modules)
        assert list(forward.functions) == list(backward.functions)
