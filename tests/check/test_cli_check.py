"""Acceptance tests for ``python -m repro check`` and the self-lint gate."""

from __future__ import annotations

import re
from pathlib import Path

import repro
from repro.__main__ import main
from repro.check.baseline import Baseline, discover_baseline, fingerprint
from repro.check.lint import lint_paths

PACKAGE_DIR = Path(repro.__file__).parent


class TestSelfLint:
    def test_repro_package_is_lint_clean_under_baseline(self):
        # The dogfood gate: the full 11-rule pass over src/repro must
        # report nothing beyond the committed baseline.
        baseline_path = discover_baseline(PACKAGE_DIR)
        assert baseline_path is not None, "simlint-baseline.json missing from repo"
        report = lint_paths([PACKAGE_DIR], baseline=Baseline.load(baseline_path))
        assert report.clean, report.render()
        assert report.files_checked > 50
        assert report.rules_run == 11

    def test_unbaselined_findings_are_all_known_debt(self):
        # Without the baseline the same run may surface the recorded
        # debt, but every finding must be one the baseline accounts for —
        # anything else is a new violation that should fail this test.
        baseline = Baseline.load(discover_baseline(PACKAGE_DIR))
        report = lint_paths([PACKAGE_DIR])
        unknown = [
            v for v in report.violations
            if baseline.counts.get(fingerprint(v), 0) == 0
        ]
        assert not unknown, "\n".join(v.render() for v in unknown)


class TestCliLint:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["check", "--lint", str(PACKAGE_DIR)]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_planted_sim001_violation_fails_with_location_and_fixit(
        self, tmp_path: Path, capsys
    ):
        bad = tmp_path / "repro" / "workloads" / "planted.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nvalue = random.random()\n", encoding="utf-8")
        assert main(["check", "--lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert re.search(r"planted\.py:2:\d+", out), out  # file:line:col
        assert "[fix:" in out

    def test_planted_sim004_violation_fails_with_rule_id(
        self, tmp_path: Path, capsys
    ):
        bad = tmp_path / "repro" / "core" / "planted.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "class Controller:\n"
            "    def write(self):\n"
            "        self.stats.bogus_counter += 1\n",
            encoding="utf-8",
        )
        assert main(["check", "--lint", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "SIM004" in out
        assert "bogus_counter" in out
        assert "[fix:" in out

    def test_suppressed_violation_exits_zero(self, tmp_path: Path, capsys):
        ok = tmp_path / "sanctioned.py"
        ok.write_text(
            "import random\n"
            "value = random.random()  # simlint: disable=SIM001\n",
            encoding="utf-8",
        )
        assert main(["check", "--lint", str(ok)]) == 0


class TestCliInvariants:
    def test_invariant_pass_exits_zero(self, capsys):
        assert main(["check", "--invariants", "--accesses", "400"]) == 0
        out = capsys.readouterr().out
        assert "invariants: all 4 runs clean" in out
        assert "deep sweeps" in out

    def test_default_runs_both_passes(self, capsys):
        assert main(["check", "--accesses", "300", str(PACKAGE_DIR)]) == 0
        out = capsys.readouterr().out
        assert "simlint" in out
        assert "invariants" in out
