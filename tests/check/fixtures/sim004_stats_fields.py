"""Fixture: controller mutating an undeclared stats counter (SIM004)."""

from dataclasses import dataclass


@dataclass
class FixtureStats:
    good_counter: int = 0

    def reset(self) -> None:
        self.good_counter = 0


class Controller:
    def __init__(self) -> None:
        self.stats = FixtureStats()

    def write(self) -> None:
        self.stats.good_counter += 1
        self.stats.invented_counter += 1
