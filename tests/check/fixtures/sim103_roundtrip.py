"""Fixture: broken serialisation round trips (SIM103)."""


class OneWayReport:
    def __init__(self, alpha: int) -> None:
        self.alpha = alpha

    def to_dict(self) -> dict:
        return {"alpha": self.alpha}


class LossyReport:
    def __init__(self, kept: int, dropped: int = 0) -> None:
        self.kept = kept
        self.dropped = dropped

    def to_dict(self) -> dict:
        return {"kept": self.kept, "dropped": self.dropped}

    @classmethod
    def from_dict(cls, payload: dict) -> "LossyReport":
        return cls(payload["kept"])
