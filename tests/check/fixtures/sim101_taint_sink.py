"""Fixture: wall-clock taint reaching serialisation/cache sinks (SIM101).

The source lives one module away (``sim101_taint_source.py``); only the
whole-program call graph connects it to the sinks here.
"""

from sim101_taint_source import host_stamp


class RunSummary:
    def to_dict(self) -> dict:
        return {"stamp": host_stamp()}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSummary":
        summary = cls()
        summary.stamp = payload["stamp"]
        return summary


def job_key(spec: str) -> str:
    return f"{spec}-{host_stamp()}"
