"""Fixture: module-level randomness with no explicit seed (SIM001)."""

import random

value = random.random()
