"""Fixture: host-time import inside the simulated core (SIM002)."""

import time


def latency() -> float:
    return time.perf_counter()
