"""Fixture: invariant guarded by ``assert`` (vanishes under -O) (SIM005)."""


def checked(value: int) -> int:
    assert value >= 0, "value must be non-negative"
    return value
