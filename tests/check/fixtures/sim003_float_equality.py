"""Fixture: float equality on an accumulated quantity (SIM003)."""


def drained(total_ns: float, expected_ns: float) -> bool:
    return total_ns == expected_ns
