"""Fixture: library code printing instead of using the obs sinks (SIM006)."""


def report(value: int) -> None:
    print("value is", value)
