"""Fixture: broad exception handler that swallows silently (SIM007)."""


def guarded(callback) -> None:
    try:
        callback()
    except Exception:
        pass
