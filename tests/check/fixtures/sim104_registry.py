"""Fixture: incoherent controller/experiment registries (SIM104).

Self-contained miniature of the real three-registry shape: a controller
catalogue, an ``adapter_for`` dispatcher, and an experiment registry with
``FIGURE_ALIASES`` plus the loop-registration idiom.
"""

FIGURE_ALIASES = {"fig9": "system", "fig10": "ghost"}

_REGISTRY = {}


class ExperimentSpec:
    def __init__(self, id, render):
        self.id = id
        self.render = render


def register_experiment(spec):
    _REGISTRY[spec.id] = spec


_COMPARISON_ROWS = (
    ("system", "combined system table"),
    ("modes", "integration mode comparison"),
)

for _id, _description in _COMPARISON_ROWS:
    register_experiment(ExperimentSpec(id=_id, render=None))

register_experiment(ExperimentSpec(id="fig2", render=None))
register_experiment(ExperimentSpec(id="fig2", render=None))


class MemoryController:
    def write(self, address):
        raise NotImplementedError


class TracedController(MemoryController):
    def write(self, address):
        self.tracer.span("write", 0.0, 1.0)


class SilentController(MemoryController):
    def write(self, address):
        return None


def adapter_for(controller):
    if isinstance(controller, TracedController):
        return object()
    raise TypeError(type(controller).__name__)


def _build_traced(nvm):
    return TracedController()


def _build_via_helper(nvm):
    return _build_traced(nvm)


def _build_silent(nvm):
    return SilentController()


def register_controller(name, builder):
    return None


register_controller("traced", _build_traced)
register_controller("indirect", _build_via_helper)
register_controller("uncovered", _build_silent)
register_controller("traced", _build_traced)
