"""Fixture: the nondeterminism source half of the SIM101 cross-module pair.

This module is clean on its own — reading the wall clock is only a
defect once the value flows into a determinism sink, which happens in
``sim101_taint_sink.py``.
"""

import time


def host_stamp() -> float:
    return time.time()
