"""Fixture: unit-suffix mixing in arithmetic and argument flows (SIM102)."""


def budget(window_ns: float, size_bytes: int) -> float:
    return window_ns + size_bytes


def feed(elapsed_s: float) -> float:
    return budget(elapsed_s, 64)


def rekey(delay_s: float) -> float:
    return budget(window_ns=delay_s, size_bytes=8)
