"""Fixture: broken round trips in serve control-plane records (SIM103).

Mirrors the real :mod:`repro.serve.tenants` shapes — a shard map and a
tenant registry — each seeded with one round-trip defect, so the rule is
pinned against exactly the record family the serve subsystem added.
"""


class OneWayShardMap:
    """Serialises the shard routing config but offers no way back."""

    def __init__(self, shards: int, seed: int) -> None:
        self.shards = shards
        self.seed = seed

    def to_dict(self) -> dict:
        return {"shards": self.shards, "seed": self.seed}


class LossyTenantRegistry:
    """from_dict silently drops the slot cap the writer emitted."""

    def __init__(self, lines_per_tenant: int, max_slots: int = 0) -> None:
        self.lines_per_tenant = lines_per_tenant
        self.max_slots = max_slots

    def to_dict(self) -> dict:
        return {
            "lines_per_tenant": self.lines_per_tenant,
            "max_slots": self.max_slots,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LossyTenantRegistry":
        return cls(payload["lines_per_tenant"])
