"""Fixture: broken round trips in event/ledger-style records (SIM103)."""


class OneWayEventRecord:
    """Serialises a lifecycle event but offers no way back."""

    def __init__(self, event: str, seq: int) -> None:
        self.event = event
        self.seq = seq

    def to_dict(self) -> dict:
        return {"event": self.event, "seq": self.seq}


class LossyLedgerEntry:
    """from_dict silently drops the source path the writer emitted."""

    def __init__(self, entry_id: str, source: str = "") -> None:
        self.entry_id = entry_id
        self.source = source

    def to_dict(self) -> dict:
        return {"entry_id": self.entry_id, "source": self.source}

    @classmethod
    def from_dict(cls, payload: dict) -> "LossyLedgerEntry":
        return cls(payload["entry_id"])
