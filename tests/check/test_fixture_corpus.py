"""Golden corpus: every rule catches its seeded fixture, and only that.

The fixtures directory is linted in ONE run (the cross-module fixtures
need the shared project index), then violations are grouped per file and
checked against the expectations table.  Any rule firing on a fixture it
was not seeded into is as much a failure as a seeded violation going
unreported — the corpus pins both precision and recall.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from repro.check.lint import lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: fixture file (relative to fixtures/) → expected Counter of rule hits.
EXPECTED: dict[str, dict[str, int]] = {
    "sim001_unseeded_random.py": {"SIM001": 1},
    "core/sim002_wall_clock.py": {"SIM002": 1},
    "sim003_float_equality.py": {"SIM003": 1},
    "sim004_stats_fields.py": {"SIM004": 1},
    "sim005_bare_assert.py": {"SIM005": 1},
    "sim006_bare_print.py": {"SIM006": 1},
    "sim007_swallowed_exceptions.py": {"SIM007": 1},
    "sim101_taint_source.py": {},  # clean alone; the sink carries the defect
    "sim101_taint_sink.py": {"SIM101": 2},
    "sim102_units.py": {"SIM102": 3},
    "sim103_roundtrip.py": {"SIM103": 2},
    "sim103_obs_records.py": {"SIM103": 2},
    "sim103_serve_records.py": {"SIM103": 2},
    "sim104_registry.py": {"SIM104": 5},
}


def _lint_corpus():
    report = lint_paths([FIXTURES])
    by_file: dict[str, Counter] = {}
    for violation in report.violations:
        rel = Path(violation.path).relative_to(FIXTURES).as_posix()
        by_file.setdefault(rel, Counter())[violation.rule_id] += 1
    return report, by_file


class TestGoldenCorpus:
    def test_every_fixture_is_covered_by_an_expectation(self):
        on_disk = {
            p.relative_to(FIXTURES).as_posix()
            for p in FIXTURES.rglob("*.py")
        }
        assert on_disk == set(EXPECTED), (
            "fixture files and EXPECTED table out of sync"
        )

    def test_seeded_violations_all_caught_and_nothing_else(self):
        report, by_file = _lint_corpus()
        assert report.files_checked == len(EXPECTED)
        for rel, expected in EXPECTED.items():
            actual = dict(by_file.get(rel, Counter()))
            assert actual == expected, (
                f"{rel}: expected {expected}, got {actual}\n{report.render()}"
            )

    def test_cross_module_taint_names_source_and_chain(self):
        report, _ = _lint_corpus()
        taint = [v for v in report.violations if v.rule_id == "SIM101"]
        assert taint, "SIM101 fixtures produced no findings"
        for violation in taint:
            # The message must read as a data-flow explanation: source,
            # its location in the *other* module, and the call chain.
            assert "time.time()" in violation.message
            assert "sim101_taint_source:" in violation.message
            assert "via sim101_taint_source.host_stamp" in violation.message

    def test_corpus_report_is_deterministic(self):
        first = lint_paths([FIXTURES])
        second = lint_paths([FIXTURES])
        assert [v.render() for v in first.violations] == [
            v.render() for v in second.violations
        ]
