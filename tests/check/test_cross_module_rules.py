"""Positive/negative behaviour of the whole-program rules SIM101–SIM104."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.check.lint import lint_paths, lint_source
from repro.check.rules import rule_by_id


def run_rule(rule_id: str, source: str, path: str = "src/repro/obs/snippet.py"):
    return lint_source(
        textwrap.dedent(source), Path(path), rules=[rule_by_id(rule_id)]
    )


def lint_tree(tmp_path: Path, rule_id: str, files: dict[str, str]):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    report = lint_paths([tmp_path], rules=[rule_by_id(rule_id)])
    return list(report.violations)


class TestSim101Sources:
    def test_unseeded_rng_in_cache_key_flagged(self):
        violations = run_rule("SIM101", """\
            import random

            def cache_key(spec):
                return f"{spec}-{random.random()}"
        """)
        assert len(violations) == 1
        assert "hidden global seed" in violations[0].message

    def test_seeded_rng_clean(self):
        assert not run_rule("SIM101", """\
            import random

            def cache_key(spec):
                rng = random.Random(42)
                return f"{spec}-{rng.random()}"
        """)

    def test_unsorted_glob_in_fingerprint_flagged(self):
        violations = run_rule("SIM101", """\
            from pathlib import Path

            def code_fingerprint(root):
                names = [p.name for p in Path(root).rglob("*.py")]
                return "|".join(names)
        """)
        assert len(violations) == 1
        assert ".rglob() without sorted()" in violations[0].message

    def test_sorted_glob_clean(self):
        # The runner cache's actual idiom: sorted(rglob(...)).
        assert not run_rule("SIM101", """\
            from pathlib import Path

            def code_fingerprint(root):
                names = [p.name for p in sorted(Path(root).rglob("*.py"))]
                return "|".join(names)
        """)

    def test_set_iteration_inside_sorted_clean(self):
        # sorted(x for x in some_set) consumes the unordered source
        # entirely inside the sort — deterministic by construction.
        assert not run_rule("SIM101", """\
            def job_key(mapping):
                return tuple(
                    phys for phys in sorted(
                        value for value in set(mapping.values())
                    )
                )
        """)

    def test_environment_read_in_to_dict_flagged(self):
        violations = run_rule("SIM101", """\
            import os

            class Snapshot:
                def to_dict(self):
                    return {"home": os.environ.get("HOME", "")}

                @classmethod
                def from_dict(cls, payload):
                    snap = cls()
                    snap.home = payload["home"]
                    return snap
        """)
        assert len(violations) == 1
        assert "os.environ" in violations[0].message

    def test_wall_clock_outside_any_sink_clean(self):
        # Timing a run is fine as long as the value stays out of sinks.
        assert not run_rule("SIM101", """\
            import time

            def measure(fn):
                start = time.perf_counter()
                fn()
                return time.perf_counter() - start
        """)


class TestSim101Propagation:
    def test_taint_crosses_module_boundary(self, tmp_path: Path):
        violations = lint_tree(tmp_path, "SIM101", {
            "clock_util.py": """\
                import time

                def stamp():
                    return time.time()
            """,
            "report_mod.py": """\
                from clock_util import stamp

                def relay():
                    return stamp()

                def job_key(spec):
                    return f"{spec}:{relay()}"
            """,
        })
        assert len(violations) == 1
        message = violations[0].message
        assert "clock_util:" in message
        assert "report_mod.relay -> clock_util.stamp" in message

    def test_barrier_module_does_not_propagate(self, tmp_path: Path):
        # repro.obs.trace is the sanctioned wall-clock consumer: taint
        # neither originates there nor flows through its methods.
        (tmp_path / "repro" / "obs").mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (tmp_path / "repro" / "obs" / "__init__.py").write_text("")
        violations = lint_tree(tmp_path, "SIM101", {
            "repro/obs/trace.py": """\
                import time

                class Tracer:
                    def span(self, name):
                        return time.perf_counter()
            """,
            "repro/obs/user.py": """\
                from repro.obs.trace import Tracer

                def job_key(spec):
                    tracer = Tracer()
                    tracer.span("plan")
                    return str(spec)
            """,
        })
        assert not violations


class TestSim102:
    def test_multiplication_is_a_conversion(self):
        assert not run_rule("SIM102", """\
            def convert(interval_s):
                interval_ns = interval_s * 1e9
                return interval_ns
        """)

    def test_unsuffixed_and_literal_operands_are_unit_free(self):
        assert not run_rule("SIM102", """\
            def pad(total_ns, count):
                return total_ns + count + 5
        """)

    def test_same_unit_arithmetic_clean(self):
        assert not run_rule("SIM102", """\
            def accumulate(busy_ns, wait_ns):
                return busy_ns + wait_ns
        """)

    def test_augmented_assignment_mix_flagged(self):
        violations = run_rule("SIM102", """\
            def accumulate(total_ns, chunk_bytes):
                total_ns += chunk_bytes
                return total_ns
        """)
        assert len(violations) == 1
        assert "augmented assignment" in violations[0].message

    def test_cross_module_positional_argument_flagged(self, tmp_path: Path):
        violations = lint_tree(tmp_path, "SIM102", {
            "sink_mod.py": """\
                def schedule(deadline_ns):
                    return deadline_ns
            """,
            "caller_mod.py": """\
                from sink_mod import schedule

                def go(timeout_s):
                    return schedule(timeout_s)
            """,
        })
        assert len(violations) == 1
        assert "deadline_ns" in violations[0].message
        assert "'_s' value" in violations[0].message


class TestSim103:
    def test_class_constant_discriminator_exempt(self):
        # The metrics idiom: "kind" is emitted for the dispatching
        # container and never read back by the class's own from_dict.
        assert not run_rule("SIM103", """\
            class Counter:
                kind = "counter"

                def to_dict(self):
                    return {"kind": self.kind, "value": self.value}

                @classmethod
                def from_dict(cls, payload):
                    obj = cls()
                    obj.value = payload["value"]
                    return obj
        """)

    def test_dynamic_field_enumeration_is_open(self):
        # The DeWriteStats idiom: both sides iterate a field tuple.
        assert not run_rule("SIM103", """\
            FIELDS = ("a", "b")

            class Stats:
                def to_dict(self):
                    return {name: getattr(self, name) for name in FIELDS}

                @classmethod
                def from_dict(cls, payload):
                    obj = cls()
                    for name in FIELDS:
                        setattr(obj, name, payload[name])
                    return obj
        """)

    def test_kwargs_splat_reads_everything(self):
        assert not run_rule("SIM103", """\
            class Config:
                def __init__(self, alpha=0, beta=0):
                    self.alpha = alpha
                    self.beta = beta

                def to_dict(self):
                    return {"alpha": self.alpha, "beta": self.beta}

                @classmethod
                def from_dict(cls, payload):
                    return cls(**payload)
        """)

    def test_inherited_from_dict_satisfies_pairing(self, tmp_path: Path):
        violations = lint_tree(tmp_path, "SIM103", {
            "base_mod.py": """\
                class Serialisable:
                    @classmethod
                    def from_dict(cls, payload):
                        obj = cls()
                        for key, value in payload.items():
                            setattr(obj, key, value)
                        return obj
            """,
            "leaf_mod.py": """\
                from base_mod import Serialisable

                class Report(Serialisable):
                    def to_dict(self):
                        return {"x": self.x}
            """,
        })
        assert not violations

    def test_suppression_comment_silences_known_one_way_exporter(self):
        assert not run_rule("SIM103", """\
            class Ephemeral:
                def to_dict(self):  # simlint: disable=SIM103
                    return {"x": self.x}
        """)


class TestSim104:
    def test_coherent_miniature_registry_clean(self):
        assert not run_rule("SIM104", """\
            FIGURE_ALIASES = {"fig9": "system"}

            _REGISTRY = {}


            class ExperimentSpec:
                def __init__(self, id):
                    self.id = id


            def register_experiment(spec):
                _REGISTRY[spec.id] = spec


            register_experiment(ExperimentSpec(id="system"))


            class MemoryController:
                pass


            class GoodController(MemoryController):
                def write(self, address):
                    self.tracer.span("write", 0.0, 1.0)


            def adapter_for(controller):
                if isinstance(controller, GoodController):
                    return object()
                raise TypeError


            def _build_good(nvm):
                return GoodController()


            def register_controller(name, builder):
                return None


            register_controller("good", _build_good)
        """)

    def test_real_repo_registries_are_coherent(self):
        # The actual three registries must pass their own gate.
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = lint_paths([src], rules=[rule_by_id("SIM104")])
        assert report.clean, report.render()

    def test_ancestor_coverage_satisfies_adapter_check(self, tmp_path: Path):
        # Covering the family base class covers every subclass, the way
        # TraditionalSecureNvmController covers out-of-line page dedup.
        violations = lint_tree(tmp_path, "SIM104", {
            "family.py": """\
                class MemoryController:
                    pass


                class FamilyBase(MemoryController):
                    def write(self, address):
                        self.tracer.span("write", 0.0, 1.0)


                class Variant(FamilyBase):
                    pass
            """,
            "wiring.py": """\
                from family import FamilyBase, Variant


                def adapter_for(controller):
                    if isinstance(controller, FamilyBase):
                        return object()
                    raise TypeError


                def _build_variant(nvm):
                    return Variant()


                def register_controller(name, builder):
                    return None


                register_controller("variant", _build_variant)
            """,
        })
        assert not violations
