"""Per-rule positive/negative cases for the SIM001–SIM007 lint rules."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check.lint import LintContext, lint_source
from repro.check.rules import ALL_RULES, rule_by_id

CORE_PATH = Path("src/repro/core/snippet.py")
WORKLOAD_PATH = Path("src/repro/workloads/snippet.py")


def run_rule(rule_id: str, source: str, path: Path = WORKLOAD_PATH, context=None):
    rule = rule_by_id(rule_id)
    if context is None:
        context = LintContext()
        context.ensure_stats_registry()
    return lint_source(textwrap.dedent(source), path, rules=[rule], context=context)


class TestRegistry:
    def test_all_rules_registered_with_unique_ids(self):
        ids = [rule.rule_id for rule in ALL_RULES]
        assert ids == [
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006", "SIM007",
            "SIM101", "SIM102", "SIM103", "SIM104",
        ]
        assert len(set(ids)) == 11

    def test_every_rule_has_summary_and_fixit(self):
        for rule in ALL_RULES:
            assert rule.summary, rule.rule_id
            assert rule.fixit, rule.rule_id

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError):
            rule_by_id("SIM999")


class TestSim001SeededRandom:
    def test_module_level_call_flagged(self):
        violations = run_rule("SIM001", """\
            import random
            value = random.random()
        """)
        assert len(violations) == 1
        assert violations[0].rule_id == "SIM001"
        assert "module-level" in violations[0].message

    def test_unseeded_random_constructor_flagged(self):
        violations = run_rule("SIM001", """\
            import random
            rng = random.Random()
        """)
        assert len(violations) == 1
        assert "without a seed" in violations[0].message

    def test_seeded_random_constructor_clean(self):
        assert not run_rule("SIM001", """\
            import random
            rng = random.Random(42)
            x = rng.random()
        """)

    def test_seeded_instance_calls_clean(self):
        # The sanctioned pattern across the repo (generator, worstcase).
        assert not run_rule("SIM001", """\
            import random

            class G:
                def __init__(self, seed: int) -> None:
                    self._rng = random.Random(seed)

                def roll(self) -> float:
                    return self._rng.random()
        """)

    def test_from_import_flagged(self):
        violations = run_rule("SIM001", """\
            from random import randint
            x = randint(0, 10)
        """)
        assert len(violations) == 1
        assert "imported from the random module" in violations[0].message

    def test_system_random_flagged_even_with_args(self):
        violations = run_rule("SIM001", """\
            import random
            rng = random.SystemRandom(1)
        """)
        assert len(violations) == 1
        assert "OS entropy" in violations[0].message

    def test_numpy_module_level_flagged_and_seeded_default_rng_clean(self):
        violations = run_rule("SIM001", """\
            import numpy as np
            a = np.random.rand(4)
            rng = np.random.default_rng(7)
        """)
        assert len(violations) == 1
        assert "numpy.random.rand" in violations[0].message

    def test_import_alias_tracked(self):
        violations = run_rule("SIM001", """\
            import random as rnd
            x = rnd.randint(0, 1)
        """)
        assert len(violations) == 1


class TestSim002WallClock:
    def test_time_import_flagged_in_core(self):
        violations = run_rule("SIM002", "import time\n", path=CORE_PATH)
        assert len(violations) == 1
        assert violations[0].rule_id == "SIM002"

    def test_datetime_from_import_flagged_in_core(self):
        violations = run_rule(
            "SIM002", "from datetime import datetime\n", path=CORE_PATH
        )
        assert len(violations) == 1

    def test_open_call_flagged_in_crypto(self):
        violations = run_rule(
            "SIM002",
            "def f(p):\n    return open(p).read()\n",
            path=Path("src/repro/crypto/snippet.py"),
        )
        assert len(violations) == 1
        assert "open()" in violations[0].message

    def test_workloads_package_not_restricted(self):
        # I/O belongs in repro.workloads.io; the rule must not police it.
        assert not run_rule("SIM002", "import time\nimport os\n", path=WORKLOAD_PATH)

    def test_harmless_imports_clean_in_nvm(self):
        assert not run_rule(
            "SIM002",
            "import struct\nfrom dataclasses import dataclass\n",
            path=Path("src/repro/nvm/snippet.py"),
        )


class TestSim003FloatEquality:
    def test_ns_suffix_equality_flagged(self):
        violations = run_rule("SIM003", """\
            def f(self):
                return self.total_ns == 0.0
        """)
        assert len(violations) == 1
        assert "total_ns" in violations[0].message

    def test_energy_substring_inequality_flagged(self):
        violations = run_rule("SIM003", """\
            def f(a, b):
                return a.energy_total != b.energy_total
        """)
        assert len(violations) == 1

    def test_ipc_flagged(self):
        assert len(run_rule("SIM003", "bad = ipc == 1.0\n")) == 1

    def test_ordering_comparisons_clean(self):
        assert not run_rule("SIM003", """\
            def f(self):
                return self.total_ns >= 0.0 and self.busy_until_ns < 100.0
        """)

    def test_integer_counter_equality_clean(self):
        assert not run_rule("SIM003", """\
            def f(self):
                return self.count == 0 and self.writes_requested != 3
        """)


class TestSim004StatsFields:
    STATS_AND_CONTROLLER = """\
        from dataclasses import dataclass

        @dataclass
        class MiniStats:
            good_counter: int = 0
            unreset_counter: int = 0

            def reset(self) -> None:
                self.good_counter = 0

        class Controller:
            def __init__(self):
                self.stats = MiniStats()

            def write(self):
                self.stats.good_counter += 1
                self.stats.unreset_counter += 1
                self.stats.invented_counter += 1

            def aliased(self):
                stats = self.stats
                stats.invented_counter += 1
    """

    def _context(self) -> LintContext:
        import ast

        context = LintContext()
        context.absorb_stats(ast.parse(textwrap.dedent(self.STATS_AND_CONTROLLER)))
        return context

    def test_undeclared_and_unreset_fields_flagged(self):
        violations = run_rule(
            "SIM004", self.STATS_AND_CONTROLLER, context=self._context()
        )
        messages = [v.message for v in violations]
        assert len(violations) == 3
        assert any("invented_counter" in m and "not declared" in m for m in messages)
        assert any("unreset_counter" in m and "reset()" in m for m in messages)

    def test_alias_mutation_tracked(self):
        violations = run_rule(
            "SIM004", self.STATS_AND_CONTROLLER, context=self._context()
        )
        alias_hits = [v for v in violations if v.line >= 22]
        assert alias_hits, "mutation through `stats = self.stats` alias was missed"

    def test_declared_and_reset_field_clean(self):
        source = """\
            class Controller:
                def write(self):
                    self.stats.good_counter += 1
        """
        assert not run_rule("SIM004", source, context=self._context())

    def test_real_stats_registry_covers_repo_fields(self):
        # The installed DeWriteStats must declare + reset what controllers use.
        context = LintContext()
        context.ensure_stats_registry()
        for field in ("writes_requested", "writes_deduplicated", "metadata_writebacks"):
            assert field in context.stats_declared_fields
            assert field in context.stats_reset_fields


class TestSim005BareAssert:
    def test_assert_flagged(self):
        violations = run_rule("SIM005", """\
            def f(x):
                assert x > 0, "boom"
                return x
        """)
        assert len(violations) == 1
        assert "python -O" in violations[0].message

    def test_explicit_raise_clean(self):
        assert not run_rule("SIM005", """\
            def f(x):
                if x <= 0:
                    raise ValueError("boom")
                return x
        """)


class TestSim006BarePrint:
    def test_print_in_library_module_flagged(self):
        violations = run_rule("SIM006", """\
            def report(value):
                print("value is", value)
        """)
        assert len(violations) == 1
        assert violations[0].rule_id == "SIM006"
        assert "obs sinks" in violations[0].message

    def test_print_to_stderr_still_flagged(self):
        violations = run_rule("SIM006", """\
            import sys

            def warn(msg):
                print(msg, file=sys.stderr)
        """)
        assert len(violations) == 1

    def test_cli_front_end_exempt(self):
        source = """\
            def main():
                print("figures:")
        """
        assert not run_rule("SIM006", source, path=Path("src/repro/__main__.py"))

    def test_obs_sink_helpers_clean(self):
        assert not run_rule("SIM006", """\
            from repro.obs.sinks import stderr_line

            def warn(msg):
                stderr_line(msg)
        """)

    def test_shadowed_print_attribute_clean(self):
        # Only the print *builtin* is policed; methods named print are not.
        assert not run_rule("SIM006", """\
            def render(table):
                table.print()
        """)

    def test_repo_library_source_is_clean(self):
        # The shipped library must satisfy its own rule.
        from repro.check.lint import lint_paths

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = lint_paths([src], rules=[rule_by_id("SIM006")])
        assert report.clean, report.render()


class TestSim007SwallowedExceptions:
    def test_bare_except_pass_flagged(self):
        violations = run_rule("SIM007", """\
            def f():
                try:
                    risky()
                except:
                    pass
        """)
        assert len(violations) == 1
        assert violations[0].rule_id == "SIM007"
        assert "swallows" in violations[0].message

    def test_broad_exception_pass_flagged(self):
        assert len(run_rule("SIM007", """\
            def f():
                try:
                    risky()
                except Exception:
                    pass
        """)) == 1

    def test_base_exception_ellipsis_flagged(self):
        assert len(run_rule("SIM007", """\
            def f():
                try:
                    risky()
                except BaseException:
                    ...
        """)) == 1

    def test_tuple_containing_broad_type_flagged(self):
        assert len(run_rule("SIM007", """\
            def f():
                try:
                    risky()
                except (ValueError, Exception):
                    pass
        """)) == 1

    def test_qualified_broad_type_flagged(self):
        assert len(run_rule("SIM007", """\
            import builtins

            def f():
                try:
                    risky()
                except builtins.Exception:
                    pass
        """)) == 1

    def test_narrow_except_pass_clean(self):
        # A deliberate best-effort swallow of one named failure is legal
        # (e.g. the temp-file cleanup in repro.obs.manifest).
        assert not run_rule("SIM007", """\
            def f(path):
                try:
                    unlink(path)
                except OSError:
                    pass
        """)

    def test_broad_except_that_handles_clean(self):
        assert not run_rule("SIM007", """\
            def f():
                try:
                    risky()
                except Exception as exc:
                    log(exc)
                    raise
        """)

    def test_broad_except_with_fallback_clean(self):
        assert not run_rule("SIM007", """\
            def f():
                try:
                    return risky()
                except Exception:
                    return None
        """)

    def test_disable_comment_respected(self):
        from repro.check.lint import lint_source

        source = (
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except Exception:  # simlint: disable=SIM007\n"
            "        pass\n"
        )
        assert not lint_source(
            source, WORKLOAD_PATH, rules=[rule_by_id("SIM007")], context=LintContext()
        )

    def test_repo_library_source_is_clean(self):
        from repro.check.lint import lint_paths

        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        report = lint_paths([src], rules=[rule_by_id("SIM007")])
        assert report.clean, report.render()
