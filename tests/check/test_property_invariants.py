"""Property tests: conservation laws hold on arbitrary traffic.

Hypothesis generates random interleavings of duplicate-prone writes and
reads; :class:`CheckedController` re-verifies every law after every
request, so a passing run is itself the property.  A second group mutates
the metadata structures arbitrarily and asserts ``verify()`` objects.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.invariants import CheckedController, InvariantViolation
from repro.core.dewrite import DeWriteController
from repro.core.tables import DedupIndex, DedupIndexError
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256
ADDRESSES = 32
POOL = [bytes([value]) * LINE for value in range(6)]

# (is_write, address, pool index) triples; the tiny content pool makes
# duplicates, rewrites and redirected reads all common.
OPS = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, ADDRESSES - 1),
        st.integers(0, len(POOL) - 1),
    ),
    min_size=1,
    max_size=120,
)


def make_checked(mode: str = "predictive") -> CheckedController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return CheckedController(DeWriteController(nvm, mode=mode), deep_check_interval=16)


def drive(checked: CheckedController, ops) -> None:
    now = 0.0
    for is_write, address, pool_index in ops:
        if is_write:
            outcome = checked.write(address, POOL[pool_index], now)
        else:
            outcome = checked.read(address, now)
        now = outcome.complete_ns + 10.0
    checked.close(now)


class TestLawsHoldOnRandomTraffic:
    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_predictive_mode_never_violates(self, ops):
        drive(make_checked(), ops)

    @settings(max_examples=15, deadline=None)
    @given(ops=OPS)
    def test_direct_mode_never_violates(self, ops):
        drive(make_checked("direct"), ops)

    @settings(max_examples=15, deadline=None)
    @given(ops=OPS)
    def test_parallel_mode_never_violates(self, ops):
        drive(make_checked("parallel"), ops)


class TestMutatedMetadataIsRejected:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, ADDRESSES - 1), st.integers(1, len(POOL) - 1)),
            min_size=1,
            max_size=30,
        ),
        victim=st.integers(0, ADDRESSES - 1),
        corruption=st.sampled_from(["unmap", "refcount", "zero_counter"]),
    )
    def test_verify_rejects_arbitrary_corruption(self, ops, victim, corruption):
        checked = make_checked()
        now = 0.0
        for address, pool_index in ops:
            now = checked.write(address, POOL[pool_index], now).complete_ns + 10.0
        index = checked.index
        physical = index.physical_of(ops[victim % len(ops)][0])
        assert physical is not None

        if corruption == "unmap":
            # Point the mapping at a line that holds nothing.
            free = next(i for i in range(index.total_lines) if not index.holds_data(i))
            index._mapping[ops[victim % len(ops)][0]] = free
        elif corruption == "refcount":
            crc = index.content_crc(physical)
            index._hash_table[crc][physical] += 1
        else:
            index._counters[physical] = 0

        with pytest.raises(InvariantViolation):
            checked.verify()

    def test_direct_index_mutation_fails_verify(self):
        index = DedupIndex(total_lines=128)
        touches = []
        dest = index.apply_unique(7, 0x1234, touches)
        index.bump_counter(dest, touches)
        index.verify()
        index._stored[dest + 1] = 0x9999  # stored line absent from hash table
        with pytest.raises(DedupIndexError):
            index.verify()
