"""Engine-level behaviour: discovery, suppression, formatting, reports."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check.lint import (
    LintContext,
    lint_paths,
    lint_source,
    parse_suppressions,
)

BAD_CORE_MODULE = textwrap.dedent("""\
    import random
    import time

    def f(self):
        x = random.random()
        assert x >= 0
        return x
""")


class TestSuppression:
    def test_parse_specific_rules(self):
        source = "x = 1  # simlint: disable=SIM001,SIM005\ny = 2\n"
        suppressions = parse_suppressions(source)
        assert suppressions == {1: {"SIM001", "SIM005"}}

    def test_parse_blanket_disable(self):
        suppressions = parse_suppressions("x = 1  # simlint: disable\n")
        assert suppressions == {1: None}

    def test_disable_comment_silences_matching_rule_only(self):
        source = (
            "import random\n"
            "x = random.random()  # simlint: disable=SIM001\n"
            "y = random.random()\n"
        )
        violations = lint_source(source, Path("src/repro/workloads/m.py"))
        assert [v.line for v in violations] == [3]

    def test_blanket_disable_silences_all_rules(self):
        source = (
            "import random\n"
            "assert random.random() >= 0  # simlint: disable\n"
        )
        violations = lint_source(source, Path("src/repro/workloads/m.py"))
        assert not violations

    def test_disable_for_other_rule_does_not_silence(self):
        source = (
            "import random\n"
            "x = random.random()  # simlint: disable=SIM005\n"
        )
        violations = lint_source(source, Path("src/repro/workloads/m.py"))
        assert [v.rule_id for v in violations] == ["SIM001"]


class TestLintSource:
    def test_violations_sorted_by_location(self):
        violations = lint_source(BAD_CORE_MODULE, Path("src/repro/core/m.py"))
        lines = [v.line for v in violations]
        assert lines == sorted(lines)

    def test_syntax_error_reported_as_sim000(self):
        violations = lint_source("def broken(:\n", Path("src/repro/core/m.py"))
        assert len(violations) == 1
        assert violations[0].rule_id == "SIM000"

    def test_render_contains_rule_id_location_and_fixit(self):
        violations = lint_source(BAD_CORE_MODULE, Path("src/repro/core/m.py"))
        rendered = violations[0].render()
        assert "src/repro/core/m.py" in rendered.replace("\\", "/")
        assert ":1:" in rendered  # line number present
        assert "SIM" in rendered
        assert "[fix:" in rendered


class TestLintPaths:
    def test_directory_walk_and_report(self, tmp_path: Path):
        package = tmp_path / "repro" / "core"
        package.mkdir(parents=True)
        (package / "clean.py").write_text("VALUE = 1\n", encoding="utf-8")
        (package / "dirty.py").write_text(BAD_CORE_MODULE, encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.files_checked == 2
        assert report.rules_run == 11
        assert not report.clean
        assert {v.rule_id for v in report.violations} == {"SIM001", "SIM002", "SIM005"}
        assert "violation(s)" in report.render()

    def test_clean_tree_reports_clean(self, tmp_path: Path):
        (tmp_path / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
        report = lint_paths([tmp_path])
        assert report.clean

    def test_missing_target_raises(self, tmp_path: Path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope.py"])

    def test_single_file_target(self, tmp_path: Path):
        target = tmp_path / "solo.py"
        target.write_text("import random\nx = random.random()\n", encoding="utf-8")
        report = lint_paths([target])
        assert report.files_checked == 1
        assert [v.rule_id for v in report.violations] == ["SIM001"]

    def test_duplicate_targets_deduplicated(self, tmp_path: Path):
        target = tmp_path / "solo.py"
        target.write_text("VALUE = 1\n", encoding="utf-8")
        report = lint_paths([target, target, tmp_path])
        assert report.files_checked == 1


class TestContextFallback:
    def test_stats_registry_falls_back_to_installed_package(self):
        context = LintContext()
        context.ensure_stats_registry()
        assert "writes_requested" in context.stats_declared_fields
        # Repo invariant: the reset path covers every declared field, so a
        # warmup reset can never leak a counter into measurement.
        missing = context.stats_declared_fields - context.stats_reset_fields
        assert not missing, f"fields without reset coverage: {sorted(missing)}"
