"""Baseline suppression: fingerprints, budgets, persistence, discovery."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.check.baseline import (
    Baseline,
    discover_baseline,
    fingerprint,
    normalize_path,
)
from repro.check.lint import lint_paths
from repro.check.rules import Violation


def make_violation(
    rule_id: str = "SIM103",
    path: str = "src/repro/faults/crash.py",
    line: int = 10,
    message: str = "one-way exporter",
) -> Violation:
    return Violation(
        rule_id=rule_id, path=path, line=line, col=1, message=message, fixit=""
    )


class TestFingerprint:
    def test_line_number_does_not_change_fingerprint(self):
        # The whole point: unrelated edits shifting a finding around must
        # not resurrect it from the baseline.
        a = make_violation(line=10)
        b = make_violation(line=99)
        assert fingerprint(a) == fingerprint(b)

    def test_checkout_location_does_not_change_fingerprint(self):
        a = make_violation(path="/home/ci/src/repro/faults/crash.py")
        b = make_violation(path="/tmp/other/src/repro/faults/crash.py")
        assert fingerprint(a) == fingerprint(b)

    def test_message_change_changes_fingerprint(self):
        a = make_violation(message="one-way exporter")
        b = make_violation(message="different defect")
        assert fingerprint(a) != fingerprint(b)

    def test_normalize_keeps_tail_from_last_repro_component(self):
        assert (
            normalize_path("/w/src/repro/check/repro/x.py") == "repro/x.py"
        )
        assert normalize_path("src/repro/core/stats.py") == "repro/core/stats.py"
        assert normalize_path("/tmp/loose.py") == "loose.py"


class TestBudget:
    def test_filter_splits_known_and_new(self):
        known = make_violation()
        new = make_violation(message="brand new defect")
        baseline = Baseline.from_violations([known])
        kept, suppressed = baseline.filter([known, new])
        assert suppressed == 1
        assert [v.message for v in kept] == ["brand new defect"]

    def test_duplicate_findings_beyond_budget_surface(self):
        # count=1 in the baseline absorbs one instance; a second
        # identical instance is a new violation, not accepted debt.
        v = make_violation()
        baseline = Baseline.from_violations([v])
        kept, suppressed = baseline.filter([v, v])
        assert suppressed == 1
        assert len(kept) == 1


class TestPersistence:
    def test_dump_load_round_trip(self, tmp_path: Path):
        baseline = Baseline.from_violations(
            [make_violation(), make_violation(message="second")]
        )
        target = tmp_path / "simlint-baseline.json"
        baseline.dump(target)
        loaded = Baseline.load(target)
        assert loaded.counts == baseline.counts
        assert loaded.notes == baseline.notes

    def test_dump_is_deterministic(self, tmp_path: Path):
        baseline = Baseline.from_violations(
            [make_violation(message=m) for m in ("b", "a", "c")]
        )
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        baseline.dump(first)
        baseline.dump(second)
        assert first.read_text() == second.read_text()

    def test_unknown_schema_rejected(self, tmp_path: Path):
        target = tmp_path / "bad.json"
        target.write_text('{"schema": "nope/v9", "entries": {}}')
        with pytest.raises(ValueError, match="unsupported baseline schema"):
            Baseline.load(target)


class TestDiscovery:
    def test_walks_up_from_target(self, tmp_path: Path):
        nested = tmp_path / "src" / "repro" / "core"
        nested.mkdir(parents=True)
        marker = tmp_path / "simlint-baseline.json"
        Baseline().dump(marker)
        assert discover_baseline(nested) == marker

    def test_absent_baseline_returns_none(self, tmp_path: Path):
        deep = tmp_path / "a" / "b"
        deep.mkdir(parents=True)
        # tmp_path trees have no baseline anywhere above them until /.
        found = discover_baseline(deep)
        assert found is None or tmp_path not in found.parents


class TestEngineIntegration:
    def test_lint_paths_applies_baseline(self, tmp_path: Path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nvalue = random.random()\n")
        raw = lint_paths([target])
        assert not raw.clean
        baseline = Baseline.from_violations(list(raw.violations))
        gated = lint_paths([target], baseline=baseline)
        assert gated.clean
        assert gated.baseline_suppressed == len(raw.violations)
        assert "baseline-suppressed" in gated.render()

    def test_new_violation_still_fails_under_baseline(self, tmp_path: Path):
        target = tmp_path / "mod.py"
        target.write_text("import random\nvalue = random.random()\n")
        baseline = Baseline.from_violations(list(lint_paths([target]).violations))
        target.write_text(
            "import random\n"
            "value = random.random()\n"
            "def f(x):\n"
            "    assert x\n"
        )
        report = lint_paths([target], baseline=baseline)
        assert not report.clean
        assert {v.rule_id for v in report.violations} == {"SIM005"}
        assert report.baseline_suppressed >= 1
