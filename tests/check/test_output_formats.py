"""Machine-readable reports (JSON + SARIF) and the new ``check`` CLI flags."""

from __future__ import annotations

import json
from pathlib import Path

from repro.__main__ import main
from repro.check.lint import lint_paths
from repro.check.output import report_to_json, report_to_sarif, render_json

RULE_IDS = {
    "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006", "SIM007",
    "SIM101", "SIM102", "SIM103", "SIM104",
}


def dirty_report(tmp_path: Path):
    target = tmp_path / "mod.py"
    target.write_text("import random\nvalue = random.random()\n")
    return lint_paths([target])


class TestJsonReport:
    def test_shape_and_fields(self, tmp_path: Path):
        payload = report_to_json(dirty_report(tmp_path))
        assert payload["schema"] == "repro.simlint.report/v1"
        assert payload["rules_run"] == 11
        assert payload["clean"] is False
        (violation,) = payload["violations"]
        assert violation["rule"] == "SIM001"
        assert violation["line"] == 2
        assert violation["fingerprint"]
        assert violation["fixit"]

    def test_render_is_deterministic_text(self, tmp_path: Path):
        report = dirty_report(tmp_path)
        assert render_json(report) == render_json(report)
        json.loads(render_json(report))  # valid JSON


class TestSarifReport:
    def test_minimal_sarif_contract(self, tmp_path: Path):
        sarif = report_to_sarif(dirty_report(tmp_path))
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "simlint"
        assert {rule["id"] for rule in driver["rules"]} == RULE_IDS
        (result,) = run["results"]
        assert result["ruleId"] == "SIM001"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] == 2
        assert "\\" not in location["artifactLocation"]["uri"]

    def test_repo_source_paths_are_srcroot_relative(self):
        src = Path(__file__).resolve().parents[2] / "src" / "repro" / "faults"
        report = lint_paths([src / "recovery.py"])
        sarif = report_to_sarif(report)
        for result in sarif["runs"][0]["results"]:
            uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            assert uri.startswith("src/repro/"), uri


class TestCliFlags:
    def test_json_flag_prints_machine_report(self, tmp_path: Path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nvalue = random.random()\n")
        assert main(["check", "--lint", "--json", str(target)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"][0]["rule"] == "SIM001"

    def test_sarif_flag_writes_file(self, tmp_path: Path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nvalue = random.random()\n")
        out = tmp_path / "report.sarif"
        assert main(["check", "--lint", "--sarif", str(out), str(target)]) == 1
        capsys.readouterr()
        sarif = json.loads(out.read_text())
        assert sarif["runs"][0]["results"]

    def test_write_baseline_then_gate_passes(self, tmp_path: Path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nvalue = random.random()\n")
        baseline = tmp_path / "simlint-baseline.json"
        assert main(
            ["check", "--lint", "--write-baseline", str(baseline), str(target)]
        ) == 0
        # Auto-discovery: the baseline sits next to the target, so a
        # plain invocation now gates only on *new* findings.
        assert main(["check", "--lint", str(target)]) == 0
        out = capsys.readouterr().out
        assert "baseline-suppressed" in out
        # Explicit opt-out shows the recorded debt again.
        assert main(["check", "--lint", "--no-baseline", str(target)]) == 1

    def test_explicit_baseline_flag(self, tmp_path: Path, capsys):
        target = tmp_path / "mod.py"
        target.write_text("import random\nvalue = random.random()\n")
        baseline = tmp_path / "elsewhere.json"
        assert main(
            ["check", "--lint", "--write-baseline", str(baseline), str(target)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["check", "--lint", "--baseline", str(baseline), str(target)]
        ) == 0
