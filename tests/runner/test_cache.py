"""On-disk result cache: keys, roundtrips, corruption and version skew."""

from __future__ import annotations

import json

import pytest

from repro.runner.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    code_fingerprint,
    job_key,
)
from repro.runner.jobs import simulate_spec


@pytest.fixture()
def cache(tmp_path) -> ResultCache:
    return ResultCache(tmp_path / "cache")


def spec(**overrides):
    base = dict(workload="lbm", controller="dewrite", accesses=100, seed=1)
    return simulate_spec(**{**base, **overrides})


class TestJobKey:
    def test_stable_across_calls(self):
        assert job_key(spec()) == job_key(spec())

    def test_changes_with_any_parameter(self):
        reference = job_key(spec())
        assert job_key(spec(seed=2)) != reference
        assert job_key(spec(accesses=200)) != reference
        assert job_key(spec(controller="secure-nvm")) != reference

    def test_changes_with_code_fingerprint(self):
        assert job_key(spec(), fingerprint="aaaa") != job_key(spec(), fingerprint="bbbb")

    def test_fingerprint_is_memoised_and_hex(self):
        first = code_fingerprint()
        assert first == code_fingerprint()
        int(first, 16)  # 16 hex digits
        assert len(first) == 16


class TestRoundtrip:
    def test_put_then_get(self, cache):
        key = job_key(spec())
        payload = {"report": {"ipc": 1.25}, "simulations": 1}
        cache.put(key, payload, meta={"label": "test"})
        assert cache.get(key) == payload
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_blob_is_sharded_by_key_prefix(self, cache):
        key = job_key(spec())
        cache.put(key, {"x": 1})
        path = cache.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]

    def test_missing_entry_is_a_miss(self, cache):
        assert cache.get(job_key(spec())) is None
        assert cache.stats.misses == 1
        assert cache.stats.invalid == 0


class TestRobustness:
    def test_corrupt_blob_is_a_miss_not_a_crash(self, cache):
        key = job_key(spec())
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{truncated")
        assert cache.get(key) is None
        assert cache.stats.invalid == 1

    def test_schema_version_mismatch_is_a_miss(self, cache):
        key = job_key(spec())
        cache.put(key, {"x": 1})
        path = cache.path_for(key)
        blob = json.loads(path.read_text())
        blob["schema"] = CACHE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(blob))
        assert cache.get(key) is None
        assert cache.stats.invalid == 1

    def test_key_mismatch_is_a_miss(self, cache):
        key = job_key(spec())
        cache.put(key, {"x": 1})
        path = cache.path_for(key)
        blob = json.loads(path.read_text())
        blob["key"] = "0" * 64
        path.write_text(json.dumps(blob))
        assert cache.get(key) is None

    def test_wrong_payload_shape_is_a_miss(self, cache):
        key = job_key(spec())
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": CACHE_SCHEMA_VERSION, "key": key, "payload": 7}))
        assert cache.get(key) is None

    def test_recompute_overwrites_stale_blob(self, cache):
        key = job_key(spec())
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("garbage")
        assert cache.get(key) is None
        cache.put(key, {"x": 2})
        assert cache.get(key) == {"x": 2}

    def test_stats_reset(self, cache):
        cache.put(job_key(spec()), {"x": 1})
        cache.get(job_key(spec()))
        cache.stats.reset()
        assert (cache.stats.hits, cache.stats.misses, cache.stats.writes) == (0, 0, 0)
