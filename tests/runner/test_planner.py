"""Job planner: expansion counts, identity, cross-figure deduplication."""

from __future__ import annotations

from repro.analysis import experiments as ex
from repro.analysis import registry as figures
from repro.runner.jobs import (
    WORST_CASE_WORKLOAD,
    JobSpec,
    bitflip_spec,
    canonical_json,
    metadata_sweep_spec,
    simulate_spec,
)


def settings(apps=("lbm", "mcf")) -> ex.ExperimentSettings:
    return ex.ExperimentSettings(accesses=1_000, seed=3, applications=apps)


class TestSpecIdentity:
    def test_identity_excludes_the_experiment_label(self):
        a = simulate_spec(
            workload="lbm", controller="dewrite", accesses=100, seed=1, experiment="fig12"
        )
        b = simulate_spec(
            workload="lbm", controller="dewrite", accesses=100, seed=1, experiment="system"
        )
        assert a.identity == b.identity
        assert a.label != b.label

    def test_identity_covers_every_simulation_input(self):
        base = dict(workload="lbm", controller="dewrite", accesses=100, seed=1)
        reference = simulate_spec(**base)
        for change in (
            {"workload": "mcf"},
            {"controller": "secure-nvm"},
            {"accesses": 200},
            {"seed": 2},
            {"opts": {"history_window": 1}},
        ):
            assert simulate_spec(**{**base, **change}).identity != reference.identity

    def test_params_json_is_canonical(self):
        spec = simulate_spec(workload="lbm", controller="dewrite", accesses=100, seed=1)
        assert spec.params_json == canonical_json(spec.params)

    def test_labels_name_workload_and_controller(self):
        spec = simulate_spec(
            workload="lbm", controller="dewrite", accesses=100, seed=1, experiment="fig12"
        )
        assert "lbm" in spec.label and "dewrite" in spec.label and "fig12" in spec.label


class TestPlanExpansion:
    def test_comparison_jobs_two_per_application(self):
        jobs = ex.comparison_jobs(settings(), experiment="fig12")
        assert len(jobs) == 4  # (secure-nvm + dewrite) × 2 apps
        controllers = {spec.params["controller"] for spec in jobs}
        assert controllers == {"secure-nvm", "dewrite"}

    def test_metadata_sweep_full_grid(self):
        jobs = ex.metadata_sweep_jobs(
            settings(("mcf",)), cache_sizes_kb=(64, 256), prefetch_entries=(64, 1024)
        )
        assert len(jobs) == 4
        points = {
            (spec.params["size_kb"], spec.params["prefetch"]) for spec in jobs
        }
        assert points == {(64, 64), (64, 1024), (256, 64), (256, 1024)}

    def test_bitflip_jobs_one_per_application(self):
        jobs = ex.bitflip_jobs(settings())
        assert [spec.kind for spec in jobs] == ["bitflips", "bitflips"]

    def test_worst_case_jobs_use_the_sentinel_workload(self):
        jobs = ex.worst_case_jobs(settings())
        assert jobs, "worst-case figure must plan simulations"
        assert all(spec.params["workload"] == WORST_CASE_WORKLOAD for spec in jobs)

    def test_metadata_sweep_spec_includes_every_sizing_input(self):
        spec = metadata_sweep_spec(
            workload="mcf", accesses=100, seed=1, size_kb=64, prefetch=256
        )
        params = spec.params
        assert params["size_kb"] == 64
        assert params["prefetch"] == 256
        assert params["warm_fraction"] == 0.4

    def test_bitflip_spec_roundtrip(self):
        spec = bitflip_spec(workload="lbm", accesses=100, seed=9)
        assert spec.params == {"workload": "lbm", "accesses": 100, "seed": 9}


class TestCrossFigureDedup:
    def test_shared_comparisons_collapse_to_one_job(self):
        cfg = settings()
        alone = figures.plan_for(["fig12"], cfg)
        both = figures.plan_for(["fig12", "system"], cfg)
        # fig12 and the system table render from the same comparisons.
        assert {spec.identity for spec in both} == {spec.identity for spec in alone}

    def test_plan_preserves_first_figure_order(self):
        cfg = settings()
        jobs = figures.plan_for(["fig13", "fig12"], cfg)
        kinds = [spec.kind for spec in jobs]
        assert kinds[: len(ex.bitflip_jobs(cfg))] == ["bitflips"] * len(ex.bitflip_jobs(cfg))

    def test_full_catalogue_plans_without_duplicates(self):
        cfg = settings(("lbm",))
        jobs = figures.plan_for(figures.experiment_ids(), cfg)
        identities = [spec.identity for spec in jobs]
        assert len(identities) == len(set(identities))
        assert all(isinstance(spec, JobSpec) for spec in jobs)
