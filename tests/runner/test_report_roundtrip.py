"""SimulationReport serialization must be lossless through JSON.

Cache blobs and worker transport both rely on
``SimulationReport.from_dict(json.loads(json.dumps(report.to_dict())))``
reproducing the original object exactly — floats included, because JSON's
shortest-repr round-trip is exact for IEEE doubles.  Byte-identical
figures from cached runs depend on this.
"""

from __future__ import annotations

import json

from repro.core.stats import DeWriteStats
from repro.system.metrics import SimulationReport
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name


def _real_report(app: str = "mcf", accesses: int = 1_500) -> SimulationReport:
    from repro.core.registry import build_controller
    from repro.nvm.memory import NvmMainMemory

    trace = generate_trace(profile_by_name(app), accesses, seed=11)
    return simulate(build_controller("dewrite", NvmMainMemory()), trace)


class TestReportRoundtrip:
    def test_json_roundtrip_is_lossless(self):
        report = _real_report()
        payload = json.loads(json.dumps(report.to_dict()))
        assert SimulationReport.from_dict(payload) == report

    def test_roundtrip_preserves_every_latency_float_exactly(self):
        report = _real_report(app="lbm", accesses=800)
        clone = SimulationReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert clone.mean_write_latency_ns == report.mean_write_latency_ns
        assert clone.mean_read_latency_ns == report.mean_read_latency_ns
        assert clone.ipc == report.ipc
        assert clone.energy_nj == report.energy_nj
        assert clone.wear == report.wear

    def test_stats_counters_roundtrip(self):
        report = _real_report(accesses=500)
        clone_stats = DeWriteStats.from_dict(
            json.loads(json.dumps(report.stats.to_dict()))
        )
        assert clone_stats == report.stats
