"""The engine's live telemetry stream: lifecycle events on the bus."""

from __future__ import annotations

import pytest

from repro.obs.events import EventBus, validate_event
from repro.runner.cache import ResultCache, job_key
from repro.runner.engine import run_jobs
from repro.runner.jobs import JobSpec, canonical_json, register_job_kind

register_job_kind(
    "events-echo", lambda params: {"token": params["token"], "simulations": 1},
    replace=True,
)


def _fails(params):
    raise ValueError("synthetic failure")


register_job_kind("events-fails", _fails, replace=True)


def _spec(token: str) -> JobSpec:
    return JobSpec("events-echo", canonical_json({"token": token}))


@pytest.fixture()
def stream():
    seen: list[dict] = []
    bus = EventBus(seen.append, snapshot_interval_s=0.0)
    return seen, bus


def _names(seen: list[dict]) -> list[str]:
    return [record["event"] for record in seen]


class TestSerialEmission:
    def test_cold_run_emits_the_full_lifecycle(self, stream):
        seen, bus = stream
        jobs = [_spec("a"), _spec("a"), _spec("b")]
        report = run_jobs(jobs, events=bus)
        assert report.ok
        for record in seen:
            assert validate_event(record) == [], record
        names = _names(seen)
        assert names[0] == "run_started"
        assert seen[0]["planned"] == 3 and seen[0]["unique"] == 2
        assert names.count("planned") == 2  # one per unique spec
        assert names.count("started") == 2
        assert names.count("finished") == 2
        assert names[-1] == "run_finished"
        assert names[-2] == "snapshot"  # final unthrottled snapshot
        assert seen[-1]["done"] == 2 and seen[-1]["failed"] == 0

    def test_planned_records_carry_key_label_kind(self, stream):
        seen, bus = stream
        spec = _spec("a")
        run_jobs([spec], events=bus)
        (planned,) = [r for r in seen if r["event"] == "planned"]
        assert planned["key"] == job_key(spec)
        assert planned["label"] == spec.label
        assert planned["job_kind"] == "events-echo"

    def test_warm_cache_run_emits_cache_hits(self, stream, tmp_path):
        seen, bus = stream
        cache = ResultCache(tmp_path)
        jobs = [_spec("a"), _spec("b")]
        run_jobs(jobs, cache=cache)  # cold, unobserved
        run_jobs(jobs, cache=cache, events=bus)
        names = _names(seen)
        assert names.count("cache_hit") == 2
        assert names.count("started") == 0
        final = seen[-1]
        assert final["event"] == "run_finished" and final["done"] == 2

    def test_failure_emits_retried_then_finished_failed(self, stream):
        seen, bus = stream
        spec = JobSpec("events-fails", canonical_json({"n": 1}))
        report = run_jobs([spec], retries=1, events=bus)
        assert not report.ok
        names = _names(seen)
        assert names.count("retried") == 1
        (retried,) = [r for r in seen if r["event"] == "retried"]
        assert "ValueError" in retried["error"]
        (finished,) = [r for r in seen if r["event"] == "finished"]
        assert finished["status"] == "failed"
        assert finished["attempts"] == 2
        assert seen[-1]["failed"] == 1

    def test_finished_ok_carries_timings(self, stream):
        seen, bus = stream
        run_jobs([_spec("a")], events=bus)
        (finished,) = [r for r in seen if r["event"] == "finished"]
        assert finished["status"] == "ok"
        assert finished["compute_s"] >= 0.0
        assert finished["attempts"] == 1

    def test_snapshots_carry_progress_and_metrics(self, stream):
        seen, bus = stream
        run_jobs([_spec("a"), _spec("b")], events=bus)
        snapshots = [r for r in seen if r["event"] == "snapshot"]
        assert snapshots, "zero-interval bus should snapshot every iteration"
        final = snapshots[-1]
        assert (final["done"], final["failed"], final["total"]) == (2, 0, 2)
        assert isinstance(final["metrics"], dict)

    def test_default_null_bus_emits_nothing(self):
        # No events argument: the run must not require a bus at all.
        report = run_jobs([_spec("a")])
        assert report.ok


class TestParallelEmission:
    def test_pool_run_emits_the_same_lifecycle(self, stream):
        seen, bus = stream
        jobs = [_spec(f"t{i}") for i in range(5)]
        report = run_jobs(jobs, parallel=2, events=bus)
        assert report.ok
        for record in seen:
            assert validate_event(record) == [], record
        names = _names(seen)
        assert names[0] == "run_started"
        assert names.count("planned") == 5
        assert names.count("started") == 5
        assert names.count("finished") == 5
        assert all(r["status"] == "ok" for r in seen if r["event"] == "finished")
        assert names[-1] == "run_finished"
        assert seen[-1]["done"] == 5

    def test_pool_failure_path_emits_finished_failed(self, stream):
        seen, bus = stream
        bad = JobSpec("events-fails", canonical_json({"n": 2}))
        good = _spec("ok")
        report = run_jobs([bad, good], parallel=2, retries=0, events=bus)
        assert not report.ok
        statuses = sorted(r["status"] for r in seen if r["event"] == "finished")
        assert statuses == ["failed", "ok"]
        assert seen[-1]["event"] == "run_finished"
        assert seen[-1]["failed"] == 1

    def test_sequence_numbers_are_gapless(self, stream):
        seen, bus = stream
        run_jobs([_spec(f"t{i}") for i in range(4)], parallel=2, events=bus)
        assert [r["seq"] for r in seen] == list(range(len(seen)))
