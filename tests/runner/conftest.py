"""Runner tests always start from (and restore) the hermetic provider."""

from __future__ import annotations

import pytest

from repro.runner import provider


@pytest.fixture(autouse=True)
def _fresh_provider():
    provider.reset()
    yield
    provider.reset()
