"""Engine: scheduling, cache warm-up, crash retry, determinism.

The synthetic job kinds registered here rely on the Linux ``fork`` start
method: pool workers inherit the parent's job-kind registry.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis import experiments as ex
from repro.runner import provider
from repro.runner.cache import ResultCache
from repro.runner.engine import run_jobs
from repro.runner.jobs import JobSpec, canonical_json, register_job_kind, simulate_spec


def _token_spec(token: str, **extra) -> JobSpec:
    return JobSpec("echo-token", canonical_json({"token": token, **extra}))


register_job_kind(
    "echo-token", lambda params: {"token": params["token"], "simulations": 1}, replace=True
)


def _crash_once(params):
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed")
        os._exit(3)  # hard death: poisons the whole process pool
    return {"token": params["token"], "simulations": 1}


register_job_kind("crash-once", _crash_once, replace=True)


def _always_fails(params):
    raise ValueError("synthetic failure")


register_job_kind("always-fails", _always_fails, replace=True)


def _sleepy(params):
    import time

    time.sleep(float(params["sleep_s"]))
    return {"token": params["token"], "simulations": 1}


register_job_kind("sleepy", _sleepy, replace=True)


class TestScheduling:
    def test_serial_run_resolves_and_primes(self):
        jobs = [_token_spec("a"), _token_spec("b")]
        report = run_jobs(jobs, parallel=1)
        assert report.ok
        assert (report.unique, report.executed, report.simulations) == (2, 2, 2)
        assert provider.active().stats.primed == 2
        # The render phase hits the memo: nothing executes again.
        payload = provider.active().get(jobs[0])
        assert payload["token"] == "a"
        assert provider.active().stats.executed == 0

    def test_duplicate_identities_collapse(self):
        report = run_jobs([_token_spec("a"), _token_spec("a"), _token_spec("b")])
        assert (report.planned, report.unique, report.executed) == (3, 2, 2)

    def test_parallel_pool_resolves_everything(self):
        jobs = [_token_spec(f"t{i}") for i in range(6)]
        report = run_jobs(jobs, parallel=3)
        assert report.ok
        assert report.executed == 6
        for spec in jobs:
            assert provider.active().get(spec)["token"] == spec.params["token"]

    def test_cache_stats_line_is_greppable(self):
        report = run_jobs([_token_spec("a")])
        line = report.cache_stats_line()
        assert "1 unique jobs" in line
        assert "simulations executed" in line


class TestCacheWarmup:
    def test_second_run_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_token_spec("a"), _token_spec("b")]
        cold = run_jobs(jobs, cache=cache)
        assert (cold.disk_hits, cold.executed) == (0, 2)
        warm = run_jobs(jobs, cache=cache)
        assert (warm.disk_hits, warm.executed, warm.simulations) == (2, 0, 0)

    def test_warm_entries_prime_the_provider(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_token_spec("a")]
        run_jobs(jobs, cache=cache)
        provider.reset()
        run_jobs(jobs, cache=cache)
        assert provider.active().stats.primed == 1
        assert provider.active().get(jobs[0])["token"] == "a"
        assert provider.active().stats.executed == 0


class TestFailureHandling:
    def test_error_is_retried_then_recorded(self):
        spec = JobSpec("always-fails", canonical_json({"n": 1}))
        report = run_jobs([spec], retries=1)
        assert not report.ok
        assert report.retries == 1
        assert report.failures[0].attempts == 2
        assert "ValueError" in report.failures[0].error

    def test_failure_does_not_poison_other_jobs(self):
        bad = JobSpec("always-fails", canonical_json({"n": 1}))
        good = _token_spec("ok")
        report = run_jobs([bad, good], retries=0)
        assert len(report.failures) == 1
        assert provider.active().get(good)["token"] == "ok"

    def test_worker_crash_is_retried_on_a_rebuilt_pool(self, tmp_path):
        marker = tmp_path / "crashed-once"
        crash = JobSpec(
            "crash-once",
            canonical_json({"marker": str(marker), "token": "recovered"}),
        )
        others = [_token_spec(f"t{i}") for i in range(3)]
        report = run_jobs([crash, *others], parallel=2, retries=1)
        assert report.ok, [f.error for f in report.failures]
        assert report.retries >= 1
        assert marker.exists()
        assert provider.active().get(crash)["token"] == "recovered"

    def test_timeout_counts_as_a_crash(self):
        jobs = [
            JobSpec("sleepy", canonical_json({"sleep_s": 5.0, "token": f"s{i}"}))
            for i in range(2)
        ]
        report = run_jobs(jobs, parallel=2, retries=0, job_timeout_s=0.3)
        assert len(report.failures) == 2
        assert all("timeout" in failure.error for failure in report.failures)


class TestDeterminism:
    @pytest.fixture()
    def settings(self) -> ex.ExperimentSettings:
        return ex.ExperimentSettings(
            accesses=600, seed=5, applications=("lbm", "vips")
        )

    def test_parallel_render_matches_serial_render(self, settings):
        serial = ex.write_reduction_survey(settings).render()

        provider.reset()
        report = run_jobs(ex.comparison_jobs(settings), parallel=2)
        assert report.ok and report.executed == 4
        parallel_render = ex.write_reduction_survey(settings).render()
        # Rendering after the pool warm-up executed nothing new...
        assert provider.active().stats.executed == 0
        # ...and produced byte-identical output.
        assert parallel_render == serial

    def test_simulate_payload_survives_worker_transport(self, settings):
        spec = simulate_spec(
            workload="vips", controller="dewrite", accesses=400, seed=2
        )
        run_jobs([spec, _token_spec("pad")], parallel=2)
        from repro.runner.jobs import execute_job

        transported = provider.active().get(spec)
        local = execute_job(spec)
        assert transported == local


class TestObservability:
    def test_serial_run_records_job_timings(self):
        report = run_jobs([_token_spec("a"), _token_spec("b")])
        assert len(report.job_timings) == 2
        for timing in report.job_timings:
            assert timing["source"] == "executed"
            assert timing["kind"] == "echo-token"
            assert timing["compute_s"] >= 0.0
            assert timing["queue_s"] == 0.0
            assert timing["attempts"] == 1
            assert timing["label"] and timing["key"]

    def test_parallel_run_records_queue_and_compute(self):
        jobs = [_token_spec(f"q{i}") for i in range(4)]
        report = run_jobs(jobs, parallel=2)
        assert len(report.job_timings) == 4
        for timing in report.job_timings:
            assert timing["source"] == "executed"
            assert timing["compute_s"] >= 0.0
            assert timing["queue_s"] >= 0.0

    def test_disk_cache_hits_timed_as_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        jobs = [_token_spec("a")]
        run_jobs(jobs, cache=cache)
        warm = run_jobs(jobs, cache=cache)
        assert [t["source"] for t in warm.job_timings] == ["cache"]
        assert warm.job_timings[0]["compute_s"] == 0.0

    def test_failed_job_timed_as_failed(self):
        spec = JobSpec("always-fails", canonical_json({"n": 2}))
        report = run_jobs([spec], retries=0)
        (timing,) = report.job_timings
        assert timing["source"] == "failed"
        assert timing["attempts"] == 1

    def test_tracer_sees_job_spans_and_retry_events(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        good = _token_spec("traced")
        bad = JobSpec("always-fails", canonical_json({"n": 3}))
        report = run_jobs([good, bad], retries=1, tracer=tracer)
        assert not report.ok
        job_spans = tracer.spans("job")
        assert len(job_spans) == 1
        assert job_spans[0]["attrs"]["label"] == good.label
        retries = tracer.events("job.retry")
        assert len(retries) == 1
        assert "ValueError" in retries[0]["attrs"]["error"]
        failures = tracer.events("job.failed")
        assert len(failures) == 1
        assert failures[0]["attrs"]["attempts"] == 2

    def test_parallel_tracer_records_wall_job_spans(self):
        from repro.obs.trace import Tracer

        tracer = Tracer()
        jobs = [_token_spec(f"w{i}") for i in range(3)]
        report = run_jobs(jobs, parallel=2, tracer=tracer)
        assert report.ok
        spans = tracer.spans("job")
        assert len(spans) == 3
        for span in spans:
            assert span["clock"] == "wall"
            assert span["attrs"]["source"] == "executed"
            assert span["attrs"]["queue_s"] >= 0.0

    def test_parallel_workers_merge_metrics_into_parent(self):
        from repro.obs.metrics import registry, reset_registry

        reset_registry()
        jobs = [_token_spec(f"m{i}") for i in range(4)]
        report = run_jobs(jobs, parallel=2)
        assert report.ok
        assert registry().counter("jobs.echo-token").value == 4.0
        assert registry().counter("simulations").value == 4.0
        reset_registry()
