"""FaultPlan: validation and serialisation round-trips."""

from __future__ import annotations

import pytest

from repro.faults.plan import CELL_FAULT_MODES, FaultPlan


class TestValidation:
    def test_defaults_valid(self):
        plan = FaultPlan()
        assert plan.seed == 1
        assert plan.power_loss_ns is None
        assert plan.power_loss_at_access is None
        assert plan.cell_faults == 0

    def test_negative_power_loss_time_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(power_loss_ns=-1.0)

    def test_zero_access_ordinal_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(power_loss_at_access=0)

    def test_negative_cell_faults_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(cell_faults=-1)

    def test_unknown_cell_fault_mode_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(cell_fault_mode="cosmic_ray")

    def test_zero_fault_bits_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(cell_fault_bits=0)

    def test_drop_probability_range_enforced(self):
        with pytest.raises(ValueError):
            FaultPlan(flush_drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultPlan(flush_drop_probability=-0.1)

    def test_all_modes_accepted(self):
        for mode in CELL_FAULT_MODES:
            assert FaultPlan(cell_fault_mode=mode).cell_fault_mode == mode


class TestRoundTrip:
    def test_full_round_trip(self):
        plan = FaultPlan(
            seed=7,
            power_loss_at_access=1234,
            cell_faults=3,
            cell_fault_mode="stuck_at_one",
            cell_fault_bits=2,
            flush_drop_probability=0.25,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_time_trigger_round_trip(self):
        plan = FaultPlan(power_loss_ns=50_000.0)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.power_loss_ns == 50_000.0
        assert clone.power_loss_at_access is None

    def test_from_dict_fills_defaults(self):
        plan = FaultPlan.from_dict({"seed": 3})
        assert plan == FaultPlan(seed=3)

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            FaultPlan.from_dict({"seed": 1, "cell_fault_mode": "bogus"})
