"""Cell-fault and flush-fault injectors: determinism and policy semantics."""

from __future__ import annotations

import pytest

from repro.core.persistence import MetadataPersistenceConfig, MetadataPersistencePolicy
from repro.core.registry import build_controller
from repro.faults.injectors import CellFaultInjector, FlushFaultModel
from repro.faults.journal import MetadataUpdate
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def worn_nvm(writes_per_line=(8, 4, 2, 1)) -> NvmMainMemory:
    """An NVM whose wear tracker saw an uneven write distribution."""
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=1024 * LINE))
    )
    controller = build_controller("secure-nvm", nvm)
    now = 0.0
    for address, writes in enumerate(writes_per_line):
        for i in range(writes):
            data = bytes([address + 1]) * 128 + i.to_bytes(8, "little") + bytes(120)
            now = controller.write(address, data, now).complete_ns + 50.0
    return nvm


class TestCellFaultInjector:
    def test_validation(self):
        with pytest.raises(ValueError):
            CellFaultInjector(seed=1, faults=-1)
        with pytest.raises(ValueError):
            CellFaultInjector(seed=1, faults=1, mode="gamma_burst")
        with pytest.raises(ValueError):
            CellFaultInjector(seed=1, faults=1, bits=0)

    def test_same_seed_same_faults(self):
        nvm_a, nvm_b = worn_nvm(), worn_nvm()
        faults_a = CellFaultInjector(seed=42, faults=3).inject(nvm_a)
        faults_b = CellFaultInjector(seed=42, faults=3).inject(nvm_b)
        assert [f.to_dict() for f in faults_a] == [f.to_dict() for f in faults_b]

    def test_victims_come_from_written_lines(self):
        nvm = worn_nvm()
        written = set(nvm.wear.written_lines())
        faults = CellFaultInjector(seed=1, faults=100).inject(nvm)
        victims = [f.line for f in faults]
        assert set(victims) <= written
        assert len(victims) == len(set(victims))  # distinct
        assert len(victims) == len(written)  # demand beyond population: all

    def test_line_limit_restricts_victims(self):
        nvm = worn_nvm()
        faults = CellFaultInjector(seed=1, faults=100).inject(nvm, line_limit=2)
        assert faults  # lines 0 and 1 were written
        assert all(f.line < 2 for f in faults)

    def test_bit_flip_changes_content(self):
        nvm = worn_nvm()
        before = {f: nvm.peek(f) for f in nvm.wear.written_lines()}
        faults = CellFaultInjector(seed=3, faults=2, mode="bit_flip").inject(nvm)
        for fault in faults:
            assert fault.changed
            assert nvm.peek(fault.line) != before[fault.line]
            assert len(fault.bits) == 1

    def test_stuck_at_zero_forces_bits_low(self):
        nvm = worn_nvm()
        line_bits = LINE * 8
        faults = CellFaultInjector(
            seed=3, faults=1, mode="stuck_at_zero", bits=line_bits
        ).inject(nvm)
        [fault] = faults
        assert nvm.peek(fault.line) == bytes(LINE)

    def test_stuck_at_fault_on_matching_cell_reports_unchanged(self):
        nvm = worn_nvm()
        line_bits = LINE * 8
        CellFaultInjector(seed=3, faults=1, mode="stuck_at_zero", bits=line_bits).inject(nvm)
        # Same victim, same mode: the cell is already stuck — still reported.
        faults = CellFaultInjector(
            seed=3, faults=1, mode="stuck_at_zero", bits=line_bits
        ).inject(nvm)
        [fault] = faults
        assert not fault.changed

    def test_wear_bias_prefers_hot_lines(self):
        # Line 0 carries ~10x the weight of line 3; across many seeds it
        # must be picked first far more often (exact counts are seeded
        # and deterministic, so this is a fixed assertion, not flaky).
        nvm = worn_nvm(writes_per_line=(40, 4, 4, 4))
        first_picks = []
        for seed in range(30):
            injector = CellFaultInjector(seed=seed, faults=1)
            first_picks.append(injector.inject(nvm)[0].line)
            # inject() mutates cells but not wear counts, so reuse is fine.
        assert first_picks.count(0) > 15


def update(ns: float) -> MetadataUpdate:
    return MetadataUpdate(ns=ns, kind="map", key=int(ns), value=1)


def persistence(policy: MetadataPersistencePolicy, interval: float = 100.0):
    return MetadataPersistenceConfig(policy=policy, writeback_interval_ns=interval)


class TestFlushFaultModel:
    def test_drop_probability_validated(self):
        with pytest.raises(ValueError):
            FlushFaultModel(persistence(MetadataPersistencePolicy.BATTERY_BACKED), 1.5, 1)

    def test_battery_backed_never_drops(self):
        model = FlushFaultModel(
            persistence(MetadataPersistencePolicy.BATTERY_BACKED), 1.0, seed=1
        )
        events = tuple(update(float(ns)) for ns in range(10))
        kept, dropped = model.retained(events, horizon_ns=100.0)
        assert len(kept) == 10
        assert dropped == []

    def test_write_through_drops_each_event_independently(self):
        model = FlushFaultModel(
            persistence(MetadataPersistencePolicy.WRITE_THROUGH), 1.0, seed=1
        )
        events = tuple(update(float(ns)) for ns in range(10))
        kept, dropped = model.retained(events, horizon_ns=100.0)
        assert kept == []
        assert len(dropped) == 10

    def test_periodic_drops_only_final_flush_batch(self):
        # horizon 200, interval 100: only events in (100, 200] can tear —
        # earlier batches were re-persisted by every later flush.
        model = FlushFaultModel(
            persistence(MetadataPersistencePolicy.PERIODIC_WRITEBACK, 100.0),
            1.0,
            seed=1,
        )
        events = tuple(update(float(ns)) for ns in (10, 90, 100, 150, 200))
        kept, dropped = model.retained(events, horizon_ns=200.0)
        assert [e.ns for e in kept] == [10.0, 90.0, 100.0]
        assert [e.ns for e in dropped] == [150.0, 200.0]

    def test_events_past_horizon_excluded_from_both_lists(self):
        model = FlushFaultModel(
            persistence(MetadataPersistencePolicy.WRITE_THROUGH), 1.0, seed=1
        )
        events = (update(50.0), update(150.0))
        kept, dropped = model.retained(events, horizon_ns=100.0)
        assert kept == []
        assert [e.ns for e in dropped] == [50.0]  # 150 is a crash loss

    def test_zero_probability_keeps_everything(self):
        model = FlushFaultModel(
            persistence(MetadataPersistencePolicy.WRITE_THROUGH), 0.0, seed=1
        )
        events = tuple(update(float(ns)) for ns in range(5))
        kept, dropped = model.retained(events, horizon_ns=100.0)
        assert len(kept) == 5 and dropped == []

    def test_same_seed_same_split(self):
        events = tuple(update(float(ns)) for ns in range(50))

        def split():
            model = FlushFaultModel(
                persistence(MetadataPersistencePolicy.WRITE_THROUGH), 0.4, seed=9
            )
            return model.retained(events, horizon_ns=100.0)

        assert split() == split()
