"""Fault campaigns through the experiment engine, and the faults CLI verb."""

from __future__ import annotations

import json

import pytest

from repro.faults.campaign import (
    DEFAULT_POINTS,
    DEFAULT_POLICIES,
    PERSISTENCE_AWARE_CONTROLLERS,
    campaign_specs,
    crash_recovery_spec,
    run_crash_recovery_job,
    vulnerability_table,
)
from repro.faults.plan import FaultPlan
from repro.runner.jobs import canonical_json, execute_job


def spec(**overrides):
    params = dict(
        workload="lbm",
        controller="dewrite",
        accesses=300,
        seed=1,
        plan=FaultPlan(power_loss_at_access=150),
        policy="battery_backed",
        interval_ns=100_000.0,
    )
    params.update(overrides)
    return crash_recovery_spec(**params)


class TestSpecs:
    def test_identity_is_content_keyed(self):
        assert spec().identity == spec().identity
        assert spec().identity != spec(seed=2).identity
        assert spec().kind == "crash-recovery"

    def test_bad_policy_fails_at_spec_build_time(self):
        with pytest.raises(ValueError):
            spec(policy="prayer")

    def test_bad_interval_fails_at_spec_build_time(self):
        with pytest.raises(ValueError):
            spec(policy="periodic_writeback", interval_ns=0.0)

    def test_grid_size(self):
        specs = campaign_specs(
            workload="lbm",
            accesses=300,
            seed=1,
            controllers=("dewrite", "secure-nvm"),
        )
        assert len(specs) == 2 * len(DEFAULT_POLICIES) * len(DEFAULT_POINTS)

    def test_persistence_plumbed_only_to_aware_controllers(self):
        specs = campaign_specs(
            workload="lbm",
            accesses=300,
            seed=1,
            controllers=("dewrite", "secure-nvm"),
            points=(0.5,),
        )
        for job in specs:
            params = job.params
            if params["controller"] in PERSISTENCE_AWARE_CONTROLLERS:
                assert params["opts"]["persistence"]["policy"] == params["policy"]
            else:
                assert "persistence" not in params["opts"]

    def test_crash_point_must_be_a_trace_fraction(self):
        for point in (0.0, -0.5, 1.1):
            with pytest.raises(ValueError):
                campaign_specs(
                    workload="lbm", accesses=300, seed=1,
                    controllers=("dewrite",), points=(point,),
                )

    def test_point_maps_to_access_ordinal(self):
        [job] = campaign_specs(
            workload="lbm", accesses=300, seed=1,
            controllers=("dewrite",), policies=("battery_backed",), points=(0.5,),
        )
        assert job.params["plan"]["power_loss_at_access"] == 150


class TestExecution:
    def test_job_kind_runs_end_to_end(self):
        payload = execute_job(spec())
        assert payload["simulations"] == 1
        scenario = payload["scenario"]
        report = scenario["report"]
        assert report["intact"] + report["stale"] + report["lost"] == report["total_lines"]
        assert scenario["policy"] == "battery_backed"
        assert report["lost"] == 0  # battery-backed loses nothing

    def test_direct_executor_matches_engine_dispatch(self):
        job = spec()
        assert run_crash_recovery_job(job.params) == execute_job(job)

    def test_serial_and_parallel_runs_are_byte_identical(self):
        from repro.runner import provider
        from repro.runner.engine import run_jobs

        jobs = campaign_specs(
            workload="lbm", accesses=300, seed=1,
            controllers=("dewrite",),
            policies=("battery_backed", "periodic_writeback"),
            points=(0.5,),
            cell_faults=1,
            drop_probability=0.2,
        )
        serial = [canonical_json(execute_job(job)) for job in jobs]
        report = run_jobs(jobs, parallel=2)
        assert report.ok
        parallel = [canonical_json(provider.active().get(job)) for job in jobs]
        assert serial == parallel


class TestVulnerabilityTable:
    @staticmethod
    def scenario(policy: str, intact: int, stale: int, lost: int):
        return {
            "policy": policy,
            "report": {
                "total_lines": intact + stale + lost,
                "intact": intact,
                "stale": stale,
                "lost": lost,
            },
            "recovery": {
                "lost_counter_lines": list(range(lost)),
                "recovery_time_ns": 1_000.0,
            },
        }

    def test_rows_aggregate_crash_points(self):
        entries = [
            ("dewrite", self.scenario("periodic_writeback", 90, 4, 6)),
            ("dewrite", self.scenario("periodic_writeback", 80, 10, 10)),
            ("dewrite", self.scenario("battery_backed", 100, 0, 0)),
        ]
        rendered = vulnerability_table(entries, 100_000.0).render()
        rows = [
            line for line in rendered.splitlines()
            if "dewrite" in line and not line.startswith("note:")
        ]
        assert len(rows) == 2  # one row per (controller, policy)
        [periodic] = [line for line in rows if "periodic_writeback" in line]
        fields = periodic.split()
        assert "200" in fields  # lines: 2 points x 100
        assert "16" in fields  # lost: 6 + 10

    def test_window_column_and_footnotes(self):
        entries = [("dewrite", self.scenario("periodic_writeback", 10, 0, 0))]
        rendered = vulnerability_table(entries, 50_000.0).render()
        assert "50,000" in rendered
        assert "worst-case age" in rendered
        assert "crash-model assumption" in rendered


class TestCli:
    def test_faults_verb_renders_table_and_manifest(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.obs.manifest import load_manifest

        manifest_path = tmp_path / "manifest.json"
        json_path = tmp_path / "scenarios.json"
        code = main([
            "faults", "system",
            "--apps", "lbm",
            "--accesses", "300",
            "--controllers", "dewrite",
            "--policies", "battery_backed,periodic_writeback",
            "--points", "0.5",
            "--no-cache",
            "--json", str(json_path),
            "--manifest", str(manifest_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Crash vulnerability windows" in out

        payload = load_manifest(manifest_path)  # validates schema 2
        faults = payload["faults"]
        assert faults["interval_ns"] == 100_000.0
        assert len(faults["scenarios"]) == 2
        policies = {s["policy"] for s in faults["scenarios"]}
        assert policies == {"battery_backed", "periodic_writeback"}

        scenarios = json.loads(json_path.read_text(encoding="utf-8"))
        assert len(scenarios) == 2
        assert all(s["controller"] == "dewrite" for s in scenarios)

    def test_unknown_policy_is_a_clean_cli_error(self, capsys):
        from repro.__main__ import main

        code = main([
            "faults", "system", "--apps", "lbm", "--accesses", "300",
            "--controllers", "dewrite", "--policies", "prayer",
            "--no-cache",
        ])
        assert code == 2
        assert "prayer" in capsys.readouterr().err
