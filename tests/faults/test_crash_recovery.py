"""Crash simulation, recovery and consistency auditing, end to end."""

from __future__ import annotations

import pytest

from repro.core.interface import MemoryController
from repro.core.persistence import MetadataPersistenceConfig, MetadataPersistencePolicy
from repro.core.registry import build_controller
from repro.faults.adapters import UnsupportedControllerError, adapter_for
from repro.faults.audit import ConsistencyAuditor, ConsistencyReport
from repro.faults.crash import CrashSimulator, PowerLossError, run_crash_scenario
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryManager
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.obs.trace import Tracer
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name

LINE = 256

#: One representative controller per adapter family.
FAMILIES = ("dewrite", "secure-nvm", "silent-shredder", "i-nvmm")


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


def persistence(policy: str, interval_ns: float = 100_000.0) -> MetadataPersistenceConfig:
    return MetadataPersistenceConfig(
        policy=MetadataPersistencePolicy(policy), writeback_interval_ns=interval_ns
    )


def trace(accesses: int = 400, name: str = "lbm"):
    return generate_trace(profile_by_name(name), accesses, seed=1)


def fill(value: int) -> bytes:
    return bytes([value]) * LINE


class TestCrashSimulator:
    def test_access_trigger_raises_before_issuing(self):
        controller = build_controller("dewrite", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan(power_loss_at_access=2))
        wrapper.write(0, fill(1), 0.0)
        with pytest.raises(PowerLossError):
            wrapper.write(1, fill(2), 1_000.0)
        # The doomed write never reached the controller or the journal.
        assert wrapper.oracle.written_addresses() == (0,)

    def test_time_trigger_covers_drained_writes(self):
        controller = build_controller("dewrite", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan(power_loss_ns=500.0))
        outcome = wrapper.write(0, fill(1), 0.0)
        with pytest.raises(PowerLossError) as excinfo:
            wrapper.write(1, fill(2), 600.0)
        # Crash instant covers the committed write's completion.
        assert excinfo.value.crash_ns >= outcome.complete_ns

    def test_reads_count_toward_access_ordinal(self):
        controller = build_controller("dewrite", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan(power_loss_at_access=3))
        wrapper.write(0, fill(1), 0.0)
        wrapper.read(0, 1_000.0)
        with pytest.raises(PowerLossError):
            wrapper.read(0, 2_000.0)

    def test_journal_grows_with_writes_not_reads(self):
        controller = build_controller("dewrite", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan())
        wrapper.write(0, fill(1), 0.0)
        events_after_write = len(wrapper.journal)
        wrapper.read(0, 1_000.0)
        assert events_after_write > 0
        assert len(wrapper.journal) == events_after_write


class TestAdapterDispatch:
    def test_every_registered_family_supported(self):
        for name in FAMILIES:
            adapter = adapter_for(build_controller(name, make_nvm()))
            assert adapter.metadata_lines() > 0
            assert adapter.data_lines() > 0

    def test_unknown_controller_rejected(self):
        class Mystery(MemoryController):
            def write(self, address, data, arrival_ns):
                raise NotImplementedError

            def read(self, address, arrival_ns):
                raise NotImplementedError

        with pytest.raises(UnsupportedControllerError):
            adapter_for(Mystery(make_nvm()))


@pytest.mark.parametrize("name", FAMILIES)
class TestEndToEndScenario:
    def test_battery_backed_loses_nothing(self, name):
        result = run_crash_scenario(
            build_controller(name, make_nvm()),
            trace(),
            FaultPlan(power_loss_at_access=200),
            persistence("battery_backed"),
        )
        result.report.verify()
        assert not result.completed_trace
        assert result.accesses_before_crash == 199
        assert result.report.lost == 0
        assert result.report.stale == 0
        assert result.report.intact == result.report.total_lines

    def test_write_through_without_tearing_matches_battery(self, name):
        plan = FaultPlan(power_loss_at_access=200)
        reports = [
            run_crash_scenario(
                build_controller(name, make_nvm()), trace(), plan, persistence(policy)
            ).report
            for policy in ("battery_backed", "write_through")
        ]
        assert reports[0] == reports[1]

    def test_periodic_losses_confined_to_vulnerability_window(self, name):
        from repro.system.simulator import simulate

        interval = 2_000.0
        controller = build_controller(name, make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan(power_loss_at_access=300))
        with pytest.raises(PowerLossError) as excinfo:
            simulate(wrapper, trace())
        crash_ns = excinfo.value.crash_ns
        config = persistence("periodic_writeback", interval_ns=interval)
        recovery = RecoveryManager(wrapper.adapter, config).recover(
            wrapper.journal.events(), crash_ns
        )
        report = ConsistencyAuditor(wrapper.oracle, wrapper.adapter).audit(
            recovery.durable
        )
        report.verify()
        horizon = recovery.horizon_ns
        assert horizon == pytest.approx((crash_ns // interval) * interval)
        # Damage is confined to the vulnerability window: a non-intact
        # line must trace back to metadata activity after the last flush
        # boundary — anything whose journal went quiet before the horizon
        # was durable and recovers intact.
        damaged = set(report.stale_examples) | set(report.lost_examples)
        touched_after = {e.key for e in wrapper.journal.events() if e.ns > horizon}
        assert damaged <= touched_after

    def test_same_plan_same_report(self, name):
        def run():
            return run_crash_scenario(
                build_controller(name, make_nvm()),
                trace(),
                FaultPlan(power_loss_at_access=250, cell_faults=2,
                          flush_drop_probability=0.3),
                persistence("write_through"),
            )

        first, second = run(), run()
        assert first.to_dict() == second.to_dict()


class TestVerdictConstructions:
    def test_dedup_stale_reference(self):
        # B=x then A=x (A dedups onto B's line); the horizon passes; A=y.
        # The durable image still maps A at B's line, whose content
        # decrypts fine but is one version behind: stale.
        controller = build_controller("dewrite", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan())
        x, y = fill(0xAA), fill(0xBB)
        wrapper.write(1, x, 0.0)
        wrapper.write(0, x, 500.0)
        outcome = wrapper.write(0, y, 150_000.0)
        manager = RecoveryManager(wrapper.adapter, persistence("periodic_writeback"))
        recovery = manager.recover(wrapper.journal.events(), outcome.complete_ns)
        report = ConsistencyAuditor(wrapper.oracle, wrapper.adapter).audit(
            recovery.durable
        )
        assert report.stale == 1
        assert report.stale_examples == (0,)
        assert wrapper.adapter.recovered_plaintext(recovery.durable, 0) == x

    def test_shredder_stale_after_unpersisted_shred(self):
        # A=v1, horizon, A=zeros (a shred mark, not an array write).  The
        # durable image never saw the shred: the array still holds v1's
        # ciphertext under the durable counter — stale, not lost.
        controller = build_controller("silent-shredder", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan())
        v1 = fill(0x11)
        wrapper.write(0, v1, 0.0)
        outcome = wrapper.write(0, bytes(LINE), 150_000.0)
        manager = RecoveryManager(wrapper.adapter, persistence("periodic_writeback"))
        recovery = manager.recover(wrapper.journal.events(), outcome.complete_ns)
        report = ConsistencyAuditor(wrapper.oracle, wrapper.adapter).audit(
            recovery.durable
        )
        assert report.stale == 1
        assert wrapper.adapter.recovered_plaintext(recovery.durable, 0) == v1

    def test_lost_counter_renders_line_undecryptable(self):
        # A=v1 durable; A=v2 past the horizon bumps the counter in place.
        # The durable counter no longer matches the array bytes: lost.
        controller = build_controller("secure-nvm", make_nvm())
        wrapper = CrashSimulator(controller, FaultPlan())
        wrapper.write(0, fill(0x11), 0.0)
        outcome = wrapper.write(0, fill(0x22), 150_000.0)
        manager = RecoveryManager(wrapper.adapter, persistence("periodic_writeback"))
        recovery = manager.recover(wrapper.journal.events(), outcome.complete_ns)
        assert recovery.lost_counter_lines == (0,)
        report = ConsistencyAuditor(wrapper.oracle, wrapper.adapter).audit(
            recovery.durable
        )
        assert report.lost == 1

    def test_cell_faults_can_only_hurt(self):
        plan = FaultPlan(power_loss_at_access=200)
        faulty_plan = FaultPlan(power_loss_at_access=200, cell_faults=4)
        clean = run_crash_scenario(
            build_controller("dewrite", make_nvm()), trace(), plan,
            persistence("battery_backed"),
        )
        faulty = run_crash_scenario(
            build_controller("dewrite", make_nvm()), trace(), faulty_plan,
            persistence("battery_backed"),
        )
        faulty.report.verify()
        # Victims are drawn from written data lines; dedup can shrink the
        # population below the demanded fault count.
        assert 1 <= len(faulty.cell_faults) <= 4
        assert faulty.report.intact <= clean.report.intact
        assert faulty.report.total_lines == clean.report.total_lines


class TestRecoveryMetrics:
    def test_recovery_time_prices_the_metadata_scan(self):
        controller = build_controller("dewrite", make_nvm())
        result = run_crash_scenario(
            controller, trace(accesses=100), FaultPlan(power_loss_at_access=50),
            persistence("battery_backed"),
        )
        adapter = adapter_for(controller)
        expected = adapter.metadata_lines() * (
            controller.nvm.config.timing.read_ns + adapter.metadata_decrypt_ns()
        )
        assert result.recovery.recovery_time_ns == pytest.approx(expected)

    def test_scenario_serialises_to_plain_json(self):
        import json

        result = run_crash_scenario(
            build_controller("secure-nvm", make_nvm()), trace(accesses=100),
            FaultPlan(power_loss_at_access=50, cell_faults=1),
            persistence("periodic_writeback"),
        )
        payload = json.loads(json.dumps(result.to_dict()))
        ConsistencyReport.from_dict(payload["report"])
        assert payload["policy"] == "periodic_writeback"
        assert payload["plan"]["cell_faults"] == 1

    def test_trace_bus_receives_fault_events(self):
        tracer = Tracer()
        run_crash_scenario(
            build_controller("dewrite", make_nvm()), trace(accesses=100),
            FaultPlan(power_loss_at_access=50, cell_faults=1),
            persistence("battery_backed"),
            tracer=tracer,
        )
        names = [r["name"] for r in tracer.records if r["type"] == "event"]
        assert "fault.power_loss" in names
        assert "fault.cell" in names

    def test_clean_run_crashes_at_trace_end(self):
        result = run_crash_scenario(
            build_controller("dewrite", make_nvm()), trace(accesses=100),
            FaultPlan(),  # no trigger: power pulled after the last access
            persistence("battery_backed"),
        )
        assert result.completed_trace
        assert result.accesses_before_crash == 100
        assert result.report.intact == result.report.total_lines
