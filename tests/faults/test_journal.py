"""Durability journal: event vocabulary and replay semantics."""

from __future__ import annotations

import pytest

from repro.faults.journal import (
    UPDATE_KINDS,
    DurabilityJournal,
    MetadataUpdate,
    replay,
)


def ev(kind: str, key: int, value: int | None = None, ns: float = 0.0) -> MetadataUpdate:
    return MetadataUpdate(ns=ns, kind=kind, key=key, value=value)


class TestMetadataUpdate:
    def test_known_kinds(self):
        assert UPDATE_KINDS == ("map", "ctr", "stored", "free", "shred", "plain")
        for kind in UPDATE_KINDS:
            ev(kind, 1, 2)  # constructs without error

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ev("teleport", 1)


class TestReplaySemantics:
    def test_map_sets_mapping_and_clears_line_states(self):
        state = replay([ev("shred", 5), ev("plain", 5), ev("map", 5, 9)])
        assert state.mapping == {5: 9}
        assert 5 not in state.shredded
        assert 5 not in state.plaintext

    def test_map_requires_value(self):
        with pytest.raises(ValueError):
            replay([ev("map", 5)])

    def test_ctr_sets_counter_and_clears_plaintext(self):
        state = replay([ev("plain", 3), ev("ctr", 3, 7)])
        assert state.counters == {3: 7}
        assert 3 not in state.plaintext

    def test_ctr_requires_value(self):
        with pytest.raises(ValueError):
            replay([ev("ctr", 3)])

    def test_stored_and_free(self):
        state = replay([ev("stored", 4, 0xBEEF), ev("free", 4)])
        assert state.stored == {}
        # Freeing a never-stored line is a no-op, not an error.
        replay([ev("free", 99)])

    def test_stored_requires_value(self):
        with pytest.raises(ValueError):
            replay([ev("stored", 4)])

    def test_shred_marks_and_unmaps(self):
        state = replay([ev("map", 2, 8), ev("shred", 2)])
        assert 2 in state.shredded
        assert 2 not in state.mapping

    def test_plain_sets_identity_mapping_and_drops_counter(self):
        state = replay([ev("ctr", 6, 3), ev("shred", 6), ev("plain", 6)])
        assert state.mapping == {6: 6}
        assert 6 not in state.counters
        assert 6 not in state.shredded
        assert 6 in state.plaintext

    def test_later_events_win(self):
        state = replay([ev("map", 1, 10), ev("map", 1, 20), ev("ctr", 10, 1),
                        ev("ctr", 10, 2)])
        assert state.mapping == {1: 20}
        assert state.counters == {10: 2}


class TestDurabilityJournal:
    def test_record_extend_and_order(self):
        journal = DurabilityJournal()
        journal.record(ev("map", 1, 2, ns=10.0))
        journal.extend([ev("ctr", 2, 1, ns=10.0), ev("stored", 2, 99, ns=10.0)])
        events = journal.events()
        assert len(journal) == 3
        assert [e.kind for e in events] == ["map", "ctr", "stored"]

    def test_prefix_replay_differs_from_full_replay(self):
        # The crash model's core operation: replay a horizon prefix vs the
        # full journal and compare.
        journal = DurabilityJournal()
        journal.extend([ev("map", 1, 10, ns=100.0), ev("map", 1, 20, ns=900.0)])
        durable = replay([e for e in journal.events() if e.ns <= 500.0])
        at_crash = replay(journal.events())
        assert durable.mapping == {1: 10}
        assert at_crash.mapping == {1: 20}
