"""The metrics registry: counters, gauges, histograms, lossless merge."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import (
    LATENCY_BOUNDS_NS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    reset_registry,
)


class TestCounter:
    def test_inc_and_merge_add(self):
        a = Counter("jobs")
        a.inc()
        a.inc(2.5)
        b = Counter("jobs")
        b.inc(4.0)
        a.merge(b)
        assert a.value == 7.5

    def test_decrease_rejected(self):
        with pytest.raises(ValueError):
            Counter("jobs").inc(-1.0)


class TestGauge:
    def test_merge_keeps_maximum(self):
        a = Gauge("peak")
        a.set(10.0)
        b = Gauge("peak")
        b.set(3.0)
        a.merge(b)
        assert a.value == 10.0
        b.merge(a)
        assert b.value == 10.0


class TestHistogram:
    def test_counts_land_in_correct_buckets(self):
        hist = Histogram("lat", bounds=(10.0, 100.0))
        for value in (5.0, 10.0, 11.0, 1000.0):
            hist.observe(value)
        # Buckets: <=10, <=100, overflow.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4

    def test_quantile_reports_bucket_upper_edge(self):
        hist = Histogram("lat", bounds=(10.0, 100.0, 1000.0))
        for _ in range(99):
            hist.observe(5.0)
        hist.observe(500.0)
        assert hist.quantile(50) == 10.0
        assert hist.quantile(99.9) == 1000.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("lat", bounds=(10.0,))
        hist.observe(123456.0)
        assert hist.quantile(99) == 123456.0

    def test_merge_requires_identical_bounds(self):
        with pytest.raises(ValueError):
            Histogram("a", bounds=(1.0, 2.0)).merge(Histogram("a", bounds=(1.0, 3.0)))

    def test_non_ascending_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("a", bounds=(10.0, 10.0))

    @settings(max_examples=50, deadline=None)
    @given(
        shards=st.lists(
            st.lists(st.floats(0.0, 1e7, allow_nan=False), max_size=40),
            min_size=1,
            max_size=6,
        )
    )
    def test_merge_of_worker_shards_is_lossless(self, shards):
        # The parallel-run contract: per-worker histograms merged in the
        # parent must equal one histogram that saw every sample.
        merged = Histogram("lat", bounds=LATENCY_BOUNDS_NS)
        for shard_samples in shards:
            shard = Histogram("lat", bounds=LATENCY_BOUNDS_NS)
            for sample in shard_samples:
                shard.observe(sample)
            merged.merge(shard)
        single = Histogram("lat", bounds=LATENCY_BOUNDS_NS)
        for sample in (s for shard in shards for s in shard):
            single.observe(sample)
        assert merged.counts == single.counts
        assert merged.count == single.count
        assert merged.total == pytest.approx(single.total)
        assert merged.min_value == single.min_value
        assert merged.max_value == single.max_value


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("jobs") is reg.counter("jobs")

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(3)
        reg.gauge("peak").set(9.0)
        reg.histogram("lat").observe(50.0)
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_merge_from_worker_snapshot(self):
        parent = MetricsRegistry()
        parent.counter("jobs").inc(1)
        worker = MetricsRegistry()
        worker.counter("jobs").inc(2)
        worker.histogram("lat").observe(42.0)
        parent.merge(worker.to_dict())
        assert parent.counter("jobs").value == 3.0
        assert parent.histogram("lat").count == 1

    def test_merge_kind_collision_rejected(self):
        parent = MetricsRegistry()
        parent.counter("x")
        other = MetricsRegistry()
        other.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            parent.merge(other.to_dict())

    def test_reset_clears_all(self):
        reg = MetricsRegistry()
        reg.counter("jobs").inc(5)
        reg.reset()
        assert reg.counter("jobs").value == 0.0

    def test_process_registry_is_shared_and_resettable(self):
        reset_registry()
        registry().counter("t").inc()
        assert registry().counter("t").value == 1.0
        reset_registry()
        assert registry().counter("t").value == 0.0
