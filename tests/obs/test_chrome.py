"""Chrome trace-event export: golden file, lane assignment, timelines."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.chrome import (
    SIM_PID,
    WALL_PID,
    chrome_trace,
    read_trace_jsonl,
    write_chrome_trace,
)

FIXTURES = Path(__file__).parent / "fixtures"


def _span(name: str, *, clock: str = "sim", ctx: dict | None = None, **attrs) -> dict:
    return {
        "type": "span",
        "name": name,
        "clock": clock,
        "start_ns": 100.0,
        "end_ns": 350.0,
        "dur_ns": 250.0,
        "depth": 0,
        "seq": 0,
        "wall_ns": 1,
        "attrs": attrs,
        "ctx": ctx or {},
    }


class TestGoldenExport:
    """The export format is a published contract: pinned byte-for-byte.

    The fixture is a recorded ``repro trace --out`` stream (sim-clock
    controller spans and metadata events) plus wall-clock runner ``job``
    spans across two worker lanes.  Regenerate the golden only for a
    deliberate, documented schema change::

        PYTHONPATH=src python -c "
        from repro.obs.chrome import read_trace_jsonl, write_chrome_trace
        write_chrome_trace(
            read_trace_jsonl('tests/obs/fixtures/trace_sample.jsonl'),
            'tests/obs/fixtures/trace_sample.chrome.json')"
    """

    def test_recorded_fixture_converts_to_pinned_golden(self, tmp_path):
        out = tmp_path / "converted.json"
        write_chrome_trace(
            read_trace_jsonl(FIXTURES / "trace_sample.jsonl"), out
        )
        golden = (FIXTURES / "trace_sample.chrome.json").read_text()
        assert out.read_text() == golden

    def test_conversion_is_deterministic(self):
        records = list(read_trace_jsonl(FIXTURES / "trace_sample.jsonl"))
        first = json.dumps(chrome_trace(records), sort_keys=True)
        second = json.dumps(chrome_trace(records), sort_keys=True)
        assert first == second

    def test_golden_is_valid_trace_event_json(self):
        payload = json.loads((FIXTURES / "trace_sample.chrome.json").read_text())
        assert payload["displayTimeUnit"] == "ns"
        phases = {event["ph"] for event in payload["traceEvents"]}
        assert phases == {"M", "X", "i"}
        for event in payload["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(event)


class TestTimelines:
    def test_sim_and_wall_spans_land_on_separate_processes(self):
        trace = chrome_trace(
            [
                _span("write.hash", clock="sim", ctx={"controller": "dewrite"}),
                _span("job", clock="wall", ctx={"worker": 0}),
            ]
        )
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {s["pid"] for s in spans} == {SIM_PID, WALL_PID}

    def test_timestamps_are_microseconds(self):
        trace = chrome_trace([_span("write.hash")])
        (span,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == 0.1  # 100 ns -> 0.1 us
        assert span["dur"] == 0.25

    def test_events_pick_timeline_by_sim_stamp(self):
        base = {"type": "event", "name": "metadata.miss", "seq": 0, "attrs": {}}
        trace = chrome_trace(
            [
                {**base, "sim_ns": 441.0},
                {**base, "name": "job.retry", "wall_ns": 2000},
            ]
        )
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert [e["pid"] for e in instants] == [SIM_PID, WALL_PID]
        assert all(e["s"] == "t" for e in instants)

    def test_lanes_assigned_by_first_context_key(self):
        trace = chrome_trace(
            [
                _span("job", clock="wall", ctx={"worker": 0}),
                _span("job", clock="wall", ctx={"worker": 1}),
                _span("job", clock="wall", ctx={"worker": 0}),
            ]
        )
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [names[s["tid"]] for s in spans] == ["worker:0", "worker:1", "worker:0"]

    def test_unlaned_records_share_the_main_lane(self):
        trace = chrome_trace([_span("write.hash", ctx={}), _span("nvm.read", ctx={})])
        names = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["name"] == "thread_name"
        }
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {names[s["tid"]] for s in spans} == {"main"}

    def test_span_args_merge_attrs_and_ctx(self):
        trace = chrome_trace(
            [_span("write.hash", ctx={"app": "lbm"}, fingerprint="crc32")]
        )
        (span,) = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert span["args"] == {"fingerprint": "crc32", "app": "lbm"}

    def test_unknown_record_types_are_skipped(self):
        trace = chrome_trace([{"type": "annotation", "name": "future"}])
        assert trace["traceEvents"] == []


class TestReadTraceJsonl:
    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            list(read_trace_jsonl(path))
