"""BatchProfiler: deterministic attribution, non-invasive wall timing."""

from __future__ import annotations

import pytest

from repro.core.interface import MemoryController
from repro.core.registry import build_controller
from repro.nvm.memory import NvmMainMemory
from repro.obs.profile import (
    PROFILE_SCHEMA_VERSION,
    BatchProfiler,
    render_stage_table,
    render_wall_summary,
)
from repro.obs.stages import StageAccumulator
from repro.runner.jobs import trace_for
from repro.system.simulator import simulate


def make_profiler(ticks=None) -> BatchProfiler:
    controller = build_controller("dewrite", NvmMainMemory())
    if ticks is None:
        return BatchProfiler(controller)
    clock_values = iter(ticks)
    return BatchProfiler(controller, clock=lambda: next(clock_values))


class TestWrapping:
    def test_attach_shadows_instance_not_class(self):
        profiler = make_profiler()
        controller = profiler.controller
        with profiler:
            # The wrapper shadows via the instance __dict__; the class
            # hierarchy the fused kernels' bail checks walk is untouched.
            assert "service_batch" in vars(controller)
            assert "service_batch" in vars(type(controller))
            assert type(controller).service_batch is not controller.service_batch
        assert "service_batch" not in vars(controller)

    def test_detach_restores_class_implementation(self):
        profiler = make_profiler()
        controller = profiler.controller
        profiler.attach()
        profiler.detach()
        assert controller.service_batch.__func__ is type(controller).service_batch

    def test_double_attach_rejected(self):
        profiler = make_profiler()
        profiler.attach()
        with pytest.raises(RuntimeError):
            profiler.attach()
        profiler.detach()

    def test_detach_without_attach_is_noop(self):
        make_profiler().detach()


class TestDeterministicClock:
    def test_wall_accounting_from_injected_clock(self):
        # Two batches: 100 ns and 40 ns by the injected clock.
        profiler = make_profiler(ticks=(0, 100, 500, 540))
        trace = trace_for("lbm", 400, 5)
        with profiler:
            simulate(profiler.controller, trace, batch_size=256)
        assert profiler.batches == 2
        assert profiler.requests == 400
        assert profiler.wall_ns_total == 140
        assert profiler.wall_ns_min == 40
        assert profiler.wall_ns_max == 100
        wall = profiler.report()["wall"]
        assert wall["wall_ns_per_request"] == pytest.approx(140 / 400)

    def test_profiled_report_matches_unobserved(self):
        import json

        trace = trace_for("lbm", 400, 5)
        plain = simulate(build_controller("dewrite", NvmMainMemory()), trace)
        profiler = make_profiler(ticks=range(0, 10_000, 7))
        with profiler:
            profiled = simulate(profiler.controller, trace)
        assert json.dumps(profiled.to_dict(), sort_keys=True) == json.dumps(
            plain.to_dict(), sort_keys=True
        )


class TestAttribution:
    def run_profiled(self) -> BatchProfiler:
        profiler = make_profiler()
        with profiler:
            simulate(profiler.controller, trace_for("lbm", 400, 5))
        return profiler

    def test_stage_rows_heaviest_first_with_leaf_shares(self):
        profiler = self.run_profiled()
        rows = profiler.stage_rows()
        assert rows, "fused kernel recorded no stages"
        totals = [row["total_ns"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        leaf_shares = [row["share"] for row in rows if "." in row["stage"]]
        assert all(share is not None for share in leaf_shares)
        assert sum(leaf_shares) == pytest.approx(1.0)
        composite = [row for row in rows if "." not in row["stage"]]
        assert all(row["share"] is None for row in composite)

    def test_collapsed_stacks_format(self):
        profiler = self.run_profiled()
        lines = profiler.collapsed_stacks()
        assert lines
        for line in lines:
            frames, _, weight = line.rpartition(" ")
            assert int(weight) > 0
            parts = frames.split(";")
            assert parts[0] == "controller"
            assert parts[1] == "DeWriteController.service_batch"
            assert "." in parts[2]  # leaf stages only

    def test_report_shape(self):
        profiler = self.run_profiled()
        report = profiler.report()
        assert report["schema"] == PROFILE_SCHEMA_VERSION
        assert report["kernel"] == "DeWriteController.service_batch"
        assert set(report) == {
            "schema", "kernel", "stages", "stage_rows", "flamegraph", "wall",
        }
        rebuilt = StageAccumulator.from_dict(report["stages"])
        assert rebuilt.to_dict() == report["stages"]

    def test_renderers_produce_text(self):
        profiler = self.run_profiled()
        table = render_stage_table(profiler)
        assert "kernel: DeWriteController.service_batch" in table
        assert "write.crypto" in table
        summary = render_wall_summary(profiler)
        assert "non-deterministic" in summary

    def test_kernel_name_follows_controller_class(self):
        controller = build_controller("secure-nvm", NvmMainMemory())
        assert isinstance(controller, MemoryController)
        name = BatchProfiler(controller).kernel
        assert name == f"{type(controller).__name__}.service_batch"
