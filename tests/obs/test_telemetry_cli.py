"""The telemetry CLI surface: run --events, watch, ledger, trend, --chrome."""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.obs.events import read_events, validate_event
from repro.obs.metrics import reset_registry

REPO = Path(__file__).resolve().parents[2]
ANCHORS = REPO / "benchmarks" / "results"
TRACE_FIXTURE = Path(__file__).parent / "fixtures" / "trace_sample.jsonl"


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    monkeypatch.chdir(tmp_path)
    reset_registry()
    yield
    from repro.runner import provider

    provider.reset()
    reset_registry()


class TestRunWithEvents:
    RUN = ["run", "fig12", "--apps", "lbm", "--accesses", "400", "--no-cache"]

    def test_run_streams_a_valid_event_file(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        assert main([*self.RUN, "--events", str(stream)]) == 0
        err = capsys.readouterr().err
        assert f"-> {stream}" in err
        assert "dropped" in err
        records = list(read_events(stream))
        for record in records:
            assert validate_event(record) == [], record
        names = [record["event"] for record in records]
        assert names[0] == "run_started"
        assert names[-1] == "run_finished"
        assert "planned" in names and "started" in names and "finished" in names

    def test_parallel_run_streams_and_watch_replays_it(self, tmp_path, capsys):
        # The acceptance path: a parallel figure run with a live sink,
        # then `repro watch` rendering its progress from the stream.
        stream = tmp_path / "events.jsonl"
        assert main([*self.RUN, "--parallel", "2", "--events", str(stream)]) == 0
        capsys.readouterr()
        assert main(["watch", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro watch" in out
        assert "FINISHED" in out
        assert "2/2 done" in out

    def test_events_counters_reach_manifest_and_stats(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        manifest = tmp_path / "m.json"
        assert main(
            [*self.RUN, "--events", str(stream), "--manifest", str(manifest)]
        ) == 0
        payload = json.loads(manifest.read_text())
        assert payload["metrics"]["events.emitted"]["value"] > 0
        capsys.readouterr()
        assert main(["stats", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "live telemetry stream" in out


class TestWatchVerb:
    def test_watch_directory_resolves_events_jsonl(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        stream = run_dir / "events.jsonl"
        assert main(
            ["run", "fig12", "--apps", "lbm", "--accesses", "300", "--no-cache",
             "--events", str(stream)]
        ) == 0
        capsys.readouterr()
        assert main(["watch", str(run_dir), "--once"]) == 0
        assert "done" in capsys.readouterr().out

    def test_watch_missing_stream_exits_2(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "absent.jsonl"), "--once"]) == 2
        assert "no event stream" in capsys.readouterr().err

    def test_watch_socket_refuses_existing_path(self, tmp_path, capsys):
        existing = tmp_path / "events.sock"
        existing.write_text("")
        assert main(["watch", str(existing), "--socket"]) == 2
        assert "refusing to bind" in capsys.readouterr().err

    def test_watch_reports_failed_runs_with_exit_1(self, tmp_path):
        stream = tmp_path / "events.jsonl"
        record = {
            "schema": 1, "kind": "repro-event", "event": "finished", "seq": 0,
            "wall_unix_s": 1.0, "key": "k", "label": "l", "status": "failed",
            "compute_s": 0.1, "queue_s": 0.0, "attempts": 1,
        }
        stream.write_text(json.dumps(record) + "\n")
        assert main(["watch", str(stream), "--once"]) == 1


class TestChromeExport:
    def test_from_jsonl_conversion_writes_trace_events(self, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(
            ["trace", "--from-jsonl", str(TRACE_FIXTURE), "--chrome", str(out)]
        ) == 0
        assert f"wrote Chrome trace to {out}" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ns"
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_from_jsonl_requires_chrome_out(self, capsys):
        assert main(["trace", "--from-jsonl", str(TRACE_FIXTURE)]) == 2
        assert "--chrome" in capsys.readouterr().err

    def test_missing_figure_without_from_jsonl_exits_2(self, capsys):
        assert main(["trace"]) == 2
        assert "figure id" in capsys.readouterr().err

    def test_live_trace_exports_chrome_alongside_table(self, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(
            ["trace", "fig14", "--accesses", "200", "--chrome", str(out)]
        ) == 0
        payload = json.loads(out.read_text())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert spans
        names = {e["name"] for e in spans}
        assert "write.hash" in names


class TestLedgerVerb:
    def _anchor_copies(self, tmp_path) -> list[str]:
        paths = []
        for source in sorted(ANCHORS.glob("BENCH_*.json")):
            target = tmp_path / source.name
            shutil.copy(source, target)
            paths.append(str(target))
        return paths

    def test_add_then_ls_round_trip(self, tmp_path, capsys):
        records = self._anchor_copies(tmp_path)
        assert len(records) >= 2
        ledger = tmp_path / "ledger.json"
        assert main(["ledger", "add", *records, "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert f"indexed {len(records)} new record(s)" in out
        assert main(["ledger", "ls", "--ledger", str(ledger)]) == 0
        listing = capsys.readouterr().out
        assert "bench" in listing
        for record in records:
            assert record in listing  # source hints shown

    def test_readding_is_idempotent(self, tmp_path, capsys):
        records = self._anchor_copies(tmp_path)
        ledger = tmp_path / "ledger.json"
        assert main(["ledger", "add", *records, "--ledger", str(ledger)]) == 0
        capsys.readouterr()
        assert main(["ledger", "add", *records, "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "indexed 0 new record(s)" in out
        assert f"{len(records)} already present" in out

    def test_ls_json_is_a_valid_ledger_payload(self, tmp_path, capsys):
        records = self._anchor_copies(tmp_path)
        ledger = tmp_path / "ledger.json"
        main(["ledger", "add", *records, "--ledger", str(ledger)])
        capsys.readouterr()
        assert main(["ledger", "ls", "--ledger", str(ledger), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "repro-ledger"
        assert len(payload["entries"]) == len(records)

    def test_add_without_records_exits_2(self, capsys):
        assert main(["ledger", "add"]) == 2
        assert "at least one record" in capsys.readouterr().err

    def test_unindexable_file_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"kind": "shopping-list"}')
        assert main(["ledger", "add", str(bogus)]) == 2
        assert "record kind" in capsys.readouterr().err


class TestTrendVerb:
    def test_committed_anchors_trend_is_clean(self, capsys):
        assert main(["trend", str(ANCHORS)]) == 0
        out = capsys.readouterr().out
        assert "0 step regression(s)" in out
        assert "improved" in out
        assert "regressed" not in out.replace("step regression", "")

    def test_trend_json_round_trips(self, capsys):
        assert main(["trend", str(ANCHORS), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["points"] >= 2
        assert all(row["verdict"] != "regressed" for row in payload["cases"])

    def test_doctored_regression_is_flagged(self, tmp_path, capsys):
        # Copy the newest committed anchor, then append a doctored anchor
        # where every case got 10x slower: trend must flag the step.
        source = sorted(
            ANCHORS.glob("BENCH_*.json"),
            key=lambda p: json.loads(p.read_text())["created_unix_s"],
        )[-1]
        base = json.loads(source.read_text())
        (tmp_path / source.name).write_text(json.dumps(base))
        doctored = json.loads(source.read_text())
        doctored["created_unix_s"] = base["created_unix_s"] + 1000.0
        doctored["git_sha"] = "deadbeef" * 5
        for entry in doctored["results"].values():
            entry["best_s"] *= 10.0
            entry["per_op_ns"] *= 10.0
        (tmp_path / "BENCH_deadbeefdead.json").write_text(json.dumps(doctored))
        assert main(["trend", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "STEP REGRESSION" in out
        assert "deadbeef" in out
        assert "regressed" in out

    def test_missing_source_exits_2(self, tmp_path, capsys):
        assert main(["trend", str(tmp_path / "nope.json")]) == 2
        assert "trend:" in capsys.readouterr().err


class TestBenchGate:
    BENCH = ["bench", "--accesses", "150", "--repeats", "1",
             "--controllers", "dewrite"]

    def test_gate_passes_against_generous_anchors(self, tmp_path, capsys):
        self._write_anchor(tmp_path, best_s=1000.0, name="BENCH_aaaa.json",
                           created=1.0)
        self._write_anchor(tmp_path, best_s=2000.0, name="BENCH_bbbb.json",
                           created=2.0)
        assert main([*self.BENCH, "--gate", str(tmp_path / "anchors")]) == 0
        out = capsys.readouterr().out
        assert "gating against 2 anchor(s)" in out
        assert "per-case best-ever baseline" in out

    def test_gate_fails_against_impossible_anchor(self, tmp_path, capsys):
        self._write_anchor(tmp_path, best_s=1e-7, name="BENCH_aaaa.json",
                           created=1.0)
        assert main([*self.BENCH, "--gate", str(tmp_path / "anchors")]) == 1
        assert "REGRESSED controller.dewrite" in capsys.readouterr().out

    def test_gate_empty_dir_exits_2(self, tmp_path, capsys):
        empty = tmp_path / "anchors"
        empty.mkdir()
        assert main([*self.BENCH, "--gate", str(empty)]) == 2
        assert "no BENCH_*.json anchors" in capsys.readouterr().err

    @staticmethod
    def _write_anchor(tmp_path, *, best_s: float, name: str, created: float):
        anchors = tmp_path / "anchors"
        anchors.mkdir(exist_ok=True)
        payload = {
            "schema": 2,
            "kind": "repro-bench",
            "created_unix_s": created,
            "git_sha": None,
            "python": "3.12.0",
            "platform": "linux-test",
            "scale": {"accesses": 150, "repeats": 1},
            "results": {
                "controller.dewrite": {
                    "best_s": best_s,
                    "per_op_ns": best_s * 1e9 / 150,
                    "ops": 150,
                }
            },
        }
        (anchors / name).write_text(json.dumps(payload))
