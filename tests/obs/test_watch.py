"""The live dashboard: the WatchModel fold, rendering, file following."""

from __future__ import annotations

import json

from repro.obs.events import EventBus
from repro.obs.watch import CLEAR_FRAME, WatchModel, follow_file, render_dashboard


class _FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _stream(clock: _FakeClock | None = None) -> tuple[list[dict], EventBus]:
    seen: list[dict] = []
    bus = EventBus(seen.append, clock=clock or _FakeClock(), snapshot_interval_s=0.0)
    return seen, bus


def _fold(records: list[dict]) -> WatchModel:
    model = WatchModel()
    for record in records:
        model.consume(record)
    return model


class TestWatchModel:
    def test_full_run_folds_to_finished(self):
        clock = _FakeClock(100.0)
        seen, bus = _stream(clock)
        bus.emit("run_started", planned=3, unique=2)
        bus.emit("planned", key="k1", label="fig12/lbm", job_kind="simulate")
        bus.emit("planned", key="k2", label="fig12/mcf", job_kind="simulate")
        bus.emit("cache_hit", key="k1", label="fig12/lbm")
        bus.emit("started", key="k2", label="fig12/mcf", attempt=1)
        clock.now = 104.0
        bus.emit(
            "finished", key="k2", label="fig12/mcf", status="ok",
            compute_s=3.5, queue_s=0.0, attempts=1,
        )
        bus.emit("run_finished", done=2, failed=0, elapsed_s=4.0)
        model = _fold(seen)
        assert model.total == 2
        assert model.done == 2
        assert model.cache_hits == 1
        assert model.hit_rate == 0.5
        assert model.in_flight == {}
        assert model.run_finished
        assert model.elapsed_s == 4.0
        assert model.eta_s() == 0.0
        assert model.wall_elapsed_s() == 4.0
        assert model.throughput() == 0.5

    def test_in_flight_tracks_started_not_yet_finished(self):
        seen, bus = _stream()
        bus.emit("planned", key="k1", label="fig12/lbm", job_kind="simulate")
        bus.emit("started", key="k1", label="fig12/lbm", attempt=1)
        model = _fold(seen)
        assert model.in_flight == {"k1": "fig12/lbm"}
        assert model.eta_s() is None  # nothing resolved yet: no rate

    def test_failures_and_retries_are_counted(self):
        seen, bus = _stream()
        bus.emit("started", key="k1", label="l", attempt=1)
        bus.emit("retried", key="k1", label="l", attempt=1, error="ValueError()")
        bus.emit(
            "finished", key="k1", label="l", status="failed",
            compute_s=0.1, queue_s=0.0, attempts=2,
        )
        model = _fold(seen)
        assert model.failed == 1
        assert model.retries == 1
        assert model.executed_ok == 0

    def test_non_event_json_is_ignored_not_fatal(self):
        model = _fold([{"some": "json"}, {"kind": "repro-event", "schema": 99}])
        model.consume("not even a dict")  # type: ignore[arg-type]
        assert model.ignored == 3
        assert model.records_seen == 0

    def test_seq_gaps_surface_dropped_datagrams(self):
        seen, bus = _stream()
        for index in range(5):
            bus.emit("cache_hit", key=f"k{index}", label=f"l{index}")
        thinned = [record for record in seen if record["seq"] not in (1, 2)]
        model = _fold(thinned)
        assert model.seq_gaps == 2


class TestRenderDashboard:
    def test_frame_shows_progress_and_stream_health(self):
        seen, bus = _stream()
        bus.emit("run_started", planned=2, unique=2)
        bus.emit("planned", key="k1", label="fig12/lbm", job_kind="simulate")
        bus.emit("started", key="k1", label="fig12/lbm", attempt=1)
        frame = render_dashboard(_fold(seen))
        assert "0/2 done" in frame
        assert "in flight: fig12/lbm" in frame
        assert "stream: 3 record(s)" in frame

    def test_snapshot_stage_split_and_metrics_render(self):
        seen, bus = _stream()
        bus.emit(
            "snapshot",
            done=1, failed=0, in_flight=0, total=2,
            metrics={"simulations": {"kind": "counter", "value": 7.0}},
            stages={
                "schema": 1,
                "stages": {
                    "write.hash": {"count": 5, "total_ns": 750.0},
                    "nvm.write": {"count": 5, "total_ns": 250.0},
                },
            },
        )
        frame = render_dashboard(_fold(seen))
        assert "write.hash 75%" in frame
        assert "nvm.write 25%" in frame
        assert "simulations so far: 7" in frame

    def test_fallback_counters_surface_in_the_health_line(self):
        seen, bus = _stream()
        bus.emit(
            "snapshot",
            done=1, failed=0, in_flight=0, total=2,
            metrics={
                "batch.fallback.multi_stream": {"kind": "counter", "value": 3.0},
                "batch.fallback.tracer": {"kind": "counter", "value": 0.0},
                "simulations": {"kind": "counter", "value": 2.0},
            },
        )
        model = _fold(seen)
        assert model.fallback_counters() == {"multi_stream": 3.0}
        frame = render_dashboard(model)
        assert "FALLBACKS: multi_stream=3" in frame
        assert "tracer" not in frame  # zero counters stay quiet

    def test_clean_run_renders_no_fallback_warning(self):
        seen, bus = _stream()
        bus.emit(
            "snapshot",
            done=1, failed=0, in_flight=0, total=1,
            metrics={"simulations": {"kind": "counter", "value": 1.0}},
        )
        assert "FALLBACKS" not in render_dashboard(_fold(seen))

    def test_shard_lanes_render_capped_preview(self):
        seen, bus = _stream()
        metrics = {
            f"serve.shard.{shard}.accesses": {"kind": "counter", "value": 100.0 + shard}
            for shard in range(10)
        }
        metrics["serve.shard.bogus.accesses"] = {"kind": "counter", "value": 1.0}
        bus.emit(
            "snapshot", done=0, failed=0, in_flight=10, total=10, metrics=metrics
        )
        model = _fold(seen)
        lanes = model.shard_lanes()
        assert list(lanes) == list(range(10))  # numeric sort, bogus dropped
        frame = render_dashboard(model)
        assert "shard lanes (accesses): s0 100" in frame
        assert "… +2" in frame

    def test_finished_run_renders_banner_and_recent(self):
        seen, bus = _stream()
        bus.emit(
            "finished", key="k", label="fig12/lbm", status="ok",
            compute_s=1.25, queue_s=0.0, attempts=1,
        )
        bus.emit("run_finished", done=1, failed=0, elapsed_s=2.0)
        frame = render_dashboard(_fold(seen))
        assert "FINISHED in 2.0s" in frame
        assert "recent: fig12/lbm: ok (1.25s)" in frame

    def test_recent_list_keeps_last_five(self):
        seen, bus = _stream()
        for index in range(8):
            bus.emit(
                "finished", key=f"k{index}", label=f"job{index}", status="ok",
                compute_s=0.1, queue_s=0.0, attempts=1,
            )
        model = _fold(seen)
        assert len(model.recent) == 5
        assert model.recent[-1].startswith("job7")


class TestFollowFile:
    def _write_stream(self, path) -> None:
        seen, bus = _stream()
        bus.emit("run_started", planned=1, unique=1)
        bus.emit(
            "finished", key="k", label="l", status="ok",
            compute_s=0.5, queue_s=0.0, attempts=1,
        )
        bus.emit("run_finished", done=1, failed=0, elapsed_s=0.5)
        path.write_text(
            "".join(json.dumps(record, sort_keys=True) + "\n" for record in seen)
        )

    def test_once_renders_one_plain_frame(self, tmp_path):
        stream = tmp_path / "events.jsonl"
        self._write_stream(stream)
        frames: list[str] = []
        model = follow_file(stream, once=True, emit=frames.append)
        assert model.run_finished
        assert len(frames) == 1
        assert CLEAR_FRAME not in frames[0]
        assert "1/1 done" in frames[0]

    def test_follow_stops_on_run_finished(self, tmp_path):
        stream = tmp_path / "events.jsonl"
        self._write_stream(stream)
        frames: list[str] = []
        model = follow_file(
            stream, interval_s=0.01, emit=frames.append, max_wait_s=5.0
        )
        assert model.run_finished
        assert frames[-1].startswith(CLEAR_FRAME)

    def test_partial_tail_line_is_deferred(self, tmp_path):
        stream = tmp_path / "events.jsonl"
        seen, bus = _stream()
        bus.emit("run_started", planned=1, unique=1)
        complete = json.dumps(seen[0], sort_keys=True) + "\n"
        stream.write_text(complete + '{"kind": "repro-ev')  # mid-write tail
        model = follow_file(stream, once=True, emit=lambda frame: None)
        assert model.records_seen == 1
        assert model.ignored == 0

    def test_missing_file_renders_empty_model(self, tmp_path):
        model = follow_file(
            tmp_path / "never-written.jsonl", once=True, emit=lambda frame: None
        )
        assert model.records_seen == 0
