"""Run-to-run diffing: manifest, timeline, stage, and figure comparisons."""

from __future__ import annotations

import json

import pytest

from repro.obs.diff import (
    diff_faults,
    diff_figure_dirs,
    diff_manifests,
    diff_stages,
    diff_timelines,
    stage_percentiles,
)
from repro.obs.manifest import build_manifest
from repro.obs.timeline import TimelineCollector


def make_manifest(metrics=None, timeline=None, **overrides):
    payload = build_manifest(
        figures=["fig12"],
        settings={"accesses": 100, "seed": 1, "applications": ["lbm"]},
        options={},
        jobs=[],
        cache={"planned": 0, "unique": 0, "disk_hits": 0, "executed": 0,
               "simulations": 0, "retries": 0},
        failures=[],
        elapsed_s=1.0,
        metrics=metrics or {},
        timeline=timeline,
        command=["repro", "run"],
    )
    payload.update(overrides)
    return payload


def counter(value: float) -> dict:
    return {"kind": "counter", "value": value}


class TestManifestDiff:
    def test_identical_manifests_have_no_drift(self):
        metrics = {"dedup.hits": counter(7.0)}
        diff = diff_manifests(make_manifest(metrics), make_manifest(metrics))
        assert not diff.deterministic_drift
        assert diff.counters_compared == 1
        assert "deterministic state identical" in diff.render()

    def test_counter_mismatch_is_drift(self):
        diff = diff_manifests(
            make_manifest({"dedup.hits": counter(7.0)}),
            make_manifest({"dedup.hits": counter(9.0)}),
        )
        assert diff.deterministic_drift
        assert diff.counter_drifts[0].name == "dedup.hits"
        assert "DRIFT" in diff.render()

    def test_one_sided_counters_report_appeared_vanished(self):
        diff = diff_manifests(
            make_manifest({"old.counter": counter(1.0)}),
            make_manifest({"new.counter": counter(1.0)}),
        )
        assert diff.deterministic_drift
        assert diff.appeared_counters == ["new.counter"]
        assert diff.vanished_counters == ["old.counter"]

    def test_runner_throughput_counters_are_informational(self):
        # Warm vs cold cache: `jobs.*`/`simulations` counters measure how
        # much work the runner did, not what the simulation computed.
        diff = diff_manifests(
            make_manifest({"jobs.simulate": counter(2.0), "simulations": counter(2.0)}),
            make_manifest({}),
        )
        assert not diff.deterministic_drift
        assert {d.name for d in diff.info_deltas} == {"jobs.simulate", "simulations"}

    def test_event_stream_counters_are_informational(self):
        # A watched run vs an unwatched rerun: `events.*` counts what the
        # telemetry sink saw, a property of the attachment, not the sim.
        diff = diff_manifests(
            make_manifest({"events.emitted": counter(42.0),
                           "events.dropped": counter(1.0)}),
            make_manifest({}),
        )
        assert not diff.deterministic_drift
        assert {d.name for d in diff.info_deltas} == {
            "events.emitted", "events.dropped",
        }

    def test_wall_clock_metrics_never_gate(self):
        diff = diff_manifests(
            make_manifest({"peak.rss": {"kind": "gauge", "value": 100.0}}),
            make_manifest({"peak.rss": {"kind": "gauge", "value": 900.0}}),
        )
        assert not diff.deterministic_drift
        assert diff.info_deltas[0].kind == "gauge"

    def test_context_mismatches_noted(self):
        diff = diff_manifests(
            make_manifest(git_sha="aaa"), make_manifest(git_sha="bbb")
        )
        assert any("git sha" in note for note in diff.context)
        assert not diff.deterministic_drift  # cross-commit diffing is the point


class TestTimelineDiff:
    def _snapshot(self, flips: int) -> dict:
        tl = TimelineCollector(window_ns=100.0)
        tl.record_nvm_write(5.0, bank=0, wait_ns=1.0, bit_flips=flips)
        return tl.to_dict()

    def test_equal_timelines_clean(self):
        notes, compared = diff_timelines(self._snapshot(3), self._snapshot(3))
        assert notes == []
        assert compared == 1

    def test_diverging_window_names_fields(self):
        notes, _ = diff_timelines(self._snapshot(3), self._snapshot(4))
        assert len(notes) == 1
        assert "window 0" in notes[0] and "bit_flips" in notes[0]

    def test_one_sided_timeline_noted(self):
        notes, compared = diff_timelines(self._snapshot(3), None)
        assert compared == 0
        assert "only in manifest a" in notes[0]
        assert diff_timelines(None, None) == ([], 0)

    def test_window_width_mismatch_short_circuits(self):
        other = TimelineCollector(window_ns=50.0)
        other.record_read(1.0, latency_ns=1.0)
        notes, compared = diff_timelines(self._snapshot(3), other.to_dict())
        assert compared == 0
        assert "window widths differ" in notes[0]

    def test_manifest_timeline_drift_gates(self):
        diff = diff_manifests(
            make_manifest(timeline=self._snapshot(3)),
            make_manifest(timeline=self._snapshot(4)),
        )
        assert diff.deterministic_drift
        assert diff.timeline_drifts


class TestFaultsDiff:
    def _section(self, lost: int = 0, crash_access: int = 400) -> dict:
        return {
            "interval_ns": 100_000.0,
            "scenarios": [{
                "workload": "lbm",
                "controller": "dewrite",
                "policy": "periodic_writeback",
                "crash_access": crash_access,
                "crash_ns": 5_000.0,
                "report": {
                    "total_lines": 100, "intact": 100 - lost,
                    "stale": 0, "lost": lost,
                },
            }],
        }

    def test_equal_sections_clean(self):
        notes, compared = diff_faults(self._section(), self._section())
        assert notes == []
        assert compared == 1

    def test_diverging_scenario_names_fields(self):
        notes, compared = diff_faults(self._section(lost=0), self._section(lost=3))
        assert compared == 1
        assert len(notes) == 1
        assert "lbm/dewrite/periodic_writeback/400" in notes[0]
        assert "report" in notes[0]

    def test_unmatched_scenarios_noted(self):
        notes, compared = diff_faults(
            self._section(crash_access=400), self._section(crash_access=800)
        )
        assert compared == 0
        assert any("only in a" in note for note in notes)
        assert any("only in b" in note for note in notes)

    def test_one_sided_section_noted(self):
        notes, compared = diff_faults(self._section(), None)
        assert compared == 0
        assert "only in manifest a" in notes[0]
        assert diff_faults(None, None) == ([], 0)

    def test_interval_mismatch_short_circuits(self):
        other = self._section()
        other["interval_ns"] = 50_000.0
        notes, compared = diff_faults(self._section(), other)
        assert compared == 0
        assert "writeback intervals differ" in notes[0]

    def test_manifest_faults_drift_gates(self):
        diff = diff_manifests(
            make_manifest(faults=self._section(lost=0)),
            make_manifest(faults=self._section(lost=3)),
        )
        assert diff.deterministic_drift
        assert diff.faults_drifts
        assert "fault-scenario divergence" in diff.render()

    def test_equal_faults_sections_report_compared_count(self):
        diff = diff_manifests(
            make_manifest(faults=self._section()),
            make_manifest(faults=self._section()),
        )
        assert not diff.deterministic_drift
        assert diff.faults_scenarios_compared == 1
        assert "1 fault scenarios" in diff.render()


class TestStagePercentiles:
    def _write_trace(self, path, durations, name="write.hash"):
        with path.open("w") as handle:
            for dur in durations:
                handle.write(json.dumps(
                    {"type": "span", "clock": "sim", "name": name, "dur_ns": dur}
                ) + "\n")
            # Wall spans and events must be ignored.
            handle.write(json.dumps(
                {"type": "span", "clock": "wall", "name": name, "dur_ns": 1e9}
            ) + "\n")
            handle.write(json.dumps({"type": "event", "name": "marker"}) + "\n")

    def test_percentiles_from_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write_trace(path, [10.0, 20.0, 30.0, 40.0])
        summary = stage_percentiles(path)
        assert set(summary) == {"write.hash"}
        stage = summary["write.hash"]
        assert stage["count"] == 4.0
        assert stage["mean"] == 25.0
        assert stage["max"] == 40.0
        assert stage["p50"] <= stage["p95"] <= stage["p99"] <= stage["max"]

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "span"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            stage_percentiles(path)

    def test_diff_stages_flags_moves_and_one_sided(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(a, [10.0, 10.0])
        self._write_trace(b, [10.0, 100.0])
        notes = diff_stages(stage_percentiles(a), stage_percentiles(b))
        assert any("p95" in note for note in notes)
        notes = diff_stages(stage_percentiles(a), {}, tolerance=0.5)
        assert notes == ["stage write.hash only in a"]

    def test_diff_stages_tolerance(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._write_trace(a, [100.0])
        self._write_trace(b, [104.0])
        assert diff_stages(
            stage_percentiles(a), stage_percentiles(b), tolerance=0.05
        ) == []


class TestFigureDirs:
    def _write_table(self, path, speedup):
        path.write_text(json.dumps(
            {"headers": ["app", "speedup"], "rows": [["lbm", speedup]]}
        ))

    def test_matching_figures_clean(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir(), dir_b.mkdir()
        self._write_table(dir_a / "fig12.json", 4.0)
        self._write_table(dir_b / "fig12.json", 4.0)
        reports, notes = diff_figure_dirs(dir_a, dir_b)
        assert notes == []
        assert reports["fig12.json"].clean

    def test_drift_and_unmatched_files_reported(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        dir_a.mkdir(), dir_b.mkdir()
        self._write_table(dir_a / "fig12.json", 4.0)
        self._write_table(dir_b / "fig12.json", 8.0)
        self._write_table(dir_a / "only.json", 1.0)
        reports, notes = diff_figure_dirs(dir_a, dir_b, tolerance=0.05)
        assert not reports["fig12.json"].clean
        assert notes == ["figure only.json only in a"]


class TestStageSectionDiff:
    """Summary-mode stage sections: deterministic, so any delta is drift."""

    def stages(self, crypto_total=350.0):
        from repro.obs.stages import StageAccumulator

        accumulator = StageAccumulator()
        accumulator.record_many("write.crypto", [100.0, crypto_total - 100.0])
        accumulator.record("write.nvm", 900.0)
        return accumulator.to_dict()

    def test_identical_sections_diff_clean(self):
        from repro.obs.diff import diff_stage_sections

        notes, compared = diff_stage_sections(self.stages(), self.stages())
        assert notes == []
        assert compared == 2

    def test_total_divergence_names_stage_and_fields(self):
        from repro.obs.diff import diff_stage_sections

        notes, compared = diff_stage_sections(self.stages(350.0), self.stages(400.0))
        assert compared == 2
        (note,) = notes
        assert "write.crypto" in note and "total_ns" in note

    def test_one_sided_section_reported(self):
        from repro.obs.diff import diff_stage_sections

        notes, compared = diff_stage_sections(self.stages(), None)
        assert compared == 0
        assert "present only in manifest a" in notes[0]
        assert diff_stage_sections(None, None) == ([], 0)

    def test_bounds_mismatch_short_circuits(self):
        from repro.obs.diff import diff_stage_sections

        other = self.stages()
        other["bounds"] = [1.0, 2.0]
        notes, compared = diff_stage_sections(self.stages(), other)
        assert notes == ["stage histogram bounds differ"]
        assert compared == 0

    def test_manifest_diff_integrates_stage_drift(self):
        clean = diff_manifests(
            make_manifest(stages=self.stages()), make_manifest(stages=self.stages())
        )
        assert not clean.deterministic_drift
        assert clean.stages_compared == 2
        assert "2 stages" in clean.render()

        drifted = diff_manifests(
            make_manifest(stages=self.stages(350.0)),
            make_manifest(stages=self.stages(400.0)),
        )
        assert drifted.deterministic_drift
        assert len(drifted.stages_drifts) == 1
        rendered = drifted.render()
        assert "1 stage divergence(s)" in rendered
        assert "stages: " in rendered
