"""The observability CLI verbs: ``trace``, ``stats``, and run manifests."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs.manifest import validate_manifest
from repro.obs.metrics import reset_registry


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    monkeypatch.chdir(tmp_path)
    reset_registry()
    yield
    from repro.runner import provider

    provider.reset()
    reset_registry()


class TestTrace:
    def test_trace_prints_stage_table(self, capsys):
        assert main(["trace", "fig14", "--accesses", "400"]) == 0
        out = capsys.readouterr().out
        for stage in ("write.hash", "write.dedup", "read.nvm", "nvm.read"):
            assert stage in out
        assert "p95 ns" in out

    def test_trace_alias_resolves_to_system_experiment(self, capsys):
        assert main(["trace", "fig14", "--accesses", "200"]) == 0
        assert "system" in capsys.readouterr().out

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "fig14", "--accesses", "300", "--out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records, "no records written"
        names = {record["name"] for record in records}
        for stage in ("write.hash", "write.dedup", "nvm.read"):
            assert stage in names
        # Every record carries the run context installed by the verb.
        assert all(record["ctx"]["app"] == "lbm" for record in records)
        assert f"wrote {len(records)} records" in capsys.readouterr().out

    def test_trace_other_controller(self, capsys):
        assert main(
            ["trace", "fig14", "--accesses", "200", "--controller", "secure-nvm"]
        ) == 0
        out = capsys.readouterr().out
        assert "write.crypto" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            main(["trace", "fig99", "--accesses", "100"])


class TestRunManifest:
    RUN = ["run", "fig12", "--apps", "lbm", "--accesses", "600", "--no-cache"]

    def test_run_writes_valid_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "m.json"
        assert main([*self.RUN, "--manifest", str(manifest_path)]) == 0
        assert f"manifest: {manifest_path}" in capsys.readouterr().err
        payload = json.loads(manifest_path.read_text())
        assert validate_manifest(payload) == []
        assert payload["figures"] == ["fig12"]
        assert payload["settings"]["applications"] == ["lbm"]
        assert payload["cache"]["executed"] == 2
        assert len(payload["jobs"]) == 2
        assert all(job["source"] == "executed" for job in payload["jobs"])
        assert payload["metrics"]["jobs.simulate"]["value"] == 2.0

    def test_no_manifest_flag_suppresses_writing(self, tmp_path, capsys):
        assert main([*self.RUN, "--no-manifest"]) == 0
        assert "manifest:" not in capsys.readouterr().err
        assert not (tmp_path / "manifest.json").exists()

    def test_figure_alias_accepted_by_run(self, tmp_path, capsys):
        manifest_path = tmp_path / "alias.json"
        assert main(
            ["run", "fig14", "--apps", "lbm", "--accesses", "600", "--no-cache",
             "--manifest", str(manifest_path)]
        ) == 0
        payload = json.loads(manifest_path.read_text())
        assert payload["figures"] == ["system"]
        capsys.readouterr()

    def test_warm_cache_jobs_marked_as_cache_hits(self, tmp_path, capsys):
        manifest_path = tmp_path / "warm.json"
        cached = ["run", "fig12", "--apps", "lbm", "--accesses", "600",
                  "--cache-dir", str(tmp_path / "c"), "--manifest", str(manifest_path)]
        assert main(cached) == 0
        assert main(cached) == 0
        payload = json.loads(manifest_path.read_text())
        assert validate_manifest(payload) == []
        assert all(job["source"] == "cache" for job in payload["jobs"])
        assert payload["cache"]["executed"] == 0
        capsys.readouterr()


class TestStats:
    RUN = ["run", "fig12", "--apps", "lbm", "--accesses", "600", "--no-cache"]

    def _write_manifest(self, path):
        assert main([*self.RUN, "--manifest", str(path)]) == 0

    def test_stats_reports_valid_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        self._write_manifest(path)
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stats: manifest is valid" in out
        assert "figures:   fig12" in out
        assert "jobs:" in out

    def test_stats_json_dump(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        self._write_manifest(path)
        capsys.readouterr()
        assert main(["stats", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "repro-run-manifest"

    def test_stats_flags_invalid_manifest(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1, "kind": "repro-run-manifest"}))
        assert main(["stats", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.json")]) == 1
        assert "stats:" in capsys.readouterr().err
