"""The observability CLI verbs: ``trace``, ``stats``, and run manifests."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.obs.manifest import validate_manifest
from repro.obs.metrics import reset_registry


@pytest.fixture(autouse=True)
def _hermetic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    monkeypatch.chdir(tmp_path)
    reset_registry()
    yield
    from repro.runner import provider

    provider.reset()
    reset_registry()


class TestTrace:
    def test_trace_prints_stage_table(self, capsys):
        assert main(["trace", "fig14", "--accesses", "400"]) == 0
        out = capsys.readouterr().out
        for stage in ("write.hash", "write.dedup", "read.nvm", "nvm.read"):
            assert stage in out
        assert "p95 ns" in out

    def test_trace_alias_resolves_to_system_experiment(self, capsys):
        assert main(["trace", "fig14", "--accesses", "200"]) == 0
        assert "system" in capsys.readouterr().out

    def test_trace_writes_jsonl(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "fig14", "--accesses", "300", "--out", str(out)]) == 0
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert records, "no records written"
        names = {record["name"] for record in records}
        for stage in ("write.hash", "write.dedup", "nvm.read"):
            assert stage in names
        # Every record carries the run context installed by the verb.
        assert all(record["ctx"]["app"] == "lbm" for record in records)
        assert f"wrote {len(records)} records" in capsys.readouterr().out

    def test_trace_other_controller(self, capsys):
        assert main(
            ["trace", "fig14", "--accesses", "200", "--controller", "secure-nvm"]
        ) == 0
        out = capsys.readouterr().out
        assert "write.crypto" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            main(["trace", "fig99", "--accesses", "100"])


class TestRunManifest:
    RUN = ["run", "fig12", "--apps", "lbm", "--accesses", "600", "--no-cache"]

    def test_run_writes_valid_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "m.json"
        assert main([*self.RUN, "--manifest", str(manifest_path)]) == 0
        assert f"manifest: {manifest_path}" in capsys.readouterr().err
        payload = json.loads(manifest_path.read_text())
        assert validate_manifest(payload) == []
        assert payload["figures"] == ["fig12"]
        assert payload["settings"]["applications"] == ["lbm"]
        assert payload["cache"]["executed"] == 2
        assert len(payload["jobs"]) == 2
        assert all(job["source"] == "executed" for job in payload["jobs"])
        assert payload["metrics"]["jobs.simulate"]["value"] == 2.0

    def test_no_manifest_flag_suppresses_writing(self, tmp_path, capsys):
        assert main([*self.RUN, "--no-manifest"]) == 0
        assert "manifest:" not in capsys.readouterr().err
        assert not (tmp_path / "manifest.json").exists()

    def test_figure_alias_accepted_by_run(self, tmp_path, capsys):
        manifest_path = tmp_path / "alias.json"
        assert main(
            ["run", "fig14", "--apps", "lbm", "--accesses", "600", "--no-cache",
             "--manifest", str(manifest_path)]
        ) == 0
        payload = json.loads(manifest_path.read_text())
        assert payload["figures"] == ["system"]
        capsys.readouterr()

    def test_warm_cache_jobs_marked_as_cache_hits(self, tmp_path, capsys):
        manifest_path = tmp_path / "warm.json"
        cached = ["run", "fig12", "--apps", "lbm", "--accesses", "600",
                  "--cache-dir", str(tmp_path / "c"), "--manifest", str(manifest_path)]
        assert main(cached) == 0
        assert main(cached) == 0
        payload = json.loads(manifest_path.read_text())
        assert validate_manifest(payload) == []
        assert all(job["source"] == "cache" for job in payload["jobs"])
        assert payload["cache"]["executed"] == 0
        capsys.readouterr()


class TestStats:
    RUN = ["run", "fig12", "--apps", "lbm", "--accesses", "600", "--no-cache"]

    def _write_manifest(self, path):
        assert main([*self.RUN, "--manifest", str(path)]) == 0

    def test_stats_reports_valid_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        self._write_manifest(path)
        capsys.readouterr()
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "stats: manifest is valid" in out
        assert "figures:   fig12" in out
        assert "jobs:" in out

    def test_stats_json_emits_summary_digest(self, tmp_path, capsys):
        path = tmp_path / "m.json"
        self._write_manifest(path)
        capsys.readouterr()
        assert main(["stats", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["valid"] is True
        assert payload["problems"] == []
        assert payload["figures"] == ["fig12"]
        assert payload["jobs"]["total"] == 2
        assert payload["jobs"]["by_source"] == {"executed": 2}
        # Digest only — the raw job list never appears in --json output.
        assert "kind" not in payload

    def test_stats_json_invalid_manifest_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1, "kind": "repro-run-manifest"}))
        assert main(["stats", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["valid"] is False
        assert payload["problems"]

    def test_stats_flags_invalid_manifest(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 1, "kind": "repro-run-manifest"}))
        assert main(["stats", str(path)]) == 1
        out = capsys.readouterr().out
        assert "INVALID" in out

    def test_stats_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "absent.json")]) == 1
        assert "stats:" in capsys.readouterr().err


class TestTimeline:
    CMD = ["timeline", "fig12", "--apps", "lbm", "--accesses", "800",
           "--window-ns", "2e5", "--no-cache"]

    def test_timeline_prints_window_table(self, capsys):
        assert main(self.CMD) == 0
        out = capsys.readouterr().out
        assert "window" in out and "dup%" in out and "flips" in out
        assert "dewrite on lbm" in out

    def test_timeline_exports_and_manifest(self, tmp_path, capsys):
        csv = tmp_path / "tl.csv"
        jsonl = tmp_path / "tl.jsonl"
        manifest = tmp_path / "tl-manifest.json"
        assert main([*self.CMD, "--csv", str(csv), "--jsonl", str(jsonl),
                     "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert csv.read_text().startswith("window,start_ns,writes")
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert rows and all("dedup_ratio" in row for row in rows)
        payload = json.loads(manifest.read_text())
        assert validate_manifest(payload) == []
        assert payload["timeline"]["windows"]
        # Every CSV/JSONL window is in the manifest snapshot.
        assert len(payload["timeline"]["windows"]) == len(rows)

    def test_timeline_merges_multiple_apps(self, capsys):
        assert main(["timeline", "fig12", "--apps", "lbm,mcf", "--accesses",
                     "400", "--window-ns", "1e9", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "lbm, mcf" in out

    def test_stats_reports_timeline_section(self, tmp_path, capsys):
        manifest = tmp_path / "tl-manifest.json"
        assert main([*self.CMD, "--manifest", str(manifest)]) == 0
        capsys.readouterr()
        assert main(["stats", str(manifest)]) == 0
        assert "timeline:" in capsys.readouterr().out
        assert main(["stats", str(manifest), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["timeline"]["windows"] >= 1


class TestWear:
    def test_wear_prints_heatmap_tables_and_lifetime(self, capsys):
        assert main(["wear", "fig12", "--app", "lbm", "--accesses", "600",
                     "--rows", "2", "--cols", "8"]) == 0
        out = capsys.readouterr().out
        assert "wear heatmap" in out
        assert "bank" in out and "region" in out
        assert "projected lifetime (dewrite)" in out
        assert "extends lifetime" in out

    def test_wear_no_baseline_and_csv(self, tmp_path, capsys):
        csv = tmp_path / "wear.csv"
        assert main(["wear", "fig12", "--app", "lbm", "--accesses", "400",
                     "--baseline", "none", "--csv", str(csv)]) == 0
        out = capsys.readouterr().out
        assert "extends lifetime" not in out
        assert csv.exists() and "," in csv.read_text()

    def test_wear_flips_metric(self, capsys):
        assert main(["wear", "fig13", "--app", "mcf", "--accesses", "400",
                     "--metric", "flips", "--baseline", "none"]) == 0
        assert "flips over lines" in capsys.readouterr().out


class TestDiff:
    TIMELINE = ["timeline", "fig12", "--apps", "lbm", "--accesses", "600",
                "--window-ns", "2e5", "--no-cache"]

    def _manifest(self, path):
        assert main([*self.TIMELINE, "--manifest", str(path)]) == 0

    def test_same_run_twice_reports_zero_drift(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._manifest(a)
        self._manifest(b)
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "no deterministic drift" in out

    def test_different_workloads_drift(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._manifest(a)
        assert main(["timeline", "fig12", "--apps", "mcf", "--accesses", "600",
                     "--window-ns", "2e5", "--no-cache", "--manifest", str(b)]) == 0
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "DRIFT detected" in out

    def test_diff_json_mode(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        self._manifest(a)
        capsys.readouterr()
        assert main(["diff", str(a), str(a), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deterministic_drift"] is False
        assert payload["manifest"]["timeline_windows_compared"] >= 1

    def test_diff_traces_and_figures(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        self._manifest(a)
        trace_a, trace_b = tmp_path / "ta.jsonl", tmp_path / "tb.jsonl"
        assert main(["trace", "fig14", "--accesses", "300", "--out", str(trace_a)]) == 0
        assert main(["trace", "fig14", "--accesses", "300", "--out", str(trace_b)]) == 0
        figs_a, figs_b = tmp_path / "fa", tmp_path / "fb"
        figs_a.mkdir(), figs_b.mkdir()
        table = {"headers": ["app", "x"], "rows": [["lbm", 1.0]]}
        (figs_a / "fig.json").write_text(json.dumps(table))
        (figs_b / "fig.json").write_text(json.dumps(table))
        capsys.readouterr()
        assert main(["diff", str(a), str(a),
                     "--trace-a", str(trace_a), "--trace-b", str(trace_b),
                     "--figures-a", str(figs_a), "--figures-b", str(figs_b)]) == 0
        out = capsys.readouterr().out
        assert "percentiles match" in out
        assert "fig.json: clean" in out

    def test_diff_one_sided_trace_flag_rejected(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        self._manifest(a)
        capsys.readouterr()
        assert main(["diff", str(a), str(a), "--trace-a", "x.jsonl"]) == 2
        assert "together" in capsys.readouterr().err

    def test_diff_missing_manifest_fails_cleanly(self, tmp_path, capsys):
        assert main(["diff", str(tmp_path / "nope.json"),
                     str(tmp_path / "nope2.json")]) == 2
        assert "diff:" in capsys.readouterr().err


class TestBench:
    BENCH = ["bench", "--accesses", "60", "--repeats", "1",
             "--controllers", "dewrite"]

    @pytest.mark.slow
    def test_bench_writes_valid_record(self, tmp_path, capsys):
        from repro.obs.bench import load_record, record_filename

        assert main([*self.BENCH, "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "controller.dewrite" in out and "ns/op" in out
        (path,) = tmp_path.glob("BENCH_*.json")
        record = load_record(path)  # raises if schema-invalid
        assert path.name == record_filename(record)
        assert record["scale"]["accesses"] == 60

    @pytest.mark.slow
    def test_bench_check_against_own_baseline_passes(self, tmp_path, capsys):
        assert main([*self.BENCH, "--out", str(tmp_path)]) == 0
        (path,) = tmp_path.glob("BENCH_*.json")
        assert main([*self.BENCH, "--out", str(tmp_path),
                     "--check", str(path)]) == 0
        assert "bench gate" in capsys.readouterr().out

    @pytest.mark.slow
    def test_bench_check_detects_doctored_regression(self, tmp_path, capsys):
        assert main([*self.BENCH, "--out", str(tmp_path)]) == 0
        (path,) = tmp_path.glob("BENCH_*.json")
        record = json.loads(path.read_text())
        for entry in record["results"].values():
            entry["best_s"] /= 100.0  # baseline was "100x faster"
        doctored = path.with_name("BENCH_doctored.json")
        doctored.write_text(json.dumps(record))
        capsys.readouterr()
        assert main([*self.BENCH, "--out", str(tmp_path),
                     "--check", str(doctored)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_check_missing_baseline_fails_cleanly(self, tmp_path, capsys):
        assert main([*self.BENCH, "--out", str(tmp_path),
                     "--check", str(tmp_path / "absent.json")]) == 2
        assert "cannot load baseline" in capsys.readouterr().err


class TestProfile:
    PROFILE = ["profile", "fig14", "--accesses", "300"]

    def test_profile_prints_stage_table_and_wall_footer(self, capsys):
        assert main(self.PROFILE) == 0
        out = capsys.readouterr().out
        assert "kernel: DeWriteController.service_batch" in out
        for stage in ("write.dedup", "write.crypto", "read.nvm"):
            assert stage in out
        assert "wall (host, non-deterministic)" in out

    def test_profile_keeps_kernels_fused(self, capsys):
        from repro.obs.metrics import registry

        assert main(self.PROFILE) == 0
        fallbacks = [n for n in registry().names() if n.startswith("batch.fallback.")]
        assert fallbacks == []

    def test_profile_writes_flamegraph_and_json(self, tmp_path, capsys):
        from repro.obs.profile import PROFILE_SCHEMA_VERSION

        folded = tmp_path / "stages.folded"
        report_path = tmp_path / "profile.json"
        assert main([*self.PROFILE, "--flamegraph", str(folded),
                     "--json", str(report_path)]) == 0
        frames = folded.read_text().splitlines()
        assert frames
        for frame in frames:
            stack, _, weight = frame.rpartition(" ")
            assert int(weight) > 0
            assert stack.startswith("controller;DeWriteController.service_batch;")
        report = json.loads(report_path.read_text())
        assert report["schema"] == PROFILE_SCHEMA_VERSION
        assert report["flamegraph"] == frames
        assert report["wall"]["requests"] == 300

    def test_profile_manifest_carries_stages_for_diff(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.PROFILE, "--manifest", str(a)]) == 0
        assert main([*self.PROFILE, "--manifest", str(b)]) == 0
        payload = json.loads(a.read_text())
        assert validate_manifest(payload) == []
        assert payload["stages"]["stages"], "manifest carries no stage entries"
        capsys.readouterr()
        assert main(["diff", str(a), str(b)]) == 0
        assert "deterministic state identical" in capsys.readouterr().out

    def test_stats_reports_stages_and_fallback_sections(self, tmp_path, capsys):
        manifest = tmp_path / "profiled.json"
        assert main([*self.PROFILE, "--manifest", str(manifest)]) == 0
        # Doctor in a fallback counter to exercise the stats rendering.
        payload = json.loads(manifest.read_text())
        payload["metrics"]["batch.fallback.tracer"] = {"kind": "counter", "value": 3.0}
        manifest.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["stats", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "stages:" in out and "summary mode" in out
        assert "fallbacks: tracer=3 (batches driven scalar)" in out

    def test_profile_other_controller(self, capsys):
        assert main(["profile", "fig14", "--accesses", "200",
                     "--controller", "silent-shredder"]) == 0
        assert "SilentShredderController.service_batch" in capsys.readouterr().out
