"""The live telemetry event bus: schema, throttling, drop semantics."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_KIND,
    EVENTS_SCHEMA_VERSION,
    NULL_EVENTS,
    EventBus,
    SocketSink,
    read_events,
    validate_event,
)
from repro.obs.metrics import registry, reset_registry
from repro.obs.sinks import JsonlSink


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


class _FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


class TestEmit:
    def test_envelope_is_stamped_and_sequenced(self):
        seen: list[dict] = []
        clock = _FakeClock(42.0)
        bus = EventBus(seen.append, clock=clock)
        bus.emit("run_started", planned=3, unique=2)
        clock.now = 43.5
        bus.emit("cache_hit", key="k", label="fig12/lbm")
        assert [r["seq"] for r in seen] == [0, 1]
        assert seen[0]["schema"] == EVENTS_SCHEMA_VERSION
        assert seen[0]["kind"] == EVENT_KIND
        assert seen[0]["wall_unix_s"] == 42.0
        assert seen[1]["wall_unix_s"] == 43.5
        assert seen[1]["label"] == "fig12/lbm"
        assert bus.emitted == 2 and bus.dropped == 0

    def test_every_schema_event_validates(self):
        seen: list[dict] = []
        bus = EventBus(seen.append, clock=_FakeClock())
        bus.emit("run_started", planned=1, unique=1)
        bus.emit("planned", key="k", label="l", job_kind="simulate")
        bus.emit("cache_hit", key="k", label="l")
        bus.emit("started", key="k", label="l", attempt=1)
        bus.emit("retried", key="k", label="l", attempt=1, error="ValueError()")
        bus.emit(
            "finished", key="k", label="l", status="ok",
            compute_s=0.5, queue_s=0.0, attempts=1,
        )
        bus.emit("snapshot", done=1, failed=0, in_flight=0, total=1, metrics={})
        bus.emit("run_finished", done=1, failed=0, elapsed_s=0.5)
        assert len(seen) == len(EVENT_FIELDS)
        for record in seen:
            assert validate_event(record) == []

    def test_unknown_event_raises(self):
        bus = EventBus(lambda record: None)
        with pytest.raises(ValueError, match="unknown event"):
            bus.emit("teleported", key="k")

    def test_failing_sink_drops_and_counts(self):
        def sink(record: dict) -> None:
            raise OSError("disk full")

        bus = EventBus(sink, clock=_FakeClock())
        bus.emit("cache_hit", key="k", label="l")
        assert (bus.emitted, bus.dropped) == (0, 1)
        assert registry().get("events.dropped").value == 1.0
        assert registry().get("events.emitted") is None

    def test_metrics_counters_track_emission(self):
        bus = EventBus(lambda record: None, clock=_FakeClock())
        bus.emit("cache_hit", key="k", label="l")
        bus.emit("cache_hit", key="k2", label="l2")
        assert registry().get("events.emitted").value == 2.0


class TestSnapshots:
    def test_first_snapshot_always_emits(self):
        seen: list[dict] = []
        bus = EventBus(seen.append, clock=_FakeClock(), snapshot_interval_s=60.0)
        assert bus.maybe_snapshot(done=0, failed=0, in_flight=1, total=2, metrics={})
        assert seen[0]["event"] == "snapshot"

    def test_interval_throttles_then_releases(self):
        seen: list[dict] = []
        clock = _FakeClock(10.0)
        bus = EventBus(seen.append, clock=clock, snapshot_interval_s=1.0)
        fields = dict(done=0, failed=0, in_flight=1, total=2, metrics={})
        assert bus.maybe_snapshot(**fields)
        clock.now = 10.5
        assert not bus.maybe_snapshot(**fields)
        clock.now = 11.1
        assert bus.maybe_snapshot(**fields)
        assert len(seen) == 2

    def test_zero_interval_emits_every_call(self):
        seen: list[dict] = []
        bus = EventBus(seen.append, clock=_FakeClock(), snapshot_interval_s=0.0)
        fields = dict(done=0, failed=0, in_flight=0, total=1, metrics={})
        assert bus.maybe_snapshot(**fields)
        assert bus.maybe_snapshot(**fields)
        assert len(seen) == 2

    def test_attached_stages_ride_along_on_snapshots(self):
        class _Stages:
            enabled = True

            def to_dict(self) -> dict:
                return {"schema": 1, "stages": {"write.hash": {"count": 3}}}

        seen: list[dict] = []
        bus = EventBus(seen.append, clock=_FakeClock(), stages=_Stages())
        bus.emit("snapshot", done=0, failed=0, in_flight=0, total=1, metrics={})
        bus.emit("cache_hit", key="k", label="l")
        assert seen[0]["stages"]["stages"] == {"write.hash": {"count": 3}}
        assert "stages" not in seen[1]
        assert validate_event(seen[0]) == []


class TestNullBus:
    def test_null_bus_is_disabled_and_inert(self):
        assert NULL_EVENTS.enabled is False
        NULL_EVENTS.emit("anything-goes", junk=object())
        assert NULL_EVENTS.maybe_snapshot(done=1) is False
        NULL_EVENTS.close()


class TestValidation:
    def _valid(self) -> dict:
        return {
            "schema": EVENTS_SCHEMA_VERSION,
            "kind": EVENT_KIND,
            "event": "cache_hit",
            "seq": 0,
            "wall_unix_s": 1.0,
            "key": "k",
            "label": "l",
        }

    def test_valid_record_has_no_problems(self):
        assert validate_event(self._valid()) == []

    def test_wrong_schema_and_kind_reported(self):
        record = self._valid()
        record["schema"] = 99
        record["kind"] = "something"
        problems = validate_event(record)
        assert any("schema" in p for p in problems)
        assert any("kind" in p for p in problems)

    def test_bool_does_not_satisfy_int_fields(self):
        record = self._valid()
        record["seq"] = True
        assert any("seq" in p for p in validate_event(record))

    def test_bad_finished_status_rejected(self):
        record = self._valid()
        record.update(
            event="finished", status="exploded",
            compute_s=0.1, queue_s=0.0, attempts=1,
        )
        assert any("finished.status" in p for p in validate_event(record))

    def test_unknown_event_name_rejected(self):
        record = self._valid()
        record["event"] = "teleported"
        assert any("event must be one of" in p for p in validate_event(record))

    def test_non_object_rejected(self):
        assert validate_event(["not", "a", "dict"])


class TestFileRoundTrip:
    def test_jsonl_sink_round_trips_through_read_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus(JsonlSink(path), clock=_FakeClock())
        bus.emit("run_started", planned=2, unique=2)
        bus.emit("run_finished", done=2, failed=0, elapsed_s=0.1)
        bus.close()
        records = list(read_events(path))
        assert [r["event"] for r in records] == ["run_started", "run_finished"]
        for record in records:
            assert validate_event(record) == []

    def test_read_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json at all\n')
        with pytest.raises(ValueError, match="line"):
            list(read_events(path))

    def test_read_events_skips_blank_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('\n{"event": "x"}\n\n')
        assert list(read_events(path)) == [{"event": "x"}]


class TestSocketSink:
    def test_datagrams_reach_a_bound_receiver(self, tmp_path):
        import socket

        target = tmp_path / "events.sock"
        receiver = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
        receiver.bind(str(target))
        receiver.settimeout(2.0)
        try:
            bus = EventBus(SocketSink(target), clock=_FakeClock())
            bus.emit("cache_hit", key="k", label="l")
            record = json.loads(receiver.recv(1 << 16).decode("utf-8"))
            assert record["event"] == "cache_hit"
            assert validate_event(record) == []
            bus.close()
        finally:
            receiver.close()

    def test_missing_receiver_counts_dropped_not_raises(self, tmp_path):
        bus = EventBus(SocketSink(tmp_path / "nobody-home.sock"), clock=_FakeClock())
        bus.emit("cache_hit", key="k", label="l")
        assert (bus.emitted, bus.dropped) == (0, 1)
        bus.close()
