"""The microbenchmark harness: suite, records, and the regression gate."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    ACCEPTED_BENCH_SCHEMA_VERSIONS,
    BENCH_KIND,
    BENCH_SCHEMA_VERSION,
    BenchCase,
    build_record,
    compare_records,
    default_suite,
    load_record,
    record_filename,
    run_suite,
    validate_record,
    write_record,
)


def make_record(results: dict[str, float]) -> dict:
    return build_record(
        {
            name: {"best_s": best, "ops": 10, "per_op_ns": best / 10 * 1e9}
            for name, best in results.items()
        },
        scale={"accesses": 10},
    )


class TestSuite:
    def test_default_suite_covers_all_hot_paths(self):
        from repro.core.registry import available_controllers

        cases = default_suite(accesses=50, controllers=None)
        names = {case.name for case in cases}
        for controller in available_controllers():
            assert f"controller.{controller}" in names
        for circuit in ("crc32", "sha1", "md5", "crc32-stdlib"):
            assert f"hash.{circuit}" in names
        assert "metadata.cache" in names

    def test_controller_subset_respected(self):
        cases = default_suite(accesses=50, controllers=["dewrite"])
        controller_cases = [c for c in cases if c.name.startswith("controller.")]
        assert [c.name for c in controller_cases] == ["controller.dewrite"]

    def test_run_suite_keeps_minimum(self):
        calls: list[int] = []

        def make():
            def run() -> None:
                calls.append(1)

            return run

        results = run_suite(
            [BenchCase(name="noop", ops=4, make=make)], repeats=3
        )
        assert calls == [1] * 4  # 1 warmup + 3 measured
        entry = results["noop"]
        assert entry["ops"] == 4
        assert entry["best_s"] >= 0.0
        assert entry["per_op_ns"] == pytest.approx(entry["best_s"] / 4 * 1e9)

    def test_run_suite_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            run_suite([], repeats=0)

    @pytest.mark.slow
    def test_real_suite_produces_positive_timings(self):
        cases = default_suite(accesses=120, controllers=["dewrite"], hash_lines=8)
        results = run_suite(cases, repeats=1)
        assert all(entry["best_s"] > 0.0 for entry in results.values())


class TestRecords:
    def test_record_schema_valid_and_round_trips(self, tmp_path):
        record = make_record({"controller.dewrite": 0.01})
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["kind"] == BENCH_KIND
        assert validate_record(record) == []
        path = write_record(record, tmp_path)
        assert path.name == record_filename(record)
        assert load_record(path) == json.loads(path.read_text())

    def test_filename_uses_git_sha_prefix(self):
        record = make_record({"x": 0.01})
        name = record_filename(record)
        if record["git_sha"]:
            assert name == f"BENCH_{record['git_sha'][:12]}.json"
        else:
            assert name == "BENCH_nogit.json"

    def test_validation_catches_problems(self):
        assert validate_record([]) != []
        assert any("results" in p for p in validate_record(
            {"schema": BENCH_SCHEMA_VERSION, "kind": BENCH_KIND,
             "created_unix_s": 0, "python": "3", "platform": "x",
             "git_sha": None, "scale": {}, "results": {}}
        ))
        bad = make_record({"x": 0.01})
        bad["results"]["x"]["ops"] = "ten"
        assert any("ops" in p for p in validate_record(bad))

    def test_load_record_rejects_invalid(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"schema": 0}))
        with pytest.raises(ValueError, match="validation"):
            load_record(path)


class TestGate:
    def test_self_comparison_is_clean(self):
        record = make_record({"a": 0.010, "b": 0.002})
        comparison = compare_records(record, record)
        assert comparison.ok
        assert comparison.within == 2
        assert "0 regressed" in comparison.render()

    def test_regression_beyond_both_thresholds_fails(self):
        baseline = make_record({"a": 0.010})
        current = make_record({"a": 0.020})  # +100 %, +10 ms
        comparison = compare_records(current, baseline, threshold=0.30)
        assert not comparison.ok
        assert comparison.regressions[0]["name"] == "a"
        assert comparison.regressions[0]["change"] == pytest.approx(1.0)
        assert "REGRESSED a" in comparison.render()

    def test_small_absolute_delta_never_regresses(self):
        # +300 % relative but only 30 µs absolute: timer noise, not signal.
        baseline = make_record({"a": 0.00001})
        current = make_record({"a": 0.00004})
        assert compare_records(current, baseline, threshold=0.30).ok

    def test_improvement_reported_not_failed(self):
        baseline = make_record({"a": 0.020})
        current = make_record({"a": 0.010})
        comparison = compare_records(current, baseline, threshold=0.30)
        assert comparison.ok
        assert comparison.improvements[0]["change"] == pytest.approx(-0.5)

    def test_one_sided_cases_reported_separately(self):
        baseline = make_record({"a": 0.01, "gone": 0.01})
        current = make_record({"a": 0.01, "new": 0.01})
        comparison = compare_records(current, baseline)
        assert comparison.ok  # appeared/vanished never gate
        assert comparison.appeared == ["new"]
        assert comparison.vanished == ["gone"]
        # And never as ±inf relative changes.
        assert all(
            entry["change"] not in (float("inf"), float("-inf"))
            for entry in comparison.regressions + comparison.improvements
        )


class TestAnchorProvenance:
    """The composite baseline names which anchor set each case's bar."""

    def _anchor(self, results: dict[str, float], sha: str, created: float) -> dict:
        record = make_record(results)
        record["git_sha"] = sha
        record["created_unix_s"] = created
        return record

    def test_winning_anchor_sha_stamped_per_case(self):
        from repro.obs.bench import composite_baseline

        old = self._anchor({"a": 0.010, "b": 0.005}, "a" * 40, 1.0)
        new = self._anchor({"a": 0.008, "b": 0.007}, "b" * 40, 2.0)
        baseline = composite_baseline([old, new])
        assert baseline["results"]["a"]["anchor_git_sha"] == "b" * 40
        assert baseline["results"]["b"]["anchor_git_sha"] == "a" * 40

    def test_gate_failure_names_the_anchor(self):
        from repro.obs.bench import composite_baseline

        anchor = self._anchor({"a": 0.010}, "deadbeef" * 5, 1.0)
        baseline = composite_baseline([anchor])
        current = make_record({"a": 0.025})
        comparison = compare_records(current, baseline, threshold=0.30)
        assert not comparison.ok
        assert comparison.regressions[0]["anchor_git_sha"] == "deadbeef" * 5
        assert "[anchor deadbeefdead]" in comparison.render()

    def test_improvement_line_names_the_anchor_too(self):
        from repro.obs.bench import composite_baseline

        anchor = self._anchor({"a": 0.020}, "cafef00d" * 5, 1.0)
        baseline = composite_baseline([anchor])
        comparison = compare_records(
            make_record({"a": 0.010}), baseline, threshold=0.30
        )
        assert comparison.ok
        assert "[anchor cafef00dcafe]" in comparison.render()

    def test_sha_free_baseline_renders_without_suffix(self):
        baseline = make_record({"a": 0.010})
        baseline["results"]["a"].pop("anchor_git_sha", None)
        comparison = compare_records(
            make_record({"a": 0.025}), baseline, threshold=0.30
        )
        assert not comparison.ok
        assert "[anchor" not in comparison.render()


class TestStageBreakdown:
    """Schema v2 ``stages`` section and regression attribution."""

    def stage_section(self, total_crypto: float = 5000.0, total_nvm: float = 9000.0):
        return {
            "controller.dewrite": {
                "kernel": "DeWriteController.service_batch",
                "stages": {
                    "write.crypto": {"count": 10, "total_ns": total_crypto},
                    "write.nvm": {"count": 10, "total_ns": total_nvm},
                },
            }
        }

    def record_with_stages(self, best_s: float, **stage_kwargs) -> dict:
        return build_record(
            {
                "controller.dewrite": {
                    "best_s": best_s,
                    "ops": 10,
                    "per_op_ns": best_s / 10 * 1e9,
                }
            },
            scale={"accesses": 10},
            stages=self.stage_section(**stage_kwargs),
        )

    def test_record_with_stages_validates(self):
        record = self.record_with_stages(0.01)
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert validate_record(record) == []
        assert list(record["stages"]) == ["controller.dewrite"]

    def test_v1_record_without_stages_still_accepted(self):
        # Committed v1 anchors must keep loading under the v2 gate.
        record = make_record({"controller.dewrite": 0.01})
        record["schema"] = 1
        assert 1 in ACCEPTED_BENCH_SCHEMA_VERSIONS
        assert validate_record(record) == []

    def test_malformed_stages_rejected(self):
        record = self.record_with_stages(0.01)
        record["stages"]["controller.dewrite"]["stages"]["write.crypto"]["count"] = "x"
        assert any("count" in problem for problem in validate_record(record))
        record = self.record_with_stages(0.01)
        record["stages"] = []
        assert any("stages" in problem for problem in validate_record(record))

    def test_collect_stage_breakdown_shape(self):
        from repro.obs.bench import collect_stage_breakdown

        breakdown = collect_stage_breakdown(accesses=120, controllers=["dewrite"])
        entry = breakdown["controller.dewrite"]
        assert entry["kernel"] == "DeWriteController.service_batch"
        assert "write.crypto" in entry["stages"]
        for fields in entry["stages"].values():
            assert fields["count"] > 0
            assert fields["total_ns"] >= 0.0

    def test_regression_attributed_to_drifted_stage(self):
        baseline = self.record_with_stages(0.010)
        current = self.record_with_stages(0.020, total_nvm=50_000.0)
        comparison = compare_records(current, baseline, threshold=0.30)
        assert not comparison.ok
        (note,) = comparison.stage_notes
        assert "write.nvm" in note
        assert "DeWriteController.service_batch" in note
        assert "stage:" in comparison.render()

    def test_unchanged_stage_totals_blame_host_side(self):
        # Same simulated work, 2x wall time: the bench got slower without
        # the model doing more — the code (host side) regressed.
        baseline = self.record_with_stages(0.010)
        current = self.record_with_stages(0.020)
        comparison = compare_records(current, baseline, threshold=0.30)
        (note,) = comparison.stage_notes
        assert "host-side" in note

    def test_v1_baseline_degrades_gracefully(self):
        # Regression against a stage-less v1 anchor: gate still fires,
        # attribution is silently absent.
        baseline = make_record({"controller.dewrite": 0.010})
        current = self.record_with_stages(0.020)
        comparison = compare_records(current, baseline, threshold=0.30)
        assert not comparison.ok
        assert comparison.stage_notes == []
