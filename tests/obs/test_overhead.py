"""The overhead gate's summary-mode arm (``--with-stages``)."""

from __future__ import annotations

import pytest

from repro.obs.overhead import measure


class TestWithStages:
    def test_stages_and_timeline_arms_are_exclusive(self):
        with pytest.raises(ValueError, match="separate arms"):
            measure(with_stages=True, with_timeline=True)

    def test_staged_arm_reports_zero_fallbacks(self):
        # One pair at a small scale: correctness of the fallback
        # accounting, not the timing gate (CI runs the real budget).
        result = measure(accesses=300, repeats=1, with_stages=True)
        assert result["fallbacks"] == {}
        assert result["pairs"] == 1
        assert result["untraced_s"] > 0.0 and result["traced_s"] > 0.0

    def test_traced_arm_has_no_fallback_verdict(self):
        result = measure(accesses=200, repeats=1)
        assert "fallbacks" not in result


class TestWithEvents:
    def test_events_arm_is_exclusive_with_the_others(self):
        with pytest.raises(ValueError, match="separate arms"):
            measure(with_events=True, with_stages=True)
        with pytest.raises(ValueError, match="separate arms"):
            measure(with_events=True, with_timeline=True)

    def test_events_arm_streams_a_valid_schema_with_zero_fallbacks(self):
        from repro.obs.events import read_events, validate_event

        result = measure(accesses=300, repeats=1, with_events=True)
        assert result["fallbacks"] == {}
        events = result["events"]
        assert events["dropped"] == 0
        assert events["emitted"] > 0
        records = list(read_events(events["path"]))
        assert len(records) == events["emitted"]
        for record in records:
            assert validate_event(record) == [], record
        # One run = started, per-run snapshot (with stages), finished.
        names = [record["event"] for record in records]
        assert names.count("started") == names.count("finished") == 1
        snapshots = [r for r in records if r["event"] == "snapshot"]
        assert snapshots and all("stages" in r for r in snapshots)
