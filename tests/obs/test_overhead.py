"""The overhead gate's summary-mode arm (``--with-stages``)."""

from __future__ import annotations

import pytest

from repro.obs.overhead import measure


class TestWithStages:
    def test_stages_and_timeline_arms_are_exclusive(self):
        with pytest.raises(ValueError, match="separate arms"):
            measure(with_stages=True, with_timeline=True)

    def test_staged_arm_reports_zero_fallbacks(self):
        # One pair at a small scale: correctness of the fallback
        # accounting, not the timing gate (CI runs the real budget).
        result = measure(accesses=300, repeats=1, with_stages=True)
        assert result["fallbacks"] == {}
        assert result["pairs"] == 1
        assert result["untraced_s"] > 0.0 and result["traced_s"] > 0.0

    def test_traced_arm_has_no_fallback_verdict(self):
        result = measure(accesses=200, repeats=1)
        assert "fallbacks" not in result
