"""Summary-mode stage accounting: the StageAccumulator contract.

The accumulator mirrors the :class:`~repro.obs.metrics.MetricsRegistry`
discipline — lossless ``to_dict``/``from_dict``, associative ``merge`` —
because per-worker shards must fold into exactly what one process would
have recorded.  The fused-kernel side of the contract (summary totals ==
scalar trace-span sums) lives in ``tests/system/test_stage_reconciliation``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.metrics import LATENCY_BOUNDS_NS
from repro.obs.stages import (
    NULL_STAGES,
    STAGES_SCHEMA_VERSION,
    NullStageAccumulator,
    StageAccumulator,
)

STAGES = ("write.hash", "write.crypto", "read.nvm")

samples = st.lists(
    st.tuples(st.sampled_from(STAGES), st.floats(0.0, 1e7, allow_nan=False)),
    max_size=40,
)


def fill(accumulator: StageAccumulator, pairs) -> StageAccumulator:
    for stage, value in pairs:
        accumulator.record(stage, value)
    return accumulator


class TestRecording:
    def test_record_creates_stage_lazily(self):
        accumulator = StageAccumulator()
        assert accumulator.stage_names() == []
        accumulator.record("write.hash", 42.0)
        assert accumulator.stage_names() == ["write.hash"]
        assert accumulator.counts() == {"write.hash": 1}
        assert accumulator.totals() == {"write.hash": 42.0}

    def test_record_many_is_sequential_observe(self):
        columnar = StageAccumulator()
        columnar.record_many("write.nvm", [10.0, 20.0, 5.0])
        scalar = fill(StageAccumulator(), [("write.nvm", v) for v in (10.0, 20.0, 5.0)])
        assert columnar.to_dict() == scalar.to_dict()

    def test_record_many_empty_creates_no_stage(self):
        # The fused kernels flush every columnar list unconditionally; a
        # stage that never fired must not appear (name-set parity with
        # the scalar path, which only records stages that happen).
        accumulator = StageAccumulator()
        accumulator.record_many("read.crypto", [])
        accumulator.record_many("read.crypto", iter(()))
        assert accumulator.stage_names() == []

    def test_reset_drops_everything(self):
        accumulator = fill(StageAccumulator(), [("write", 1.0)])
        accumulator.reset()
        assert accumulator.stage_names() == []

    def test_histograms_accessor_sorted(self):
        accumulator = fill(StageAccumulator(), [("b", 1.0), ("a", 2.0)])
        assert list(accumulator.histograms()) == ["a", "b"]


class TestNullObject:
    def test_null_is_disabled_and_inert(self):
        assert NULL_STAGES.enabled is False
        NULL_STAGES.record("write", 1.0)
        NULL_STAGES.record_many("write", [1.0, 2.0])
        assert isinstance(NULL_STAGES, NullStageAccumulator)

    def test_real_accumulator_is_enabled(self):
        assert StageAccumulator().enabled is True


class TestSerialisation:
    def test_round_trip_is_lossless(self):
        accumulator = fill(
            StageAccumulator(),
            [("write.hash", 3.5), ("write.hash", 900.0), ("read.nvm", 1e6)],
        )
        payload = accumulator.to_dict()
        assert payload["schema"] == STAGES_SCHEMA_VERSION
        clone = StageAccumulator.from_dict(payload)
        assert clone.to_dict() == payload

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="schema"):
            StageAccumulator.from_dict({"schema": 99, "bounds": [], "stages": {}})

    def test_merge_rejects_bounds_mismatch(self):
        left = StageAccumulator()
        right = StageAccumulator(bounds=(1.0, 2.0))
        with pytest.raises(ValueError, match="bounds"):
            left.merge(right)

    def test_merge_accepts_dict_shard(self):
        left = fill(StageAccumulator(), [("write", 5.0)])
        right = fill(StageAccumulator(), [("write", 7.0), ("read", 1.0)])
        left.merge(right.to_dict())
        assert left.counts() == {"read": 1, "write": 2}
        assert left.totals()["write"] == 12.0

    @settings(max_examples=50, deadline=None)
    @given(shards=st.lists(samples, min_size=1, max_size=5))
    def test_merge_of_shards_is_lossless(self, shards):
        # The parallel-run contract: per-worker accumulators merged in
        # the parent equal one accumulator that saw every sample.
        merged = StageAccumulator()
        for shard_samples in shards:
            merged.merge(fill(StageAccumulator(), shard_samples))
        single = fill(
            StageAccumulator(), [pair for shard in shards for pair in shard]
        )
        assert merged.counts() == single.counts()
        assert merged.stage_names() == single.stage_names()
        for stage in single.stage_names():
            assert merged.totals()[stage] == pytest.approx(single.totals()[stage])
            assert merged.histogram(stage).counts == single.histogram(stage).counts
            assert merged.histogram(stage).min_value == single.histogram(stage).min_value
            assert merged.histogram(stage).max_value == single.histogram(stage).max_value

    @settings(max_examples=50, deadline=None)
    @given(a=samples, b=samples, c=samples)
    def test_merge_is_associative(self, a, b, c):
        # Bucket counts, sample counts and extrema are exactly
        # associative; float totals only up to rounding.
        left = fill(StageAccumulator(), a)
        left.merge(fill(StageAccumulator(), b))
        left.merge(fill(StageAccumulator(), c))
        bc = fill(StageAccumulator(), b)
        bc.merge(fill(StageAccumulator(), c))
        right = fill(StageAccumulator(), a)
        right.merge(bc)
        assert left.stage_names() == right.stage_names()
        assert left.counts() == right.counts()
        for stage in left.stage_names():
            assert left.histogram(stage).counts == right.histogram(stage).counts
            assert left.histogram(stage).min_value == right.histogram(stage).min_value
            assert left.histogram(stage).max_value == right.histogram(stage).max_value
            assert left.totals()[stage] == pytest.approx(right.totals()[stage])

    def test_default_bounds_match_latency_buckets(self):
        assert StageAccumulator().bounds == LATENCY_BOUNDS_NS
