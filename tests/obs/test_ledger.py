"""The cross-run ledger: idempotent append, deterministic merge, trend."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.bench import BENCH_KIND, BENCH_SCHEMA_VERSION
from repro.obs.ledger import (
    Ledger,
    LedgerError,
    TrendReport,
    compute_trend,
    entry_for,
    ledger_from_records,
)

ANCHORS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def bench_payload(
    *,
    results: dict[str, float],
    created: float = 1000.0,
    sha: str | None = "a" * 40,
    stages: dict | None = None,
) -> dict:
    """A schema-valid bench record around per-case best seconds."""
    payload = {
        "schema": BENCH_SCHEMA_VERSION,
        "kind": BENCH_KIND,
        "created_unix_s": created,
        "git_sha": sha,
        "python": "3.12.0",
        "platform": "linux-test",
        "scale": {"accesses": 1200, "repeats": 3},
        "results": {
            name: {"best_s": best_s, "per_op_ns": best_s * 1e9 / 1200, "ops": 1200}
            for name, best_s in results.items()
        },
    }
    if stages is not None:
        payload["stages"] = stages
    return payload


# -- strategies ---------------------------------------------------------------

_case_names = st.lists(
    st.sampled_from(
        ["controller.dewrite", "controller.direct", "hash.crc32", "cache.lookup"]
    ),
    min_size=1,
    max_size=4,
    unique=True,
)

_payloads = st.builds(
    lambda names, seconds, created, sha: bench_payload(
        results=dict(zip(names, seconds)),
        created=created,
        sha=sha,
    ),
    _case_names,
    st.lists(
        st.floats(min_value=1e-6, max_value=10.0, allow_nan=False),
        min_size=4,
        max_size=4,
    ),
    st.floats(min_value=0.0, max_value=2e9, allow_nan=False),
    st.one_of(st.none(), st.text("0123456789abcdef", min_size=8, max_size=40)),
)


class TestAppendIdempotence:
    @settings(max_examples=50, deadline=None)
    @given(payloads=st.lists(_payloads, min_size=1, max_size=6))
    def test_readding_every_record_changes_nothing(self, payloads):
        ledger = Ledger()
        for payload in payloads:
            ledger.add_record(payload, source="first.json")
        size = len(ledger)
        serialized = ledger.to_dict()
        for payload in payloads:
            assert ledger.add_record(payload, source="second-path.json") is False
        assert len(ledger) == size
        assert ledger.to_dict() == serialized

    def test_source_path_is_not_identity(self):
        payload = bench_payload(results={"controller.dewrite": 0.5})
        a = entry_for(payload, source="checkout-a/BENCH_x.json")
        b = entry_for(payload, source="checkout-b/BENCH_x.json")
        assert a.entry_id == b.entry_id

    def test_distinct_summaries_get_distinct_ids(self):
        a = entry_for(bench_payload(results={"x": 0.5}))
        b = entry_for(bench_payload(results={"x": 0.6}))
        assert a.entry_id != b.entry_id


class TestMergeDeterminism:
    @settings(max_examples=50, deadline=None)
    @given(
        payloads=st.lists(_payloads, min_size=1, max_size=6),
        order=st.randoms(use_true_random=False),
    )
    def test_insertion_order_never_shows_in_serialization(self, payloads, order):
        forward = Ledger()
        for payload in payloads:
            forward.add_record(payload, source="s.json")
        shuffled = list(payloads)
        order.shuffle(shuffled)
        backward = Ledger()
        for payload in shuffled:
            backward.add_record(payload, source="s.json")
        assert forward.to_dict() == backward.to_dict()
        assert json.dumps(forward.to_dict(), sort_keys=True) == json.dumps(
            backward.to_dict(), sort_keys=True
        )

    @settings(max_examples=50, deadline=None)
    @given(
        left=st.lists(_payloads, min_size=0, max_size=4),
        right=st.lists(_payloads, min_size=0, max_size=4),
    )
    def test_merge_is_commutative_up_to_source_hints(self, left, right):
        # ``source`` is a human hint, not identity: when the same record
        # arrives from two paths the first-seen hint wins, so
        # commutativity is asserted on everything except that field.
        def canonical(ledger: Ledger) -> dict:
            payload = ledger.to_dict()
            for entry in payload["entries"]:
                entry.pop("source")
            return payload

        a = ledger_from_records((p, "a.json") for p in left)
        b = ledger_from_records((p, "b.json") for p in right)
        ab = ledger_from_records((p, "a.json") for p in left)
        ab.merge(b)
        ba = ledger_from_records((p, "b.json") for p in right)
        ba.merge(a)
        assert canonical(ab) == canonical(ba)


class TestSerialization:
    def test_round_trip_is_lossless(self, tmp_path):
        ledger = Ledger()
        ledger.add_record(bench_payload(results={"x": 0.5}), source="x.json")
        ledger.add_record(
            bench_payload(results={"y": 0.25}, created=2000.0, sha="b" * 40),
            source="y.json",
        )
        path = tmp_path / "ledger.json"
        ledger.dump(path)
        reloaded = Ledger.load(path)
        assert reloaded.to_dict() == ledger.to_dict()

    def test_load_rejects_non_ledger_json(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"schema": 1, "kind": "something-else", "entries": []}')
        with pytest.raises(LedgerError, match="kind"):
            Ledger.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(LedgerError, match="cannot read"):
            Ledger.load(tmp_path / "absent.json")

    def test_unindexable_record_rejected(self):
        with pytest.raises(LedgerError, match="record kind"):
            entry_for({"kind": "shopping-list"})

    def test_invalid_bench_record_rejected(self):
        broken = bench_payload(results={"x": 0.5})
        del broken["results"]
        with pytest.raises(LedgerError, match="bench record failed validation"):
            entry_for(broken)


class TestTrend:
    def test_improving_series_is_ok(self):
        entries = [
            entry_for(bench_payload(results={"x": 1.0}, created=1.0, sha="a" * 40)),
            entry_for(bench_payload(results={"x": 0.5}, created=2.0, sha="b" * 40)),
            entry_for(bench_payload(results={"x": 0.2}, created=3.0, sha="c" * 40)),
        ]
        report = compute_trend(entries)
        assert report.ok
        assert report.points == 3
        (case,) = report.cases
        assert case["verdict"] == "improved"
        assert case["points"] == 3

    def test_step_regression_is_flagged_even_when_net_flat(self):
        # Regressed in the middle, recovered at the end: the per-case row
        # reads flat, the offending step is still flagged.
        entries = [
            entry_for(bench_payload(results={"x": 0.10}, created=1.0, sha="a" * 40)),
            entry_for(bench_payload(results={"x": 0.50}, created=2.0, sha="b" * 40)),
            entry_for(bench_payload(results={"x": 0.10}, created=3.0, sha="c" * 40)),
        ]
        report = compute_trend(entries, threshold=0.30)
        assert not report.ok
        (step,) = report.steps
        assert step["from_sha"] == "a" * 40
        assert step["to_sha"] == "b" * 40
        assert step["regressions"][0]["name"] == "x"
        assert report.cases[0]["verdict"] == "flat"
        assert "STEP REGRESSION" in report.render()

    def test_noise_below_floor_and_threshold_is_flat(self):
        entries = [
            entry_for(bench_payload(results={"x": 0.100}, created=1.0)),
            entry_for(bench_payload(results={"x": 0.101}, created=2.0)),
        ]
        report = compute_trend(entries)
        assert report.ok
        assert report.cases[0]["verdict"] == "flat"

    def test_single_anchor_renders_placeholder(self):
        report = compute_trend([entry_for(bench_payload(results={"x": 0.1}))])
        assert report.ok
        assert "need at least two anchors" in report.render()

    def test_report_round_trips_and_recomputes_ok(self):
        entries = [
            entry_for(bench_payload(results={"x": 0.1}, created=1.0)),
            entry_for(bench_payload(results={"x": 0.9}, created=2.0)),
        ]
        report = compute_trend(entries)
        payload = report.to_dict()
        assert payload["ok"] is False
        rebuilt = TrendReport.from_dict(json.loads(json.dumps(payload)))
        assert rebuilt.to_dict() == payload
        assert rebuilt.ok is report.ok

    def test_committed_anchors_report_an_improving_trajectory(self):
        # The acceptance check of this PR: the two committed bench
        # anchors (PR 6 baseline, PR 7 columnar pipeline) form a monotone
        # improvement with zero flagged steps.
        from repro.obs.bench import discover_anchors, load_record

        paths = discover_anchors(ANCHORS)
        assert len(paths) >= 2, "expected the two committed bench anchors"
        ledger = ledger_from_records(
            (load_record(path), str(path)) for path in paths
        )
        report = compute_trend(ledger.entries(record_kind="bench"))
        assert report.ok, report.render()
        assert all(row["verdict"] != "regressed" for row in report.cases)
        assert any(row["verdict"] == "improved" for row in report.cases)


class TestCompositeBaseline:
    def test_gate_baseline_is_per_case_best_across_anchors(self):
        from repro.obs.bench import composite_baseline, discover_anchors, load_record

        records = [load_record(path) for path in discover_anchors(ANCHORS)]
        baseline = composite_baseline(records)
        for name, entry in baseline["results"].items():
            assert entry["best_s"] == min(
                record["results"][name]["best_s"]
                for record in records
                if name in record["results"]
            )

    def test_empty_anchor_set_rejected(self):
        from repro.obs.bench import composite_baseline

        with pytest.raises(ValueError):
            composite_baseline([])
