"""The structured tracer: spans, events, sinks, and the null tracer."""

from __future__ import annotations

import json

import pytest

from repro.obs.sinks import JsonlSink
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer, percentile


class TestTracer:
    def test_span_record_shape(self):
        tracer = Tracer()
        tracer.span("write.hash", 100.0, 115.0, fingerprint=0xBEEF)
        (record,) = tracer.records
        assert record["type"] == "span"
        assert record["name"] == "write.hash"
        assert record["clock"] == "sim"
        assert record["start_ns"] == 100.0
        assert record["end_ns"] == 115.0
        assert record["dur_ns"] == 15.0
        assert record["seq"] == 0
        assert record["wall_ns"] >= 0
        assert record["attrs"] == {"fingerprint": 0xBEEF}

    def test_event_record_shape(self):
        tracer = Tracer()
        tracer.event("metadata.miss", sim_ns=42.0, table="hash")
        (record,) = tracer.records
        assert record["type"] == "event"
        assert record["sim_ns"] == 42.0
        assert record["attrs"] == {"table": "hash"}

    def test_event_without_sim_time_omits_sim_ns(self):
        tracer = Tracer()
        tracer.event("job.retry", error="ValueError('x')")
        assert "sim_ns" not in tracer.records[0]

    def test_seq_matches_emission_order(self):
        tracer = Tracer()
        tracer.span("a", 0.0, 1.0)
        tracer.event("b")
        tracer.span("c", 1.0, 2.0)
        assert [r["seq"] for r in tracer.records] == [0, 1, 2]
        assert [r["name"] for r in tracer.records] == ["a", "b", "c"]

    def test_records_view_extends_after_materialisation(self):
        # Reading .records mid-run must not freeze the view.
        tracer = Tracer()
        tracer.span("a", 0.0, 1.0)
        assert len(tracer.records) == 1
        tracer.span("b", 1.0, 2.0)
        assert [r["name"] for r in tracer.records] == ["a", "b"]

    def test_context_attached_to_subsequent_records_only(self):
        tracer = Tracer()
        tracer.span("before", 0.0, 1.0)
        tracer.set_context(figure="fig14", app="lbm")
        tracer.span("after", 1.0, 2.0)
        tracer.clear_context()
        tracer.span("cleared", 2.0, 3.0)
        before, after, cleared = tracer.records
        assert "ctx" not in before
        assert after["ctx"] == {"figure": "fig14", "app": "lbm"}
        assert "ctx" not in cleared

    def test_wall_span_measures_and_merges_attrs(self):
        tracer = Tracer()
        with tracer.wall_span("job", label="x") as attrs:
            attrs["source"] = "executed"
        (record,) = tracer.records
        assert record["clock"] == "wall"
        assert record["dur_ns"] >= 0
        assert record["attrs"] == {"label": "x", "source": "executed"}

    def test_spans_and_events_filters(self):
        tracer = Tracer()
        tracer.span("write", 0.0, 1.0)
        tracer.span("read", 1.0, 2.0)
        tracer.event("metadata.miss")
        assert [r["name"] for r in tracer.spans()] == ["write", "read"]
        assert [r["name"] for r in tracer.spans("read")] == ["read"]
        assert [r["name"] for r in tracer.events()] == ["metadata.miss"]

    def test_stage_durations_groups_by_name_and_clock(self):
        tracer = Tracer()
        tracer.span("write.nvm", 0.0, 100.0)
        tracer.span("write.nvm", 100.0, 350.0)
        tracer.span_wall("job", 0, 999)
        stages = tracer.stage_durations()
        assert stages == {"write.nvm": [100.0, 250.0]}
        assert tracer.stage_durations(clock="wall") == {"job": [999.0]}


class TestJsonlSink:
    def test_stream_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        tracer.span("write.hash", 0.0, 15.0)
        tracer.event("dedup.verify_read", sim_ns=20.0, matched=True)
        tracer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        decoded = [json.loads(line) for line in lines]
        assert decoded[0]["name"] == "write.hash"
        assert decoded[1]["attrs"]["matched"] is True
        # The streamed records equal the buffered view.
        assert decoded == tracer.records

    def test_sink_lazy_until_first_record(self, tmp_path):
        path = tmp_path / "never.jsonl"
        tracer = Tracer(sink=JsonlSink(path))
        tracer.close()
        assert not path.exists()


class TestNullTracer:
    def test_disabled_and_records_nothing(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.span("write", 0.0, 1.0, attr=1)
        tracer.event("metadata.miss", sim_ns=5.0)
        tracer.set_context(figure="fig14")
        with tracer.wall_span("job") as attrs:
            attrs["ignored"] = True
        tracer.close()
        assert len(tracer.records) == 0

    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False

    def test_instrumented_pipeline_emits_nothing_through_null_tracer(self):
        # End to end: a full simulation with the default (null) tracer must
        # leave zero records anywhere — tracing off is the default.
        from repro.core.registry import build_controller
        from repro.nvm.memory import NvmMainMemory
        from repro.runner.jobs import trace_for
        from repro.system.simulator import simulate

        controller = build_controller("dewrite", NvmMainMemory())
        simulate(controller, trace_for("lbm", 200, 1))
        assert controller.tracer is NULL_TRACER
        assert len(controller.tracer.records) == 0


class TestInstrumentedPipeline:
    def test_traced_simulation_covers_every_stage(self):
        from repro.core.registry import build_controller
        from repro.nvm.memory import NvmMainMemory
        from repro.runner.jobs import trace_for
        from repro.system.simulator import simulate

        tracer = Tracer()
        controller = build_controller(
            "dewrite", NvmMainMemory(), tracer=tracer
        )
        simulate(controller, trace_for("lbm", 400, 1))
        names = {record["name"] for record in tracer.records}
        for stage in (
            "write", "write.hash", "write.dedup",
            "read", "read.metadata", "read.nvm", "read.crypto",
            "nvm.read", "nvm.write",
        ):
            assert stage in names, f"missing stage {stage}"

    def test_stage_spans_nest_inside_request_span(self):
        from repro.core.registry import build_controller
        from repro.nvm.memory import NvmMainMemory
        from repro.runner.jobs import trace_for
        from repro.system.simulator import simulate

        tracer = Tracer()
        controller = build_controller("dewrite", NvmMainMemory(), tracer=tracer)
        simulate(controller, trace_for("lbm", 300, 1))
        for enclosing, stage in (("write", "write.hash"), ("read", "read.nvm")):
            outer = tracer.spans(enclosing)
            inner = tracer.spans(stage)
            assert outer and inner
            # Every stage span fits inside some enclosing request span.
            spans = [(r["start_ns"], r["end_ns"]) for r in outer]
            for record in inner:
                assert any(
                    start <= record["start_ns"] and record["end_ns"] <= end
                    for start, end in spans
                ), f"{stage} span escapes every {enclosing} span"


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 95) == 40.0
        assert percentile(values, 100) == 40.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0)
        with pytest.raises(ValueError):
            percentile([1.0], 101)
