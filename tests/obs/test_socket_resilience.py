"""Socket transport resilience: vanishing consumers, watcher resync.

The drop-don't-crash contract has two halves.  The *producer* half: a
run streaming to a ``SocketSink`` must survive its watcher detaching
mid-run — later emissions are counted dropped, the run itself is
unperturbed.  The *consumer* half: a watcher that reattaches resumes
from the next sequence number, surfacing the missed records as
``seq_gaps`` instead of rendering a partial run as complete.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.obs.events import EventBus, SocketSink, validate_event
from repro.obs.metrics import registry, reset_registry
from repro.obs.watch import WatchModel, render_dashboard


@pytest.fixture(autouse=True)
def _fresh_registry():
    reset_registry()
    yield
    reset_registry()


class _FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now


def _receiver(path) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
    sock.bind(str(path))
    sock.settimeout(2.0)
    return sock


def _fold(records) -> WatchModel:
    model = WatchModel()
    for record in records:
        model.consume(record)
    return model


class TestConsumerDisappears:
    def test_emits_after_detach_drop_without_raising(self, tmp_path):
        path = tmp_path / "watch.sock"
        receiver = _receiver(path)
        bus = EventBus(SocketSink(path), clock=_FakeClock())
        try:
            bus.emit("run_started", planned=2, unique=2)
            first = json.loads(receiver.recv(1 << 16))
            assert validate_event(first) == []
        finally:
            receiver.close()
        path.unlink()  # the watcher is gone, socket file and all

        # The producer keeps going: every subsequent emit is a drop, not
        # a crash, and the drops are visible on the metrics registry.
        bus.emit("started", key="a", label="a", attempt=1)
        bus.emit(
            "finished", key="a", label="a", status="ok",
            compute_s=0.1, queue_s=0.0, attempts=1,
        )
        assert bus.emitted == 1
        assert bus.dropped == 2
        snapshot = registry().to_dict()
        assert snapshot["events.dropped"]["value"] == 2
        bus.close()

    def test_sequence_numbers_advance_across_drops(self, tmp_path):
        # Dropped records still consume sequence numbers — that is what
        # lets a reattached watcher *see* the hole.
        path = tmp_path / "watch.sock"
        receiver = _receiver(path)
        bus = EventBus(SocketSink(path), clock=_FakeClock())
        bus.emit("run_started", planned=2, unique=2)
        before = json.loads(receiver.recv(1 << 16))
        receiver.close()
        path.unlink()
        bus.emit("started", key="a", label="a", attempt=1)  # dropped

        rejoined = _receiver(path)
        try:
            bus.emit("cache_hit", key="b", label="b")
            after = json.loads(rejoined.recv(1 << 16))
        finally:
            rejoined.close()
        assert before["seq"] == 0
        assert after["seq"] == 2  # seq 1 died with the detached watcher
        bus.close()


class TestWatcherResync:
    def _records(self) -> list[dict]:
        seen: list[dict] = []
        bus = EventBus(seen.append, clock=_FakeClock())
        bus.emit("run_started", planned=3, unique=3)
        for key in ("a", "b", "c"):
            bus.emit("started", key=key, label=key, attempt=1)
            bus.emit(
                "finished", key=key, label=key, status="ok",
                compute_s=0.1, queue_s=0.0, attempts=1,
            )
        bus.emit("run_finished", status="ok", elapsed_s=1.0)
        return seen

    def test_gap_is_counted_not_fatal(self):
        records = self._records()
        # The watcher missed records 2..4 while detached.
        model = _fold(records[:2] + records[5:])
        assert model.seq_gaps == 3
        assert model.run_finished
        assert model.records_seen == len(records) - 3

    def test_dashboard_surfaces_the_gap(self):
        records = self._records()
        model = _fold(records[:2] + records[5:])
        frame = render_dashboard(model)
        assert "3 dropped" in frame

    def test_contiguous_stream_reports_no_gaps(self):
        model = _fold(self._records())
        assert model.seq_gaps == 0
        assert "dropped" not in render_dashboard(model)
