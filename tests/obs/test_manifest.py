"""Run manifests: build, validate, write, load."""

from __future__ import annotations

import json

import pytest

from repro.obs.manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    ManifestError,
    build_manifest,
    load_manifest,
    validate_manifest,
    write_manifest,
)


def minimal_manifest(**overrides):
    payload = build_manifest(
        figures=["fig12"],
        settings={"accesses": 1000, "seed": 1, "applications": ["lbm"]},
        options={"parallel": 1, "cache": True},
        jobs=[
            {
                "label": "fig12: simulate lbm/dewrite",
                "key": "abc123",
                "kind": "simulate",
                "source": "executed",
                "compute_s": 0.5,
                "queue_s": 0.0,
                "attempts": 1,
            }
        ],
        cache={
            "planned": 4, "unique": 4, "disk_hits": 0,
            "executed": 4, "simulations": 4, "retries": 0,
        },
        failures=[],
        elapsed_s=1.25,
        metrics={"jobs.simulate": {"kind": "counter", "value": 4.0}},
        command=["python", "-m", "repro", "run", "fig12"],
    )
    payload.update(overrides)
    return payload


class TestBuildManifest:
    def test_build_produces_valid_manifest(self):
        payload = minimal_manifest()
        assert validate_manifest(payload) == []
        assert payload["schema"] == MANIFEST_SCHEMA_VERSION
        assert payload["kind"] == MANIFEST_KIND
        assert payload["command"][-1] == "fig12"

    def test_environment_fields_populated(self):
        payload = minimal_manifest()
        assert payload["python"].count(".") == 2
        assert payload["created_unix_s"] > 0
        # In this checkout git_sha resolves; peak RSS is measurable on Linux.
        assert payload["git_sha"] is None or len(payload["git_sha"]) == 40
        assert payload["peak_rss_kb"] is None or payload["peak_rss_kb"] > 0

    def test_manifest_is_json_serialisable(self):
        json.dumps(minimal_manifest())


class TestValidateManifest:
    def test_non_object_rejected(self):
        assert validate_manifest([1, 2]) != []
        assert validate_manifest(None) != []

    def test_wrong_schema_version_rejected(self):
        problems = validate_manifest(minimal_manifest(schema=99))
        assert any("schema" in p for p in problems)

    def test_wrong_kind_rejected(self):
        problems = validate_manifest(minimal_manifest(kind="something-else"))
        assert any("kind" in p for p in problems)

    def test_missing_settings_keys_reported(self):
        problems = validate_manifest(minimal_manifest(settings={"accesses": 1}))
        assert any("seed" in p for p in problems)
        assert any("applications" in p for p in problems)

    def test_bad_job_source_reported(self):
        payload = minimal_manifest()
        payload["jobs"][0]["source"] = "teleported"
        problems = validate_manifest(payload)
        assert any("source" in p for p in problems)

    def test_non_integer_cache_counter_reported(self):
        payload = minimal_manifest()
        payload["cache"]["executed"] = "four"
        assert any("cache.executed" in p for p in validate_manifest(payload))

    def test_failure_without_error_string_reported(self):
        payload = minimal_manifest(failures=[{"label": "x"}])
        assert any("failures[0]" in p for p in validate_manifest(payload))

    def test_schema_version_1_still_accepted(self):
        # Schema 2 was purely additive (optional faults section), so old
        # manifests must keep validating and diffing.
        assert validate_manifest(minimal_manifest(schema=1)) == []


def faults_scenario(**overrides):
    scenario = {
        "workload": "lbm",
        "controller": "dewrite",
        "policy": "periodic_writeback",
        "crash_access": 400,
        "crash_ns": 123_456.0,
        "horizon_ns": 100_000.0,
        "durable_events": 90,
        "dropped_events": 0,
        "lost_counter_lines": 2,
        "broken_references": 1,
        "recovery_time_ns": 5_000.0,
        "report": {"total_lines": 100, "intact": 95, "stale": 2, "lost": 3},
    }
    scenario.update(overrides)
    return scenario


class TestFaultsSection:
    def test_manifest_with_faults_section_valid(self):
        payload = minimal_manifest(
            faults={"interval_ns": 100_000.0, "scenarios": [faults_scenario()]}
        )
        assert validate_manifest(payload) == []

    def test_build_manifest_embeds_faults(self):
        payload = build_manifest(
            figures=["system"],
            settings={"accesses": 10, "seed": 1, "applications": ["lbm"]},
            options={},
            jobs=[],
            cache={"planned": 0, "unique": 0, "disk_hits": 0, "executed": 0,
                   "simulations": 0, "retries": 0},
            failures=[],
            elapsed_s=0.1,
            faults={"interval_ns": 1.0, "scenarios": []},
        )
        assert payload["faults"] == {"interval_ns": 1.0, "scenarios": []}
        assert validate_manifest(payload) == []

    def test_faults_must_be_object(self):
        problems = validate_manifest(minimal_manifest(faults=[1, 2]))
        assert any("'faults' must be an object" in p for p in problems)

    def test_missing_interval_and_scenarios_reported(self):
        problems = validate_manifest(minimal_manifest(faults={}))
        assert any("faults.interval_ns" in p for p in problems)
        assert any("faults.scenarios" in p for p in problems)

    def test_scenario_without_strings_reported(self):
        problems = validate_manifest(minimal_manifest(faults={
            "interval_ns": 1.0,
            "scenarios": [faults_scenario(controller=7)],
        }))
        assert any("scenarios[0].controller" in p for p in problems)

    def test_broken_verdict_partition_reported(self):
        # intact + stale + lost must equal total_lines — the audit's core
        # invariant is enforced at the manifest layer too.
        problems = validate_manifest(minimal_manifest(faults={
            "interval_ns": 1.0,
            "scenarios": [faults_scenario(
                report={"total_lines": 100, "intact": 95, "stale": 2, "lost": 4}
            )],
        }))
        assert any("do not partition" in p for p in problems)

    def test_summary_totals_verdicts(self):
        from repro.obs.manifest import summarize_manifest

        payload = minimal_manifest(faults={
            "interval_ns": 50.0,
            "scenarios": [
                faults_scenario(),
                faults_scenario(
                    policy="battery_backed",
                    report={"total_lines": 10, "intact": 10, "stale": 0, "lost": 0},
                ),
            ],
        })
        summary = summarize_manifest(payload)
        assert summary["valid"]
        assert summary["faults"] == {
            "interval_ns": 50.0, "scenarios": 2,
            "intact": 105, "stale": 2, "lost": 3,
        }


class TestWriteLoadRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out" / "manifest.json"
        payload = minimal_manifest()
        write_manifest(path, payload)
        assert load_manifest(path) == payload

    def test_load_rejects_invalid_manifest(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"schema": 1}))
        with pytest.raises(ManifestError):
            load_manifest(path)
        # validate=False loads anyway (the stats verb reports problems itself).
        assert load_manifest(path, validate=False) == {"schema": 1}

    def test_load_rejects_non_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("not json{")
        with pytest.raises(ManifestError):
            load_manifest(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ManifestError):
            load_manifest(tmp_path / "absent.json")


class TestStagesSection:
    """Schema v3: the optional summary-mode ``stages`` section."""

    def stages_payload(self):
        from repro.obs.stages import StageAccumulator

        accumulator = StageAccumulator()
        accumulator.record_many("write.crypto", [100.0, 250.0])
        accumulator.record("write.nvm", 900.0)
        return accumulator.to_dict()

    def test_manifest_with_stages_validates(self):
        payload = minimal_manifest(stages=self.stages_payload())
        assert validate_manifest(payload) == []
        assert payload["schema"] == MANIFEST_SCHEMA_VERSION

    def test_build_manifest_accepts_stages_kwarg(self):
        payload = build_manifest(
            figures=["fig14"],
            settings={"accesses": 500, "seed": 1, "applications": ["lbm"]},
            options={}, jobs=[],
            cache={"planned": 1, "unique": 1, "disk_hits": 0,
                   "executed": 1, "simulations": 1, "retries": 0},
            failures=[], elapsed_s=0.1, metrics={},
            stages=self.stages_payload(),
        )
        assert validate_manifest(payload) == []
        assert set(payload["stages"]["stages"]) == {"write.crypto", "write.nvm"}

    def test_older_schemas_still_accepted(self):
        for version in (1, 2):
            payload = minimal_manifest(schema=version)
            assert validate_manifest(payload) == [], version

    def test_malformed_stages_rejected(self):
        payload = minimal_manifest(stages=[])
        assert any("stages" in p for p in validate_manifest(payload))
        stages = self.stages_payload()
        stages["stages"]["write.crypto"]["count"] = "two"
        payload = minimal_manifest(stages=stages)
        assert any("count" in p for p in validate_manifest(payload))

    def test_summary_digest_includes_stage_totals(self):
        from repro.obs.manifest import summarize_manifest

        summary = summarize_manifest(minimal_manifest(stages=self.stages_payload()))
        assert summary["stages"]["stages"] == 2
        assert summary["stages"]["samples"] == 3
        assert summary["stages"]["total_ns"] == 1250.0

    def test_stages_round_trip_through_manifest(self, tmp_path):
        from repro.obs.stages import StageAccumulator

        payload = minimal_manifest(stages=self.stages_payload())
        path = write_manifest(tmp_path / "manifest.json", payload)
        loaded = load_manifest(path)
        rebuilt = StageAccumulator.from_dict(loaded["stages"])
        assert rebuilt.to_dict() == self.stages_payload()
