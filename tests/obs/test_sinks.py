"""JsonlSink lifecycle: close semantics and the atexit flush registry."""

from __future__ import annotations

import json

import pytest

from repro.obs.sinks import _OPEN_SINKS, JsonlSink, SinkClosedError, _flush_open_sinks


class TestCloseSemantics:
    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink({"a": 1})
        sink.close()
        with pytest.raises(SinkClosedError, match="1 written before close"):
            sink({"a": 2})

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink({"a": 1})
        sink.close()
        sink.close()
        assert sink.closed
        lines = (tmp_path / "t.jsonl").read_text().splitlines()
        assert [json.loads(line) for line in lines] == [{"a": 1}]

    def test_close_before_any_write_leaves_no_file(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        assert not (tmp_path / "t.jsonl").exists()
        with pytest.raises(SinkClosedError):
            sink({"a": 1})


class TestAtexitFlush:
    def test_open_sinks_are_registered_and_flushed(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink({"a": 1})
        assert sink in _OPEN_SINKS
        _flush_open_sinks()
        assert sink.closed
        assert sink not in _OPEN_SINKS
        # The flushed file is complete, valid JSONL.
        assert json.loads((tmp_path / "t.jsonl").read_text()) == {"a": 1}

    def test_closed_sinks_drop_out_of_registry(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        assert sink not in _OPEN_SINKS
        _flush_open_sinks()  # must not raise on an empty/partial registry
