"""Windowed timeline collector: windowing, serde, merge, instrumentation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.timeline import (
    NULL_TIMELINE,
    NullTimeline,
    TimelineCollector,
    render_timeline,
    timeline_csv,
)


class TestNullTimeline:
    def test_disabled_and_inert(self):
        assert NULL_TIMELINE.enabled is False
        assert isinstance(NULL_TIMELINE, NullTimeline)
        # Every recorder is a no-op that accepts the full signature.
        NULL_TIMELINE.record_write(1.0, deduplicated=True, latency_ns=10.0)
        NULL_TIMELINE.record_read(1.0, latency_ns=10.0)
        NULL_TIMELINE.record_metadata(1.0, hit=False)
        NULL_TIMELINE.record_nvm_read(1.0, bank=0, wait_ns=0.0)
        NULL_TIMELINE.record_nvm_write(1.0, bank=0, wait_ns=0.0, bit_flips=3)


class TestWindowing:
    def test_samples_land_in_their_windows(self):
        tl = TimelineCollector(window_ns=100.0)
        tl.record_write(10.0, deduplicated=True, latency_ns=50.0)
        tl.record_write(99.0, deduplicated=False, latency_ns=150.0)
        tl.record_write(100.0, deduplicated=False, latency_ns=70.0)
        tl.record_read(250.0, latency_ns=40.0)
        assert tl.window_indices() == [0, 1, 2]
        assert tl.raw_window(0)["writes"] == 2
        assert tl.raw_window(0)["dedup_writes"] == 1
        assert tl.raw_window(0)["write_latency_ns"] == 200.0
        assert tl.raw_window(1)["writes"] == 1
        assert tl.raw_window(2)["reads"] == 1

    def test_rows_derive_rates(self):
        tl = TimelineCollector(window_ns=100.0)
        tl.record_write(0.0, deduplicated=True, latency_ns=100.0)
        tl.record_write(1.0, deduplicated=False, latency_ns=300.0)
        tl.record_metadata(2.0, hit=True)
        tl.record_metadata(3.0, hit=False)
        tl.record_nvm_write(4.0, bank=2, wait_ns=10.0, bit_flips=7)
        (row,) = tl.rows()
        assert row["window"] == 0
        assert row["writes"] == 2
        assert row["dedup_ratio"] == 0.5
        # 2 requested writes, 1 reached the array.
        assert row["write_reduction"] == 0.5
        assert row["meta_hit_rate"] == 0.5
        assert row["mean_write_ns"] == 200.0
        assert row["bit_flips"] == 7

    def test_empty_window_rates_are_zero(self):
        tl = TimelineCollector(window_ns=100.0)
        tl.record_nvm_read(5.0, bank=0, wait_ns=2.0)
        (row,) = tl.rows()
        assert row["dedup_ratio"] == 0.0
        assert row["write_reduction"] == 0.0
        assert row["meta_hit_rate"] == 0.0
        assert row["mean_bank_wait_ns"] == 2.0

    def test_per_bank_accounting(self):
        tl = TimelineCollector(window_ns=100.0)
        tl.record_nvm_read(0.0, bank=3, wait_ns=5.0)
        tl.record_nvm_write(1.0, bank=3, wait_ns=7.0, bit_flips=1)
        tl.record_nvm_write(2.0, bank=0, wait_ns=0.0, bit_flips=1)
        window = tl.raw_window(0)
        assert window["bank_accesses"] == {3: 2, 0: 1}
        assert window["bank_wait_by_bank_ns"][3] == 12.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TimelineCollector(window_ns=0.0)
        with pytest.raises(ValueError):
            TimelineCollector(max_windows=0)


class TestRingEviction:
    def test_oldest_window_evicted_past_capacity(self):
        tl = TimelineCollector(window_ns=10.0, max_windows=2)
        for t in (5.0, 15.0, 25.0):
            tl.record_read(t, latency_ns=1.0)
        assert tl.window_indices() == [1, 2]
        assert tl.evicted_windows == 1

    def test_out_of_order_sample_older_than_all_is_dropped(self):
        tl = TimelineCollector(window_ns=10.0, max_windows=2)
        tl.record_read(105.0, latency_ns=1.0)
        tl.record_read(115.0, latency_ns=1.0)
        # Window 0 is older than both retained windows: it is created and
        # immediately evicted, leaving the retained set untouched.
        tl.record_read(5.0, latency_ns=1.0)
        assert tl.window_indices() == [10, 11]
        assert tl.evicted_windows == 1
        # The collector still records correctly afterwards.
        tl.record_read(116.0, latency_ns=1.0)
        assert tl.raw_window(11)["reads"] == 2


class TestSerde:
    def _sample(self) -> TimelineCollector:
        tl = TimelineCollector(window_ns=50.0, max_windows=16)
        tl.record_write(0.0, deduplicated=True, latency_ns=100.0)
        tl.record_read(60.0, latency_ns=40.0)
        tl.record_metadata(61.0, hit=True)
        tl.record_nvm_write(120.0, bank=5, wait_ns=3.5, bit_flips=11)
        return tl

    def test_round_trip_is_lossless(self):
        tl = self._sample()
        clone = TimelineCollector.from_dict(tl.to_dict())
        assert clone.to_dict() == tl.to_dict()
        assert clone.window_ns == tl.window_ns
        assert clone.totals() == tl.totals()

    def test_to_dict_is_json_shaped(self):
        import json

        payload = self._sample().to_dict()
        assert json.loads(json.dumps(payload)) == payload
        # Bank keys serialise as strings and restore as ints.
        assert "5" in payload["windows"]["2"]["bank_accesses"]

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            TimelineCollector.from_dict({"schema": 99, "window_ns": 1.0})

    def test_merge_window_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="window widths"):
            TimelineCollector(window_ns=10.0).merge(TimelineCollector(window_ns=20.0))


class TestMerge:
    def test_merge_sums_windows_and_banks(self):
        a = TimelineCollector(window_ns=10.0)
        b = TimelineCollector(window_ns=10.0)
        a.record_nvm_write(5.0, bank=1, wait_ns=2.0, bit_flips=3)
        b.record_nvm_write(6.0, bank=1, wait_ns=4.0, bit_flips=5)
        b.record_nvm_write(15.0, bank=2, wait_ns=1.0, bit_flips=1)
        a.merge(b)
        assert a.raw_window(0)["bit_flips"] == 8
        assert a.raw_window(0)["bank_wait_by_bank_ns"][1] == 6.0
        assert a.raw_window(1)["nvm_writes"] == 1

    def test_merge_accepts_dict_shards(self):
        a = TimelineCollector(window_ns=10.0)
        b = TimelineCollector(window_ns=10.0)
        b.record_read(1.0, latency_ns=9.0)
        a.merge(b.to_dict())
        assert a.totals()["reads"] == 1

    def test_merge_enforces_ring_capacity(self):
        a = TimelineCollector(window_ns=10.0, max_windows=2)
        b = TimelineCollector(window_ns=10.0)
        for t in (5.0, 15.0, 25.0, 35.0):
            b.record_read(t, latency_ns=1.0)
        a.merge(b)
        assert a.window_indices() == [2, 3]
        assert a.evicted_windows == 2

    @settings(max_examples=50, deadline=None)
    @given(
        samples=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1e4),
                st.integers(min_value=0, max_value=7),
                st.integers(min_value=0, max_value=64),
            ),
            max_size=60,
        ),
        cut=st.integers(min_value=0, max_value=60),
    )
    def test_merged_shards_equal_single_process_collection(self, samples, cut):
        # The parallel-run contract (mirrors the histogram merge property):
        # splitting a sample stream across worker shards and merging their
        # snapshots must equal collecting everything in one process.
        cut = min(cut, len(samples))
        single = TimelineCollector(window_ns=100.0)
        shard_a = TimelineCollector(window_ns=100.0)
        shard_b = TimelineCollector(window_ns=100.0)
        for index, (t, bank, flips) in enumerate(samples):
            single.record_nvm_write(t, bank=bank, wait_ns=t / 2, bit_flips=flips)
            shard = shard_a if index < cut else shard_b
            shard.record_nvm_write(t, bank=bank, wait_ns=t / 2, bit_flips=flips)
        merged = TimelineCollector(window_ns=100.0)
        merged.merge(shard_a.to_dict())
        merged.merge(shard_b.to_dict())
        assert merged.window_indices() == single.window_indices()
        for index in single.window_indices():
            ours, theirs = merged.raw_window(index), single.raw_window(index)
            for field in ("nvm_writes", "bit_flips", "bank_accesses"):
                assert ours[field] == theirs[field]
            assert ours["bank_wait_ns"] == pytest.approx(theirs["bank_wait_ns"])


class TestRendering:
    def test_render_and_csv(self):
        tl = TimelineCollector(window_ns=100.0)
        tl.record_write(0.0, deduplicated=True, latency_ns=100.0)
        tl.record_write(150.0, deduplicated=False, latency_ns=100.0)
        text = render_timeline(tl)
        assert "window" in text and "dup%" in text
        assert len(text.splitlines()) == 3
        csv = timeline_csv(tl)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("window,start_ns,writes")
        assert len(lines) == 3

    def test_render_caps_rows(self):
        tl = TimelineCollector(window_ns=10.0)
        for i in range(10):
            tl.record_read(i * 10.0, latency_ns=1.0)
        text = render_timeline(tl, max_rows=4)
        assert "and 6 more windows" in text


class TestEndToEnd:
    def test_dewrite_simulation_populates_timeline(self):
        from repro.core.registry import build_controller
        from repro.nvm.memory import NvmMainMemory
        from repro.runner.jobs import trace_for
        from repro.system.simulator import simulate

        timeline = TimelineCollector(window_ns=10_000.0)
        controller = build_controller("dewrite", NvmMainMemory(), timeline=timeline)
        trace = trace_for("lbm", 1500, 1)
        simulate(controller, trace)

        totals = timeline.totals()
        stats = controller.stats
        assert totals["writes"] == stats.writes_requested
        assert totals["reads"] == stats.reads_requested
        assert totals["dedup_writes"] == stats.writes_deduplicated
        # Device traffic and metadata samples flow through the same object.
        assert totals["nvm_writes"] > 0
        assert totals["meta_accesses"] > 0
        assert totals["bit_flips"] > 0

    def test_attach_timeline_reaches_all_layers(self):
        from repro.core.registry import build_controller
        from repro.nvm.memory import NvmMainMemory

        timeline = TimelineCollector()
        nvm = NvmMainMemory()
        controller = build_controller("dewrite", nvm)
        assert controller.timeline is NULL_TIMELINE
        controller.attach_observers(timeline=timeline)
        assert controller.timeline is timeline
        assert nvm.timeline is timeline
        assert controller.metadata.timeline is timeline

    def test_baseline_controller_records_too(self):
        from repro.core.registry import build_controller
        from repro.nvm.memory import NvmMainMemory
        from repro.runner.jobs import trace_for
        from repro.system.simulator import simulate

        timeline = TimelineCollector(window_ns=10_000.0)
        controller = build_controller(
            "secure-nvm", NvmMainMemory(), timeline=timeline
        )
        simulate(controller, trace_for("mcf", 800, 1))
        totals = timeline.totals()
        assert totals["writes"] > 0
        assert totals["dedup_writes"] == 0  # the baseline never deduplicates
        assert totals["nvm_writes"] >= totals["writes"]
