"""The ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


@pytest.fixture(autouse=True)
def _hermetic_cache(tmp_path, monkeypatch):
    """Keep CLI invocations away from the user's ~/.cache/repro and keep
    the default ``manifest.json`` out of the checkout."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))
    monkeypatch.chdir(tmp_path)
    yield
    from repro.runner import provider

    provider.reset()


class TestList:
    def test_lists_figures_and_apps(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out
        assert "storage" in out
        assert "lbm" in out
        assert "vips" in out


class TestCompare:
    def test_compare_prints_speedups(self, capsys):
        assert main(["compare", "--app", "lbm", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "write reduction" in out
        assert "write speedup" in out
        assert "lbm" in out

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            main(["compare", "--app", "doom3", "--accesses", "100"])


class TestFigure:
    def test_storage_figure(self, capsys):
        assert main(["figure", "storage"]) == 0
        out = capsys.readouterr().out
        assert "DEUCE" in out

    def test_fig2_with_subset(self, capsys):
        assert main(["figure", "fig2", "--apps", "mcf,vips", "--accesses", "2000"]) == 0
        out = capsys.readouterr().out
        assert "mcf" in out and "vips" in out and "AVERAGE" in out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestRun:
    ARGS = ["run", "fig12", "--apps", "lbm,mcf", "--accesses", "1500"]

    def test_smoke_without_cache(self, capsys):
        assert main([*self.ARGS, "--no-cache"]) == 0
        captured = capsys.readouterr()
        assert "Fig. 12" in captured.out
        assert "cache-stats:" in captured.err
        assert "4 executed" in captured.err

    def test_warm_cache_rerun_executes_zero_simulations(self, tmp_path, capsys):
        cache_args = [*self.ARGS, "--cache-dir", str(tmp_path / "c")]
        assert main(cache_args) == 0
        cold = capsys.readouterr()
        assert main(cache_args) == 0
        warm = capsys.readouterr()
        assert "0 simulations executed" in warm.err
        assert "4 warm from cache" in warm.err
        assert warm.out == cold.out  # byte-identical figures from the cache

    def test_multiple_figures_and_out_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "tables"
        code = main(
            ["run", "fig12", "fig13", "--apps", "lbm", "--accesses", "800",
             "--no-cache", "--out", str(out_dir)]
        )
        assert code == 0
        assert (out_dir / "fig12.txt").exists()
        assert (out_dir / "fig13.txt").exists()
        capsys.readouterr()

    def test_parallel_matches_serial_output(self, capsys):
        assert main([*self.ARGS, "--no-cache"]) == 0
        serial = capsys.readouterr().out
        from repro.runner import provider

        provider.reset()
        assert main([*self.ARGS, "--no-cache", "--parallel", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            main(["run", "fig99", "--no-cache"])


class TestRegress:
    def test_clean_comparison_exits_zero(self, tmp_path, capsys):
        from repro.analysis.export import dump_json, table_to_dict
        from repro.analysis.reporting import Table

        table = Table("T", ["app", "v"])
        table.add_row("lbm", 4.0)
        dump_json(table_to_dict(table), tmp_path / "a.json")
        dump_json(table_to_dict(table), tmp_path / "b.json")
        assert main(["regress", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_drift_exits_nonzero(self, tmp_path, capsys):
        from repro.analysis.export import dump_json, table_to_dict
        from repro.analysis.reporting import Table

        a = Table("T", ["app", "v"])
        a.add_row("lbm", 4.0)
        b = Table("T", ["app", "v"])
        b.add_row("lbm", 8.0)
        dump_json(table_to_dict(a), tmp_path / "a.json")
        dump_json(table_to_dict(b), tmp_path / "b.json")
        assert main(["regress", str(tmp_path / "a.json"), str(tmp_path / "b.json")]) == 1
        assert "lbm/v" in capsys.readouterr().out


class TestTopLevelPackage:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_public_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
