"""Simulation reports: determinism and derived metrics."""

from __future__ import annotations

import pytest

from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name

LINE = 256


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


class TestDeterminism:
    def test_identical_runs_produce_identical_reports(self):
        trace = generate_trace(profile_by_name("gcc"), 3_000, seed=4)
        a = simulate(DeWriteController(make_nvm()), trace)
        b = simulate(DeWriteController(make_nvm()), trace)
        assert a.ipc == b.ipc
        assert a.mean_write_latency_ns == b.mean_write_latency_ns
        assert a.energy_nj == b.energy_nj
        assert a.wear == b.wear

    def test_different_seeds_differ(self):
        a = simulate(
            DeWriteController(make_nvm()),
            generate_trace(profile_by_name("gcc"), 3_000, seed=4),
        )
        b = simulate(
            DeWriteController(make_nvm()),
            generate_trace(profile_by_name("gcc"), 3_000, seed=5),
        )
        assert a.mean_write_latency_ns != b.mean_write_latency_ns


class TestDerivedMetrics:
    def test_write_reduction_passthrough(self):
        trace = generate_trace(profile_by_name("lbm"), 3_000, seed=1)
        report = simulate(DeWriteController(make_nvm()), trace)
        assert report.write_reduction == report.stats.write_reduction
        assert report.write_reduction > 0.8

    def test_speedup_keys(self):
        trace = generate_trace(profile_by_name("mcf"), 2_000, seed=1)
        base = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        ours = simulate(DeWriteController(make_nvm()), trace)
        speedups = ours.speedup_vs(base)
        assert set(speedups) == {
            "write_speedup", "read_speedup", "ipc_ratio", "energy_ratio"
        }
        assert all(v > 0 for v in speedups.values())

    def test_bank_wait_reported(self):
        trace = generate_trace(profile_by_name("lbm"), 3_000, seed=1)
        report = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        assert report.mean_bank_wait_ns >= 0.0
        assert report.makespan_ns > 0.0
