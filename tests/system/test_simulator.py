"""System simulator: stall semantics, ordering, IPC arithmetic."""

from __future__ import annotations

import pytest

from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.cpu import CoreModelConfig
from repro.system.simulator import SystemSimulator, simulate
from repro.workloads.trace import MemoryAccess, Trace

LINE = 256


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


def wr(address, core=0, gap=100, persistent=False, fill=1):
    return MemoryAccess(
        core=core, op="write", address=address, data=bytes([fill]) * LINE,
        gap_instructions=gap, persistent=persistent,
    )


def rd(address, core=0, gap=100):
    return MemoryAccess(core=core, op="read", address=address, gap_instructions=gap)


class TestStallSemantics:
    def test_persistent_write_stalls_core(self):
        trace = Trace("t", [wr(0, persistent=True, fill=1), wr(1, gap=1, fill=2)])
        controller = TraditionalSecureNvmController(make_nvm())
        report = simulate(controller, trace)
        # Second write arrives only after the first completes (+1 instr).
        assert report.makespan_ns >= controller.stats.write_latency.max_ns

    def test_posted_writes_do_not_stall(self):
        config = CoreModelConfig()
        posted = Trace("t", [wr(i, gap=10, fill=i + 1) for i in range(8)])
        persistent = Trace(
            "t", [wr(i, gap=10, persistent=True, fill=i + 1) for i in range(8)]
        )
        r_posted = simulate(TraditionalSecureNvmController(make_nvm()), posted, config)
        r_persistent = simulate(
            TraditionalSecureNvmController(make_nvm()), persistent, config
        )
        assert r_posted.total_cycles < r_persistent.total_cycles
        assert r_posted.ipc > r_persistent.ipc

    def test_read_stall_exposure_scales_cycles(self):
        trace = Trace("t", [wr(0, persistent=True)] + [rd(0, gap=50) for _ in range(10)])
        full = simulate(
            TraditionalSecureNvmController(make_nvm()),
            trace,
            CoreModelConfig(read_stall_exposure=1.0),
        )
        hidden = simulate(
            TraditionalSecureNvmController(make_nvm()),
            trace,
            CoreModelConfig(read_stall_exposure=0.0),
        )
        assert hidden.total_cycles < full.total_cycles
        assert hidden.ipc > full.ipc


class TestIpcArithmetic:
    def test_compute_only_ipc_equals_inverse_cpi(self):
        # With no memory stalls (posted writes only), IPC -> 1 / CPI.
        trace = Trace("t", [wr(i, gap=10_000, fill=i + 1) for i in range(4)])
        report = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        assert report.ipc == pytest.approx(1.0, abs=0.05)

    def test_instructions_counted(self):
        trace = Trace("t", [wr(0, gap=123), rd(0, gap=77)])
        report = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        assert report.instructions == 200


class TestMultiCore:
    def test_cores_progress_independently(self):
        trace = Trace(
            "t",
            [
                wr(0, core=0, gap=10, persistent=True),
                wr(1, core=1, gap=10, persistent=True, fill=2),
                rd(0, core=0, gap=10),
                rd(1, core=1, gap=10),
            ],
            threads=2,
        )
        report = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        assert report.instructions == 40
        # Two cores in parallel finish faster than the serial sum.
        serial = Trace(
            "t",
            [
                wr(0, core=0, gap=10, persistent=True),
                wr(1, core=0, gap=10, persistent=True, fill=2),
                rd(0, core=0, gap=10),
                rd(1, core=0, gap=10),
            ],
        )
        serial_report = simulate(TraditionalSecureNvmController(make_nvm()), serial)
        assert report.makespan_ns < serial_report.makespan_ns

    def test_global_arrival_ordering(self):
        # A later-arriving core-1 request must not be processed before an
        # earlier core-0 request at the same bank: the earlier write claims
        # the bank first.
        nvm = make_nvm()
        controller = TraditionalSecureNvmController(nvm)
        banks = nvm.config.organization.total_banks
        trace = Trace(
            "t",
            [
                wr(0, core=0, gap=1),
                wr(banks, core=1, gap=500, fill=2),  # same bank, arrives later
            ],
            threads=2,
        )
        simulate(controller, trace)
        assert controller.stats.write_latency.count == 2


class TestReportContents:
    def test_report_fields(self):
        trace = Trace("workload-x", [wr(0), rd(0)])
        report = simulate(DeWriteController(make_nvm()), trace)
        assert report.workload == "workload-x"
        assert report.controller == "DeWriteController"
        assert report.energy_nj > 0
        assert report.wear.total_line_writes >= 1
        assert report.energy_breakdown["total_nj"] == pytest.approx(report.energy_nj)

    def test_speedup_requires_same_workload(self):
        a = simulate(DeWriteController(make_nvm()), Trace("a", [wr(0)]))
        b = simulate(DeWriteController(make_nvm()), Trace("b", [wr(0)]))
        with pytest.raises(ValueError, match="different workloads"):
            a.speedup_vs(b)

    def test_speedup_of_identical_runs_is_unity(self):
        trace = Trace("t", [wr(i, fill=i + 1) for i in range(10)] + [rd(0)])
        a = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        b = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        speedups = a.speedup_vs(b)
        for value in speedups.values():
            assert value == pytest.approx(1.0)


class TestCoreModelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            CoreModelConfig(clock_ghz=0)
        with pytest.raises(ValueError):
            CoreModelConfig(base_cpi=0)
        with pytest.raises(ValueError):
            CoreModelConfig(read_stall_exposure=1.5)

    def test_conversions(self):
        config = CoreModelConfig(clock_ghz=2.0, base_cpi=1.0)
        assert config.ns_per_instruction == 0.5
        assert config.cycles(100.0) == 200.0
