"""System tests: the serve identities the CI smoke job enforces.

Two equalities are the subsystem's correctness contract:

1. **Serial ≡ parallel.**  The same seeded :class:`ServiceConfig` run
   with ``parallel=1`` and ``parallel=2`` serialises to byte-identical
   JSON — execution order, worker count and transport leave no trace in
   the report.

2. **Sharded service ≡ plain simulation.**  A ``shards=1`` service run's
   merged report equals a direct :func:`simulate` of the same
   synthesized stream: the whole serve stack (job specs, runner, lease
   loop, merge fold) adds exactly nothing to the simulated physics.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import reset_registry
from repro.runner import provider
from repro.serve.service import ServiceConfig, run_service
from repro.workloads.tenants import TenantTrafficConfig

TRAFFIC = TenantTrafficConfig(
    tenants=5000, accesses=3000, seed=11, shared_pool_lines=128
)


def _blob(config: ServiceConfig, **kwargs) -> str:
    reset_registry()
    provider.reset()
    outcome = run_service(config, **kwargs)
    reset_registry()
    provider.reset()
    return json.dumps(outcome.report.to_dict(), sort_keys=True)


class TestServeIdentity:
    def test_serial_and_parallel_reports_are_byte_identical(self):
        config = ServiceConfig(traffic=TRAFFIC, shards=4)
        assert _blob(config, parallel=1) == _blob(config, parallel=2)

    def test_single_shard_service_equals_plain_simulation(self):
        from repro.core.registry import build_controller
        from repro.nvm.config import NvmConfig, NvmOrganization
        from repro.nvm.memory import NvmMainMemory
        from repro.serve.tenants import ShardMap, TenantRegistry
        from repro.system.simulator import simulate
        from repro.workloads.tenants import synthesize_shard_stream
        from repro.workloads.trace import Trace

        config = ServiceConfig(traffic=TRAFFIC, shards=1)
        reset_registry()
        provider.reset()
        outcome = run_service(config)
        reset_registry()
        provider.reset()

        # Re-derive the stream and drive the controller directly, sizing
        # the device exactly as the shard job does.
        shard_map = ShardMap(shards=1, seed=TRAFFIC.seed)
        registry = TenantRegistry(TRAFFIC.lines_per_tenant)
        stream = synthesize_shard_stream(
            TRAFFIC, shard=0, shard_of=shard_map.shard_of, registry=registry
        )
        data_lines = registry.device_lines()
        total_lines = data_lines + data_lines // 4 + 256
        organization = NvmOrganization(
            capacity_bytes=total_lines * TRAFFIC.line_size,
            line_size_bytes=TRAFFIC.line_size,
        )
        nvm = NvmMainMemory(NvmConfig(organization=organization))
        controller = build_controller("dewrite", nvm)
        trace = Trace.from_batch("serve/shard-000", stream.batch)
        direct = simulate(controller, trace)
        reset_registry()

        assert outcome.report.merged == direct
        assert (
            json.dumps(outcome.report.merged.to_dict(), sort_keys=True)
            == json.dumps(direct.to_dict(), sort_keys=True)
        )

    def test_shard_count_is_in_the_job_identity(self):
        # Different shard counts are different experiments: same traffic,
        # disjoint cache keys (no stale cross-topology cache hits).
        from repro.serve.service import shard_spec

        four = ServiceConfig(traffic=TRAFFIC, shards=4)
        eight = ServiceConfig(traffic=TRAFFIC, shards=8)
        assert shard_spec(four, 0).identity != shard_spec(eight, 0).identity

    def test_report_round_trips_through_json(self):
        config = ServiceConfig(traffic=TRAFFIC, shards=2)
        reset_registry()
        provider.reset()
        outcome = run_service(config)
        reset_registry()
        provider.reset()
        from repro.serve.report import ServiceReport

        blob = json.dumps(outcome.report.to_dict(), sort_keys=True)
        clone = ServiceReport.from_dict(json.loads(blob))
        assert json.dumps(clone.to_dict(), sort_keys=True) == blob

    def test_fused_path_holds_in_smoke_config(self):
        config = ServiceConfig(traffic=TRAFFIC, shards=4)
        reset_registry()
        provider.reset()
        outcome = run_service(config)
        fallbacks = outcome.report.fallbacks
        reset_registry()
        provider.reset()
        assert fallbacks == {}, f"shards fell off the fused path: {fallbacks}"


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
