"""Summary-mode reconciliation — the stage accumulator's correctness bar.

The fused kernels feed a :class:`~repro.obs.stages.StageAccumulator`
columnar, per batch, while a :class:`~repro.obs.trace.Tracer` forces the
scalar path and emits one span per stage occurrence.  Both views describe
the same simulated pipeline, so for every registered controller the
summary-mode per-stage (count, total) must equal the aggregation of the
scalar-path trace spans **bit-for-bit**: the kernels record the exact
float expressions the spans imply, and both sides sum left-to-right in
arrival order.

Also pinned here: attaching only a stage accumulator never knocks a
kernel off the fused path (``batch.fallback.*`` stays flat) and never
perturbs the serialised :class:`SimulationReport`.
"""

from __future__ import annotations

import json

import pytest

from repro.core.dewrite import DeWriteController
from repro.core.registry import available_controllers, build_controller
from repro.nvm.memory import NvmMainMemory
from repro.obs.metrics import registry
from repro.obs.stages import StageAccumulator
from repro.obs.timeline import TimelineCollector
from repro.obs.trace import Tracer
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name

CONTROLLERS = sorted(available_controllers())

#: Span names that are not pipeline stages: per-device NVM sub-spans
#: (emitted by the memory model, not the controller pipeline) and the
#: batch envelope.
EXCLUDED_PREFIXES = ("nvm.", "batch")


def single_stream_trace(app: str = "lbm", accesses: int = 500, seed: int = 9):
    trace = generate_trace(profile_by_name(app), accesses, seed=seed)
    assert trace.threads == 1
    return trace


def scalar_span_sums(name: str, trace) -> dict[str, tuple[int, float]]:
    tracer = Tracer(sink=None)
    controller = build_controller(name, NvmMainMemory(), tracer=tracer)
    simulate(controller, trace, batch_size=1024)  # tracer forces scalar driving
    return {
        stage: (len(durations), sum(durations))
        for stage, durations in tracer.stage_durations(clock="sim").items()
        if not stage.startswith(EXCLUDED_PREFIXES)
    }


def summary_mode_sums(name: str, trace) -> dict[str, tuple[int, float]]:
    accumulator = StageAccumulator()
    controller = build_controller(name, NvmMainMemory(), stages=accumulator)
    simulate(controller, trace, batch_size=1024)
    counts = accumulator.counts()
    totals = accumulator.totals()
    return {stage: (counts[stage], totals[stage]) for stage in accumulator.stage_names()}


def fallback_deltas(before: dict[str, float]) -> dict[str, float]:
    snapshot = registry()
    return {
        name: delta
        for name in snapshot.names()
        if name.startswith("batch.fallback.")
        and (delta := snapshot.get(name).value - before.get(name, 0.0))
    }


def fallback_snapshot() -> dict[str, float]:
    return {
        name: registry().get(name).value
        for name in registry().names()
        if name.startswith("batch.fallback.")
    }


class TestReconciliation:
    """Summary totals == grouped scalar span sums, exactly."""

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_single_core_trace_reconciles_bitwise(self, name):
        trace = single_stream_trace("lbm", 500, 9)
        assert summary_mode_sums(name, trace) == scalar_span_sums(name, trace)

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_duplicate_heavy_trace_reconciles_bitwise(self, name):
        # sjeng's zero/duplicate-rich mix exercises the dedup hit/short-
        # circuit branches, whose stage expressions differ from the miss
        # paths (cache-hit spans of zero width, wasted-write crypto).
        trace = single_stream_trace("sjeng", 400, 11)
        assert summary_mode_sums(name, trace) == scalar_span_sums(name, trace)

    def test_stage_name_sets_match_scalar_path(self):
        # No phantom stages from unconditional columnar flushes: a stage
        # the scalar path never records must not appear in summary mode.
        trace = single_stream_trace("lbm", 500, 9)
        for name in CONTROLLERS:
            scalar = set(scalar_span_sums(name, trace))
            summary = set(summary_mode_sums(name, trace))
            assert summary == scalar, name


class TestFusedPathPreserved:
    def test_stages_cause_zero_fallbacks(self):
        trace = single_stream_trace()
        before = fallback_snapshot()
        for name in CONTROLLERS:
            controller = build_controller(
                name, NvmMainMemory(), stages=StageAccumulator()
            )
            simulate(controller, trace, batch_size=1024)
        assert fallback_deltas(before) == {}

    def test_report_byte_identical_with_stages_attached(self):
        trace = single_stream_trace()
        for name in CONTROLLERS:
            plain = simulate(build_controller(name, NvmMainMemory()), trace)
            staged = simulate(
                build_controller(name, NvmMainMemory(), stages=StageAccumulator()),
                trace,
            )
            assert json.dumps(staged.to_dict(), sort_keys=True) == json.dumps(
                plain.to_dict(), sort_keys=True
            ), name


class TestFallbackCounters:
    def test_tracer_fallback_counted(self):
        before = fallback_snapshot()
        controller = build_controller(
            "dewrite", NvmMainMemory(), tracer=Tracer(sink=None)
        )
        simulate(controller, single_stream_trace(), batch_size=1024)
        assert fallback_deltas(before) == {"batch.fallback.tracer": 1.0}

    def test_timeline_fallback_counted(self):
        before = fallback_snapshot()
        controller = build_controller(
            "dewrite", NvmMainMemory(), timeline=TimelineCollector()
        )
        simulate(controller, single_stream_trace(), batch_size=1024)
        assert fallback_deltas(before) == {"batch.fallback.timeline": 1.0}

    def test_multi_stream_fallback_counted(self):
        trace = generate_trace(profile_by_name("canneal"), 400, seed=7)
        assert trace.threads > 1
        before = fallback_snapshot()
        simulate(build_controller("dewrite", NvmMainMemory()), trace, batch_size=1024)
        deltas = fallback_deltas(before)
        assert set(deltas) == {"batch.fallback.multi_stream"}
        assert deltas["batch.fallback.multi_stream"] >= 1.0

    def test_overridden_scalar_fallback_counted(self):
        class Subclassed(DeWriteController):
            def write(self, address, data, arrival_ns):
                return super().write(address, data, arrival_ns)

        before = fallback_snapshot()
        controller = Subclassed(NvmMainMemory())
        simulate(controller, single_stream_trace(), batch_size=1024)
        assert fallback_deltas(before) == {"batch.fallback.overridden_scalar": 1.0}

    def test_scalar_driving_without_fused_kernel_not_counted(self):
        # The base class's own service_batch is not a "fallback" — only a
        # fused kernel bailing out counts.
        before = fallback_snapshot()
        simulate(
            build_controller("dewrite", NvmMainMemory()),
            single_stream_trace(),
            batch_size=None,
        )
        assert fallback_deltas(before) == {}
