"""Scalar-vs-batched equivalence — the batched kernels' hard correctness bar.

Every registered controller must produce a byte-identical
:class:`~repro.system.metrics.SimulationReport` whether a trace is driven
through the scalar ``write()``/``read()`` loop or through
``service_batch`` (at any batch size).  The fused kernels replicate the
scalar float operation order exactly, so the comparison is on the full
serialised report — latencies, energy, wear, IPC — not on rounded values.
"""

from __future__ import annotations

import json

import pytest

from repro.core.registry import available_controllers, build_controller
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name
from repro.workloads.trace import MemoryAccess, Trace

LINE = 256
CONTROLLERS = sorted(available_controllers())


def make_nvm(lines: int = 64 * 1024) -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=lines * LINE))
    )


def canonical(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def assert_equivalent(
    name: str, trace: Trace, batch_sizes=(1, 7, 1024), lines: int = 64 * 1024
) -> None:
    scalar = canonical(
        simulate(build_controller(name, make_nvm(lines)), trace, batch_size=None)
    )
    for size in batch_sizes:
        batched = canonical(
            simulate(build_controller(name, make_nvm(lines)), trace, batch_size=size)
        )
        assert batched == scalar, f"{name} batch_size={size} diverges from scalar"


def wr(address, core=0, gap=10, persistent=False, fill=1):
    return MemoryAccess(
        core=core,
        op="write",
        address=address,
        data=bytes([fill % 256]) * LINE,
        gap_instructions=gap,
        persistent=persistent,
    )


def rd(address, core=0, gap=10):
    return MemoryAccess(core=core, op="read", address=address, gap_instructions=gap)


class TestRandomTraces:
    """Property: byte-identical reports on generated traces."""

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_single_core_trace(self, name):
        # lbm is single-threaded, so the fused single-stream kernels engage.
        trace = generate_trace(profile_by_name("lbm"), 600, seed=3)
        assert_equivalent(name, trace)

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_duplicate_heavy_trace(self, name):
        # sjeng's zero/duplicate-rich mix exercises the dedup hit paths.
        trace = generate_trace(profile_by_name("sjeng"), 400, seed=11)
        assert_equivalent(name, trace, batch_sizes=(1, 64))


class TestEdgeCases:
    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_empty_trace(self, name):
        assert_equivalent(name, Trace("empty", []), batch_sizes=(1, 1024))

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_single_access_trace(self, name):
        assert_equivalent(name, Trace("one", [wr(0, persistent=True)]), batch_sizes=(1, 1024))

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_bank_conflict_burst(self, name):
        # Every access lands on bank 0: addresses stride by total_banks, so
        # the queueing/backlog arithmetic is exercised under contention.
        stride = make_nvm().config.organization.total_banks
        accesses = []
        for i in range(48):
            accesses.append(wr(i * stride, gap=1, persistent=i % 3 == 0, fill=i % 5))
            accesses.append(rd(i * stride, gap=1))
        assert_equivalent(name, Trace("conflict", accesses), batch_sizes=(1, 16, 1024))

    @pytest.mark.parametrize("name", CONTROLLERS)
    def test_multi_core_trace_falls_back(self, name):
        # canneal runs 4 threads; the fused kernels only handle one active
        # stream, so this exercises the generic scalar-driving fallback.
        trace = generate_trace(profile_by_name("canneal"), 400, seed=7)
        assert trace.threads > 1
        assert_equivalent(name, trace, batch_sizes=(1, 64), lines=256 * 1024)
