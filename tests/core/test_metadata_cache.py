"""Metadata cache: LRU, write-back, prefetch blocks, probe, flush."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.metadata_cache import MetadataCache


class TestBasicBehaviour:
    def test_first_access_misses_then_hits(self):
        cache = MetadataCache("t", capacity_blocks=4)
        assert cache.access(1, write=False).hit is False
        assert cache.access(1, write=False).hit is True
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_prefetch_block_sharing(self):
        cache = MetadataCache("t", capacity_blocks=4, entries_per_block=16)
        cache.access(0, write=False)
        # Entries 1..15 share block 0: all hits.
        for entry in range(1, 16):
            assert cache.access(entry, write=False).hit is True
        assert cache.access(16, write=False).hit is False

    def test_block_of(self):
        cache = MetadataCache("t", capacity_blocks=4, entries_per_block=16)
        assert cache.block_of(0) == 0
        assert cache.block_of(15) == 0
        assert cache.block_of(16) == 1

    def test_probe_has_no_side_effects(self):
        cache = MetadataCache("t", capacity_blocks=4)
        assert cache.probe(1) is False
        assert cache.hits == 0 and cache.misses == 0
        cache.access(1, write=False)
        assert cache.probe(1) is True
        assert cache.hits == 0


class TestLruEviction:
    def test_lru_victim(self):
        cache = MetadataCache("t", capacity_blocks=2)
        cache.access(0, write=False)
        cache.access(1, write=False)
        cache.access(0, write=False)  # 1 is now LRU
        cache.access(2, write=False)  # evicts 1
        assert cache.probe(0) is True
        assert cache.probe(1) is False
        assert cache.probe(2) is True

    def test_clean_eviction_costs_nothing(self):
        cache = MetadataCache("t", capacity_blocks=1)
        cache.access(0, write=False)
        result = cache.access(1, write=False)
        assert result.evicted_dirty_block is None
        assert cache.writebacks == 0

    def test_dirty_eviction_reports_writeback(self):
        cache = MetadataCache("t", capacity_blocks=1)
        cache.access(0, write=True)
        result = cache.access(1, write=False)
        assert result.evicted_dirty_block == 0
        assert cache.writebacks == 1

    def test_write_hit_marks_dirty(self):
        cache = MetadataCache("t", capacity_blocks=1)
        cache.access(0, write=False)
        cache.access(0, write=True)  # hit, but dirties the block
        result = cache.access(1, write=False)
        assert result.evicted_dirty_block == 0

    def test_capacity_respected(self):
        cache = MetadataCache("t", capacity_blocks=3)
        for block in range(10):
            cache.access(block, write=False)
        assert cache.resident_blocks == 3


class TestDegenerateCache:
    def test_zero_capacity_always_misses(self):
        cache = MetadataCache("t", capacity_blocks=0)
        cache.access(0, write=False)
        assert cache.access(0, write=False).hit is False
        assert cache.resident_blocks == 0

    def test_zero_capacity_write_goes_straight_out(self):
        cache = MetadataCache("t", capacity_blocks=0)
        result = cache.access(0, write=True)
        assert result.evicted_dirty_block == 0
        assert cache.writebacks == 1


class TestFlush:
    def test_flush_returns_dirty_blocks_only(self):
        cache = MetadataCache("t", capacity_blocks=4)
        cache.access(0, write=True)
        cache.access(1, write=False)
        cache.access(2, write=True)
        dirty = cache.flush()
        assert sorted(dirty) == [0, 2]
        assert cache.resident_blocks == 0
        assert cache.writebacks == 2

    def test_flush_empty(self):
        assert MetadataCache("t", capacity_blocks=4).flush() == []


class TestValidation:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            MetadataCache("t", capacity_blocks=-1)

    def test_zero_entries_per_block_rejected(self):
        with pytest.raises(ValueError):
            MetadataCache("t", capacity_blocks=1, entries_per_block=0)


class TestPropertyBased:
    @given(st.lists(st.tuples(st.integers(0, 50), st.booleans()), max_size=300))
    def test_hit_plus_miss_equals_accesses(self, ops):
        cache = MetadataCache("t", capacity_blocks=4, entries_per_block=4)
        for entry, write in ops:
            cache.access(entry, write)
        assert cache.hits + cache.misses == len(ops)
        assert cache.resident_blocks <= 4

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    def test_working_set_within_capacity_never_evicts(self, entries):
        cache = MetadataCache("t", capacity_blocks=4, entries_per_block=1)
        evictions = 0
        for entry in entries:
            if cache.access(entry, write=True).evicted_dirty_block is not None:
                evictions += 1
        assert evictions == 0
