"""DedupIndex: state transitions, invariants, colocation, layout.

Includes a hypothesis model-based test driving random duplicate/unique
transitions against a reference model of logical memory.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tables import (
    DedupIndex,
    DedupIndexError,
    MetadataLayout,
    MetadataTouch,
)


def make_index(lines: int = 1024, cap: int = 255) -> DedupIndex:
    return DedupIndex(total_lines=lines, reference_cap=cap)


def sink() -> list[MetadataTouch]:
    return []


class TestUniqueWrites:
    def test_first_write_lands_in_own_slot(self):
        index = make_index()
        dest = index.apply_unique(5, crc=0xAB, touches=sink())
        assert dest == 5
        assert index.locate(5, sink()) == 5
        assert index.content_crc(5) == 0xAB
        assert index.reference_of(5) == 1
        index.check_invariants()

    def test_rewrite_in_place(self):
        index = make_index()
        index.apply_unique(5, crc=1, touches=sink())
        dest = index.apply_unique(5, crc=2, touches=sink())
        assert dest == 5
        assert index.content_crc(5) == 2
        assert index.candidates(1) == []
        index.check_invariants()

    def test_relocation_when_own_slot_referenced(self):
        index = make_index()
        index.apply_unique(5, crc=1, touches=sink())
        index.apply_duplicate(6, target=5, touches=sink())  # 6 references line 5
        dest = index.apply_unique(5, crc=2, touches=sink())
        # 5's own slot still holds the data 6 references; new data relocated.
        assert dest != 5
        assert index.content_crc(5) == 1
        assert index.locate(5, sink()) == dest
        assert index.locate(6, sink()) == 5
        assert index.relocations == 1
        index.check_invariants()

    def test_touches_recorded(self):
        index = make_index()
        touches = sink()
        index.apply_unique(5, crc=1, touches=touches)
        tables = {t.table for t in touches}
        assert {"inverted_hash", "hash_table", "address_map", "fsm"} <= tables

    def test_fresh_insert_flagged(self):
        index = make_index()
        touches = sink()
        index.apply_unique(5, crc=1, touches=touches)
        hash_touches = [t for t in touches if t.table == "hash_table" and t.write]
        assert any(t.insert for t in hash_touches)


class TestDuplicateWrites:
    def test_duplicate_maps_and_references(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())
        assert index.locate(2, sink()) == 1
        assert index.reference_of(1) == 2
        index.check_invariants()

    def test_silent_duplicate_is_noop(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())  # rewrite, same map
        assert index.reference_of(1) == 2
        index.check_invariants()

    def test_duplicate_frees_old_exclusive_line(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_unique(2, crc=8, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())
        assert not index.holds_data(2)  # old content freed
        assert index.candidates(8) == []
        index.check_invariants()

    def test_duplicate_to_empty_target_rejected(self):
        index = make_index()
        with pytest.raises(DedupIndexError, match="holds no data"):
            index.apply_duplicate(2, target=1, touches=sink())

    def test_duplicate_to_saturated_target_rejected(self):
        index = make_index(cap=2)
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())  # ref = 2 = cap
        with pytest.raises(DedupIndexError, match="saturated"):
            index.apply_duplicate(3, target=1, touches=sink())

    def test_remap_releases_previous_target(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_unique(2, crc=8, touches=sink())
        index.apply_duplicate(3, target=1, touches=sink())
        index.apply_duplicate(3, target=2, touches=sink())
        assert index.reference_of(1) == 1
        assert index.reference_of(2) == 2
        index.check_invariants()


class TestReferenceSaturation:
    def test_saturated_entries_pin(self):
        index = make_index(cap=3)
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())
        index.apply_duplicate(3, target=1, touches=sink())  # ref = 3 = cap
        assert index.pinned_lines == 1
        # Releasing a reference from a pinned line does not decrement.
        index.apply_unique(2, crc=9, touches=sink())
        assert index.reference_of(1) == 3
        index.check_invariants()

    def test_free_line_recycled(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_unique(2, crc=8, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())  # frees line 2
        index.apply_duplicate(1, target=1, touches=sink())
        # A relocation should reuse the freed line 2 eventually.
        index.apply_duplicate(3, target=1, touches=sink())
        dest = index.apply_unique(4, crc=10, touches=sink())
        assert dest == 4  # own slot free; no relocation needed
        index.check_invariants()


class TestCounters:
    def test_counters_monotonic_per_physical_line(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        first = index.bump_counter(1, sink())
        second = index.bump_counter(1, sink())
        assert second == first + 1
        assert index.peek_counter(1) == second

    def test_counter_survives_free_and_realloc(self):
        # Pad-uniqueness: the counter of a physical line never resets.
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.bump_counter(1, sink())
        index.apply_unique(2, crc=8, touches=sink())
        index.apply_duplicate(1, target=2, touches=sink())  # frees line 1
        assert index.peek_counter(1) == 1

    def test_counter_slot_non_dedup_line(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        assert index.counter_slot(1) == "address_map"

    def test_counter_slot_dedup_line(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())
        # Logical 2 is deduplicated; physical 2 holds nothing.
        assert index.counter_slot(2) == "inverted_hash"

    def test_counter_slot_overflow(self):
        # Logical X deduplicated AND physical X reallocated: both slots busy.
        index = make_index(lines=8)
        index.apply_unique(0, crc=1, touches=sink())
        index.apply_duplicate(1, target=0, touches=sink())  # frees line 1? never held
        # Occupy physical line 1 via relocation: make line 1's slot the
        # allocation target by filling 0's chain.
        index.apply_unique(1, crc=2, touches=sink())  # 1 stores own data again
        index.apply_duplicate(2, target=1, touches=sink())  # 2 -> 1
        index.apply_unique(1, crc=3, touches=sink())  # 1 relocates (slot kept for 2)
        reloc = index.locate(1, sink())
        assert reloc != 1
        # Now: logical 1 dedup'd/relocated, physical 1 holds data for 2.
        assert index.counter_slot(1) == "overflow"
        assert index.overflow_counters() >= 0
        index.check_invariants()


class TestAllocation:
    def test_device_full(self):
        index = make_index(lines=4)
        for logical in range(4):
            index.apply_unique(logical, crc=logical + 10, touches=sink())
        # All four lines hold data referenced by their own logicals; force
        # relocations until the allocator runs dry.
        index.apply_duplicate(1, target=0, touches=sink())  # frees 1
        dest = index.apply_unique(2, crc=99, touches=sink())
        assert dest == 2  # rewrite in place

    def test_fresh_allocations_descend_from_top(self):
        index = make_index(lines=100)
        index.apply_unique(0, crc=1, touches=sink())
        index.apply_duplicate(1, target=0, touches=sink())
        index.apply_unique(1, crc=2, touches=sink())  # own slot free -> in place
        index.apply_duplicate(2, target=0, touches=sink())
        index.apply_unique(0, crc=3, touches=sink())  # 0 referenced by 2? no...
        index.check_invariants()


class TestHistogramAndStats:
    def test_reference_histogram(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_unique(2, crc=8, touches=sink())
        index.apply_duplicate(3, target=1, touches=sink())
        histogram = index.reference_histogram()
        assert histogram[1] == 1
        assert histogram[2] == 1

    def test_live_and_dedup_counts(self):
        index = make_index()
        index.apply_unique(1, crc=7, touches=sink())
        index.apply_duplicate(2, target=1, touches=sink())
        assert index.live_lines() == 1
        assert index.deduplicated_logicals() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DedupIndex(total_lines=0)
        with pytest.raises(ValueError):
            DedupIndex(total_lines=10, reference_cap=0)


class TestModelBased:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 5), st.booleans()),
        max_size=120,
    ))
    def test_random_transitions_preserve_invariants(self, operations):
        """Random unique/duplicate writes against a logical-content model."""
        index = make_index(lines=256)
        model: dict[int, int] = {}  # logical -> content id
        next_content = 100

        for logical, content_choice, make_unique in operations:
            if make_unique or not model:
                next_content += 1
                crc = next_content
                index.apply_unique(logical, crc=crc, touches=sink())
                model[logical] = crc
            else:
                # Duplicate an existing logical's content.
                source = sorted(model)[content_choice % len(model)]
                crc = model[source]
                target = index.locate(source, sink())
                if target is None or index.reference_of(target) >= 255:
                    continue
                if index.content_crc(target) != crc:
                    continue
                index.apply_duplicate(logical, target=target, touches=sink())
                model[logical] = crc
            index.check_invariants()

        # Every written logical resolves to a line holding its content.
        for logical, crc in model.items():
            physical = index.locate(logical, sink())
            assert physical is not None
            assert index.content_crc(physical) == crc


class TestMetadataLayout:
    def make_layout(self) -> MetadataLayout:
        return MetadataLayout(total_lines=1_000_000, line_size_bytes=256)

    def test_tables_fit_and_leave_data_region(self):
        layout = self.make_layout()
        assert layout.data_lines + layout.metadata_lines == 1_000_000
        assert layout.data_lines > 0.9 * 1_000_000

    def test_table_regions_disjoint(self):
        layout = self.make_layout()
        regions = []
        for table in ("address_map", "inverted_hash", "hash_table", "fsm"):
            base = layout.table_base(table)
            regions.append((base, base + layout.table_lines[table]))
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert end <= start

    def test_nvm_line_within_region(self):
        layout = self.make_layout()
        for table in ("address_map", "inverted_hash", "hash_table", "fsm"):
            base = layout.table_base(table)
            size = layout.table_lines[table]
            for block in (0, 1, 10**9):
                line = layout.nvm_line_for(table, block)
                assert base <= line < base + size

    def test_metadata_fraction_near_paper_estimate(self):
        layout = self.make_layout()
        fraction = layout.metadata_lines / 1_000_000
        # (33 + 33 + 72 + 1) bits / 2048 bits ~ 6.8 %.
        assert 0.05 <= fraction <= 0.08

    def test_too_small_device_rejected(self):
        layout = MetadataLayout(total_lines=3, line_size_bytes=256)
        with pytest.raises(ValueError, match="too small"):
            _ = layout.data_lines
