"""DeWrite configuration: validation and derived metadata arithmetic."""

from __future__ import annotations

import pytest

from repro.core.config import DeWriteConfig, MetadataCacheConfig


class TestDefaults:
    def test_paper_constants(self):
        config = DeWriteConfig()
        assert config.line_size_bytes == 256
        assert config.counter_bits == 28
        assert config.reference_cap == 255
        assert config.history_window == 3
        assert config.crc_latency_ns == 15.0
        assert config.aes_latency_ns == 96.0

    def test_features_on_by_default(self):
        config = DeWriteConfig()
        assert config.enable_prediction
        assert config.enable_pna
        assert config.enable_parallel_encryption
        assert config.enable_colocation


class TestValidation:
    def test_zero_history_window_rejected(self):
        with pytest.raises(ValueError):
            DeWriteConfig(history_window=0)

    @pytest.mark.parametrize("cap", [0, 256, 1000])
    def test_reference_cap_bounds(self, cap):
        with pytest.raises(ValueError):
            DeWriteConfig(reference_cap=cap)

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            DeWriteConfig(line_size_bytes=100)

    def test_unknown_fingerprint_rejected(self):
        with pytest.raises(ValueError, match="fingerprint"):
            DeWriteConfig(fingerprint="sha256")

    def test_trusted_crc_rejected(self):
        with pytest.raises(ValueError, match="collide"):
            DeWriteConfig(trust_fingerprint=True)

    def test_trusted_sha1_allowed(self):
        DeWriteConfig(fingerprint="sha1", trust_fingerprint=True)


class TestFingerprintLatency:
    def test_crc(self):
        assert DeWriteConfig().fingerprint_latency_ns == 15.0

    def test_sha1(self):
        assert DeWriteConfig(fingerprint="sha1").fingerprint_latency_ns == 321.0

    def test_md5(self):
        assert DeWriteConfig(fingerprint="md5").fingerprint_latency_ns == 312.0


class TestMetadataArithmetic:
    def test_overhead_near_paper_value(self):
        # (33 + 33 + 72 + 1) bits / 2048 = 6.8 %, the paper rounds to 6.25 %.
        fraction = DeWriteConfig().metadata_overhead_fraction()
        assert 0.05 <= fraction <= 0.08

    def test_colocation_saves_counter_bits(self):
        with_colocation = DeWriteConfig().metadata_bits_per_line()
        without = DeWriteConfig(enable_colocation=False).metadata_bits_per_line()
        assert without - with_colocation == 28.0

    def test_cache_capacity_arithmetic(self):
        cache = MetadataCacheConfig()
        assert cache.hash_cache_entries == 512 * 1024 * 8 // 72
        assert cache.address_map_cache_blocks == 512 * 1024 * 8 // (33 * 256)
        assert cache.fsm_cache_blocks == 128 * 1024 * 8 // 256

    def test_paper_cache_budget_under_2mb(self):
        cache = MetadataCacheConfig()
        total = (
            cache.hash_cache_bytes
            + cache.address_map_cache_bytes
            + cache.inverted_hash_cache_bytes
            + cache.fsm_cache_bytes
        )
        assert total == 1664 * 1024  # the paper's 1664 KB < 2 MB

    def test_bad_prefetch_rejected(self):
        with pytest.raises(ValueError):
            MetadataCacheConfig(prefetch_entries=0)
