"""Dedup engine and metadata timing layer: detection paths and accounting."""

from __future__ import annotations

import pytest

from repro.core.config import DeWriteConfig, MetadataCacheConfig
from repro.core.dewrite import DeWriteController
from repro.hashes.crc32 import line_fingerprint
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(**config_kwargs) -> DeWriteController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return DeWriteController(nvm, config=DeWriteConfig(**config_kwargs))


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestDetectionPaths:
    def test_fresh_line_is_non_duplicate(self):
        controller = make_controller()
        data = line(1)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 0.0, predicted_duplicate=True
        )
        assert detection.duplicate_target is None
        assert detection.verify_reads == 0

    def test_duplicate_detected_after_store(self):
        controller = make_controller()
        data = line(1)
        controller.write(0, data, 0.0)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 10_000.0, predicted_duplicate=True
        )
        assert detection.duplicate_target == 0
        assert detection.verify_reads == 1

    def test_detection_latency_duplicate_matches_table1(self):
        # 15 ns CRC + 75 ns read + compare (hash entry cached, idle banks).
        controller = make_controller()
        data = line(1)
        controller.write(0, data, 0.0)
        arrival = 100_000.0
        detection = controller.engine.detect(
            data, line_fingerprint(data), arrival, predicted_duplicate=True
        )
        latency = detection.done_ns - arrival
        assert latency == pytest.approx(15 + 75 + 0.5)

    def test_detection_latency_nonduplicate_is_crc_only(self):
        controller = make_controller()
        data = line(2)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 0.0, predicted_duplicate=False
        )
        assert detection.done_ns == pytest.approx(15.0)
        assert detection.pna_skipped

    def test_pna_skips_nvm_query_for_predicted_nondup(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        # Evict hash cache by making a fresh controller state: simulate a
        # miss by probing an uncached fingerprint.
        data = line(9)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 10_000.0, predicted_duplicate=False
        )
        assert detection.pna_skipped
        assert not detection.queried_nvm_hash_table

    def test_predicted_duplicate_pays_nvm_query_on_miss(self):
        controller = make_controller()
        data = line(9)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 0.0, predicted_duplicate=True
        )
        assert detection.queried_nvm_hash_table
        assert not detection.pna_skipped
        # NVM metadata read + direct decrypt on the critical path.
        assert detection.done_ns >= 15 + 75 + 96

    def test_pna_disabled_always_queries(self):
        controller = make_controller(enable_pna=False)
        data = line(9)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 0.0, predicted_duplicate=False
        )
        assert detection.queried_nvm_hash_table


class TestReferenceCapInDetection:
    def test_saturated_entries_skipped(self):
        controller = make_controller(reference_cap=2)
        data = line(3)
        controller.write(0, data, 0.0)
        controller.write(1, data, 1_000.0)  # ref -> 2 (cap)
        detection = controller.engine.detect(
            data, line_fingerprint(data), 100_000.0, predicted_duplicate=True
        )
        assert detection.duplicate_target is None
        assert detection.capped_rejects == 1

    def test_fresh_copy_becomes_new_target(self):
        controller = make_controller(reference_cap=2)
        data = line(3)
        controller.write(0, data, 0.0)
        controller.write(1, data, 1_000.0)  # saturates line 0
        controller.write(2, data, 2_000.0)  # stored as a fresh copy
        detection = controller.engine.detect(
            data, line_fingerprint(data), 100_000.0, predicted_duplicate=True
        )
        assert detection.duplicate_target is not None
        assert detection.duplicate_target != 0


class TestCrcCollisions:
    def test_fingerprint_collision_rejected_by_verify_read(self):
        # Force a collision deterministically: register content A in the
        # index *under B's fingerprint* (as a hardware bit-flip in the hash
        # table would), then detect B.  The verify read must expose the
        # mismatch: collision counted, no false deduplication.
        controller = make_controller()
        data_a = line(1)
        data_b = line(2)
        crc_b = line_fingerprint(data_b)

        touches: list = []
        dest = controller.index.apply_unique(0, crc=crc_b, touches=touches)
        counter = controller.index.bump_counter(dest, touches)
        ciphertext = controller.cme.encrypt(data_a, dest, counter)
        controller.nvm.write(dest, ciphertext, 0.0)

        detection = controller.engine.detect(data_b, crc_b, 10_000.0, predicted_duplicate=True)
        assert detection.duplicate_target is None
        assert detection.collisions == 1
        assert detection.verify_reads == 1

    def test_collision_then_true_duplicate_in_same_chain(self):
        # Chain holds [collision, true duplicate]: detection must keep
        # scanning past the collision and land on the real match.
        controller = make_controller()
        data_real = line(5)
        crc_real = line_fingerprint(data_real)

        touches: list = []
        # Entry inserted first: the genuine content (checked last — the
        # engine scans newest-first).
        real_dest = controller.index.apply_unique(0, crc=crc_real, touches=touches)
        real_counter = controller.index.bump_counter(real_dest, touches)
        controller.nvm.write(
            real_dest, controller.cme.encrypt(data_real, real_dest, real_counter), 0.0
        )
        # Entry inserted second: wrong content filed under crc_real — the
        # newest entry, hence verified first, hence the collision.
        fake_dest = controller.index.apply_unique(1, crc=crc_real, touches=touches)
        fake_counter = controller.index.bump_counter(fake_dest, touches)
        controller.nvm.write(
            fake_dest, controller.cme.encrypt(line(6), fake_dest, fake_counter), 1_000.0
        )

        detection = controller.engine.detect(
            data_real, crc_real, 100_000.0, predicted_duplicate=True
        )
        assert detection.duplicate_target == real_dest
        assert detection.collisions == 1
        assert detection.verify_reads == 2


class TestTruthOracle:
    def test_truth_matches_detection(self):
        controller = make_controller()
        data = line(5)
        controller.write(0, data, 0.0)
        assert controller.engine.truth_has_duplicate(data, line_fingerprint(data))
        other = line(6)
        assert not controller.engine.truth_has_duplicate(other, line_fingerprint(other))


class TestMetadataSystem:
    def small(self) -> DeWriteController:
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        config = DeWriteConfig(
            metadata_cache=MetadataCacheConfig(
                hash_cache_bytes=1024,
                address_map_cache_bytes=1024,
                inverted_hash_cache_bytes=1024,
                fsm_cache_bytes=512,
                prefetch_entries=8,
            )
        )
        return DeWriteController(nvm, config=config)

    def test_blocking_miss_adds_latency(self):
        controller = self.small()
        extra = controller.metadata.access("address_map", 0, False, 0.0, blocking=True)
        assert extra >= 75 + 96  # NVM read + metadata decrypt

    def test_hit_is_free(self):
        controller = self.small()
        controller.metadata.access("address_map", 0, False, 0.0, blocking=True)
        assert controller.metadata.access("address_map", 0, False, 0.0, blocking=True) == 0.0

    def test_posted_miss_adds_no_latency_but_reads_nvm(self):
        controller = self.small()
        before = controller.nvm.reads
        extra = controller.metadata.access("fsm", 0, False, 0.0, blocking=False)
        assert extra == 0.0
        assert controller.nvm.reads == before + 1

    def test_insert_skips_fetch(self):
        controller = self.small()
        before = controller.nvm.reads
        extra = controller.metadata.access(
            "hash_table", 123, True, 0.0, blocking=False, fetch_on_miss=False
        )
        assert extra == 0.0
        assert controller.nvm.reads == before

    def test_dirty_evictions_write_nvm(self):
        controller = self.small()
        before = controller.nvm.writes
        # Small cache: stream enough dirty blocks to force evictions.
        for entry in range(0, 10_000, 8):
            controller.metadata.access("address_map", entry, True, 0.0, blocking=False)
        assert controller.nvm.writes > before
        assert controller.metadata.metadata_writebacks > 0

    def test_flush_writes_all_dirty(self):
        controller = self.small()
        controller.metadata.access("fsm", 0, True, 0.0, blocking=False)
        flushed = controller.metadata.flush(0.0)
        assert flushed >= 1

    def test_hit_rates_reported_per_table(self):
        controller = self.small()
        controller.metadata.access("fsm", 0, False, 0.0, blocking=False)
        rates = controller.metadata.hit_rates()
        assert set(rates) == {"hash_table", "address_map", "inverted_hash", "fsm"}
