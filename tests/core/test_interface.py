"""MemoryController observability API: attach_observers and its shims."""

from __future__ import annotations

import pytest

from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.obs.timeline import TimelineCollector
from repro.obs.trace import Tracer

LINE = 256


def make_controller() -> DeWriteController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return DeWriteController(nvm)


class TestAttachObservers:
    def test_attaches_both_streams(self):
        controller = make_controller()
        tracer = Tracer()
        timeline = TimelineCollector()
        controller.attach_observers(tracer=tracer, timeline=timeline)
        assert controller.tracer is tracer
        assert controller.nvm.tracer is tracer
        assert controller.timeline is timeline
        assert controller.nvm.timeline is timeline

    def test_omitted_argument_leaves_stream_unchanged(self):
        controller = make_controller()
        tracer = Tracer()
        controller.attach_observers(tracer=tracer)
        before = controller.timeline
        controller.attach_observers(timeline=TimelineCollector())
        assert controller.tracer is tracer  # untouched by the second call
        assert controller.timeline is not before

    def test_deprecated_attach_tracer_warns_and_works(self):
        controller = make_controller()
        tracer = Tracer()
        with pytest.warns(DeprecationWarning, match="attach_observers"):
            controller.attach_tracer(tracer)
        assert controller.tracer is tracer
        assert controller.nvm.tracer is tracer

    def test_deprecated_attach_timeline_warns_and_works(self):
        controller = make_controller()
        timeline = TimelineCollector()
        with pytest.warns(DeprecationWarning, match="attach_observers"):
            controller.attach_timeline(timeline)
        assert controller.timeline is timeline
        assert controller.nvm.timeline is timeline
