"""DeWrite controller: functional correctness, dedup behaviour, timing paths.

The model-based test at the bottom is the repository's strongest invariant:
the controller, with deduplication, relocation, encryption and metadata
caching all active, must be indistinguishable from a plain dictionary.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import DeWriteConfig
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(mode: str = "predictive", **config_kwargs) -> DeWriteController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return DeWriteController(nvm, config=DeWriteConfig(**config_kwargs), mode=mode)


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestFunctionalMemory:
    def test_read_your_write(self):
        controller = make_controller()
        data = line(1)
        controller.write(0, data, 0.0)
        assert controller.read(0, 1_000.0).data == data

    def test_unwritten_reads_zero(self):
        controller = make_controller()
        assert controller.read(42, 0.0).data == bytes(LINE)

    def test_overwrite_visible(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(0, line(2), 1_000.0)
        assert controller.read(0, 2_000.0).data == line(2)

    def test_deduplicated_line_reads_back(self):
        controller = make_controller()
        data = line(7)
        controller.write(0, data, 0.0)
        outcome = controller.write(1, data, 1_000.0)
        assert outcome.deduplicated
        assert controller.read(1, 2_000.0).data == data
        assert controller.stats.reads_redirected >= 1

    def test_dedup_source_overwrite_preserves_sharers(self):
        # 1 dedups to 0; overwriting 0 must not corrupt 1's data.
        controller = make_controller()
        shared = line(7)
        controller.write(0, shared, 0.0)
        controller.write(1, shared, 1_000.0)
        controller.write(0, line(8), 2_000.0)
        assert controller.read(0, 3_000.0).data == line(8)
        assert controller.read(1, 3_500.0).data == shared
        controller.check_invariants()

    def test_data_stored_encrypted(self):
        controller = make_controller()
        data = line(9)
        controller.write(0, data, 0.0)
        physical = controller.index.physical_of(0)
        assert controller.nvm.peek(physical) != data  # ciphertext at rest

    def test_wrong_line_size_rejected(self):
        controller = make_controller()
        with pytest.raises(ValueError):
            controller.write(0, b"short", 0.0)

    def test_out_of_range_address_rejected(self):
        controller = make_controller()
        with pytest.raises(IndexError):
            controller.write(controller.layout.data_lines, line(0), 0.0)
        with pytest.raises(IndexError):
            controller.read(-1, 0.0)


class TestDeduplicationBehaviour:
    def test_duplicate_write_eliminates_nvm_write(self):
        controller = make_controller()
        controller.write(0, line(3), 0.0)
        writes_before = controller.nvm.writes
        outcome = controller.write(1, line(3), 10_000.0)
        assert outcome.deduplicated
        assert controller.nvm.writes == writes_before  # no array write

    def test_duplicate_latency_below_write_latency(self):
        controller = make_controller()
        controller.write(0, line(3), 0.0)
        controller.write(1, line(3), 10_000.0)  # warm the predictor
        controller.write(2, line(3), 20_000.0)
        outcome = controller.write(3, line(3), 30_000.0)
        assert outcome.deduplicated
        # Table Ib: ~91 ns vs a 300 ns write (+ AES in the baseline).
        assert outcome.latency_ns < 150.0

    def test_silent_store_detected(self):
        controller = make_controller()
        controller.write(0, line(3), 0.0)
        outcome = controller.write(0, line(3), 10_000.0)
        assert outcome.deduplicated

    def test_stats_track_outcomes(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(1, line(1), 10_000.0)
        controller.write(2, line(2), 20_000.0)
        stats = controller.stats
        assert stats.writes_requested == 3
        assert stats.writes_deduplicated == 1
        assert stats.writes_stored == 2
        assert stats.write_reduction == pytest.approx(1 / 3)

    def test_write_reduction_zero_when_all_unique(self):
        controller = make_controller()
        for i in range(10):
            controller.write(i, line(i + 1), i * 10_000.0)
        assert controller.stats.write_reduction == 0.0


class TestIntegrationModes:
    def test_invalid_mode_rejected(self):
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        with pytest.raises(ValueError, match="mode"):
            DeWriteController(nvm, mode="bogus")

    def test_direct_mode_serialises_detection_and_encryption(self):
        direct = make_controller(mode="direct")
        parallel = make_controller(mode="parallel")
        # Same unique write on idle systems: direct pays detection + AES
        # serially, parallel overlaps them.
        d = direct.write(0, line(1), 0.0)
        p = parallel.write(0, line(1), 0.0)
        assert d.latency_ns > p.latency_ns

    def test_parallel_mode_wastes_encryption_on_duplicates(self):
        parallel = make_controller(mode="parallel")
        parallel.write(0, line(1), 0.0)
        parallel.write(1, line(1), 10_000.0)
        assert parallel.stats.wasted_encryptions >= 1

    def test_direct_mode_never_wastes_encryption(self):
        direct = make_controller(mode="direct")
        direct.write(0, line(1), 0.0)
        direct.write(1, line(1), 10_000.0)
        direct.write(2, line(1), 20_000.0)
        assert direct.stats.wasted_encryptions == 0

    def test_predictive_energy_between_direct_and_parallel(self):
        rng = random.Random(3)
        traces = []
        base = line(1)
        t = 0.0
        for i in range(300):
            dup = rng.random() < 0.6
            data = base if dup else rng.randbytes(LINE)
            traces.append((i % 64, data, t))
            t += 2_000.0
        energies = {}
        for mode in ("direct", "parallel", "predictive"):
            controller = make_controller(mode=mode)
            for address, data, at in traces:
                controller.write(address, data, at)
            energies[mode] = controller.nvm.energy.aes_nj
        assert energies["direct"] <= energies["predictive"] <= energies["parallel"]


class TestPredictionPlumbing:
    def test_predictor_stats_flow_into_controller_stats(self):
        controller = make_controller()
        for i in range(20):
            controller.write(i % 8, line(1), i * 10_000.0)
        assert controller.stats.predictions == 20
        assert 0.0 <= controller.stats.prediction_accuracy <= 1.0

    def test_prediction_disabled(self):
        controller = make_controller(enable_prediction=False)
        controller.write(0, line(1), 0.0)
        assert controller.stats.predictions == 0

    def test_pna_miss_statistics(self):
        # With PNA on and a cold hash cache, a duplicate predicted non-dup
        # is missed and counted.
        controller = make_controller()
        data = line(5)
        controller.write(0, data, 0.0)
        # Force the hash entry out of the cache by flushing metadata state.
        controller.metadata.caches["hash_table"].flush()
        outcome = controller.write(1, data, 50_000.0)
        assert not outcome.deduplicated
        assert controller.stats.missed_duplicates_pna == 1


class TestMaintenance:
    def test_flush_metadata(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        flushed = controller.flush_metadata(10_000.0)
        assert flushed >= 1
        assert controller.stats.metadata_writebacks >= flushed

    def test_check_invariants_passes_after_traffic(self):
        controller = make_controller()
        rng = random.Random(1)
        t = 0.0
        for _ in range(200):
            address = rng.randrange(64)
            if rng.random() < 0.5:
                controller.write(address, line(rng.randrange(8)), t)
            else:
                controller.read(address, t)
            t += 1_500.0
        controller.check_invariants()

    def test_line_size_mismatch_rejected(self):
        nvm = NvmMainMemory(
            NvmConfig(
                organization=NvmOrganization(
                    capacity_bytes=64 * 1024 * 128, line_size_bytes=128
                )
            )
        )
        with pytest.raises(ValueError, match="line size"):
            DeWriteController(nvm)  # default config says 256


class TestModelBased:
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 31),  # address
                st.sampled_from(["read", "write_dup_pool", "write_fresh"]),
                st.integers(0, 7),  # content selector
            ),
            max_size=80,
        )
    )
    def test_controller_equals_dict_model(self, operations):
        """DeWrite must behave exactly like a dict, whatever the traffic."""
        controller = make_controller()
        model: dict[int, bytes] = {}
        pool = [bytes([v]) * LINE for v in range(8)]
        now = 0.0
        fresh = 0
        for address, op, selector in operations:
            if op == "read":
                outcome = controller.read(address, now)
                assert outcome.data == model.get(address, bytes(LINE))
                now = outcome.complete_ns + 100.0
            else:
                if op == "write_dup_pool":
                    data = pool[selector]
                else:
                    fresh += 1
                    data = fresh.to_bytes(8, "little") + bytes(LINE - 8)
                outcome = controller.write(address, data, now)
                model[address] = data
                now = outcome.complete_ns + 100.0
        controller.check_invariants()
        for address, expected in model.items():
            assert controller.read(address, now).data == expected
