"""Metadata crash-consistency policies (paper §V survey)."""

from __future__ import annotations

import pytest

from repro.core.config import DeWriteConfig
from repro.core.dewrite import DeWriteController
from repro.core.persistence import (
    MetadataPersistenceConfig,
    MetadataPersistencePolicy,
)
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(policy: MetadataPersistencePolicy, **kwargs) -> DeWriteController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    config = DeWriteConfig(
        persistence=MetadataPersistenceConfig(policy=policy, **kwargs)
    )
    return DeWriteController(nvm, config=config)


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


def run_traffic(controller: DeWriteController, writes: int = 100) -> float:
    now = 0.0
    for i in range(writes):
        data = line((i % 5) + 1) if i % 2 else i.to_bytes(8, "little") + bytes(LINE - 8)
        now = controller.write(i % 32, data, now).complete_ns + 200.0
    return now


class TestConfig:
    def test_default_is_battery_backed(self):
        assert (
            DeWriteConfig().persistence.policy
            is MetadataPersistencePolicy.BATTERY_BACKED
        )

    def test_vulnerability_windows(self):
        assert MetadataPersistenceConfig().vulnerability_window_ns() == 0.0
        assert (
            MetadataPersistenceConfig(
                policy=MetadataPersistencePolicy.WRITE_THROUGH
            ).vulnerability_window_ns()
            == 0.0
        )
        periodic = MetadataPersistenceConfig(
            policy=MetadataPersistencePolicy.PERIODIC_WRITEBACK,
            writeback_interval_ns=50_000.0,
        )
        assert periodic.vulnerability_window_ns() == 50_000.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            MetadataPersistenceConfig(writeback_interval_ns=0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            MetadataPersistenceConfig(writeback_interval_ns=-100.0)

    def test_zero_interval_rejected_for_every_policy(self):
        # The interval knob is validated even for policies that never
        # read it, so a bad grid fails loudly at config time.
        for policy in MetadataPersistencePolicy:
            with pytest.raises(ValueError):
                MetadataPersistenceConfig(policy=policy, writeback_interval_ns=0.0)

    def test_window_tracks_interval_exactly(self):
        for interval in (1.0, 4_096.0, 1e9):
            periodic = MetadataPersistenceConfig(
                policy=MetadataPersistencePolicy.PERIODIC_WRITEBACK,
                writeback_interval_ns=interval,
            )
            assert periodic.vulnerability_window_ns() == interval


class TestDurableHorizon:
    def test_lossless_policies_keep_everything(self):
        for policy in (
            MetadataPersistencePolicy.BATTERY_BACKED,
            MetadataPersistencePolicy.WRITE_THROUGH,
        ):
            config = MetadataPersistenceConfig(policy=policy)
            assert config.durable_horizon_ns(0.0) == 0.0
            assert config.durable_horizon_ns(123_456.789) == 123_456.789

    def test_periodic_rounds_down_to_flush_boundary(self):
        periodic = MetadataPersistenceConfig(
            policy=MetadataPersistencePolicy.PERIODIC_WRITEBACK,
            writeback_interval_ns=10_000.0,
        )
        assert periodic.durable_horizon_ns(0.0) == 0.0
        assert periodic.durable_horizon_ns(9_999.9) == 0.0
        assert periodic.durable_horizon_ns(10_000.0) == 10_000.0
        assert periodic.durable_horizon_ns(29_000.0) == 20_000.0

    def test_horizon_never_exceeds_crash_instant(self):
        periodic = MetadataPersistenceConfig(
            policy=MetadataPersistencePolicy.PERIODIC_WRITEBACK,
            writeback_interval_ns=7.0,
        )
        for crash_ns in (0.0, 3.5, 7.0, 700.1, 1e12):
            horizon = periodic.durable_horizon_ns(crash_ns)
            # Never in the future, never more than one interval behind.
            assert 0.0 <= crash_ns - horizon < 7.0

    def test_negative_crash_time_rejected(self):
        with pytest.raises(ValueError):
            MetadataPersistenceConfig().durable_horizon_ns(-1.0)


class TestWriteThrough:
    def test_no_dirty_state_ever(self):
        controller = make_controller(MetadataPersistencePolicy.WRITE_THROUGH)
        run_traffic(controller)
        # A crash at any point loses nothing: no block is dirty.
        for cache in controller.metadata.caches.values():
            assert cache.dirty_blocks() == []
        assert controller.flush_metadata() == 0

    def test_more_metadata_writes_than_battery_backed(self):
        through = make_controller(MetadataPersistencePolicy.WRITE_THROUGH)
        backed = make_controller(MetadataPersistencePolicy.BATTERY_BACKED)
        run_traffic(through)
        run_traffic(backed)
        assert through.metadata.metadata_writebacks > backed.metadata.metadata_writebacks

    def test_still_a_correct_memory(self):
        controller = make_controller(MetadataPersistencePolicy.WRITE_THROUGH)
        controller.write(0, line(1), 0.0)
        controller.write(1, line(1), 10_000.0)
        assert controller.read(1, 20_000.0).data == line(1)


class TestPeriodicWriteback:
    def test_dirty_state_bounded_by_interval(self):
        controller = make_controller(
            MetadataPersistencePolicy.PERIODIC_WRITEBACK,
            writeback_interval_ns=5_000.0,
        )
        run_traffic(controller, writes=200)
        # Flushes happened along the way.
        assert controller.metadata.metadata_writebacks > 0

    def test_fewer_writes_than_write_through(self):
        periodic = make_controller(
            MetadataPersistencePolicy.PERIODIC_WRITEBACK,
            writeback_interval_ns=20_000.0,
        )
        through = make_controller(MetadataPersistencePolicy.WRITE_THROUGH)
        run_traffic(periodic, writes=200)
        run_traffic(through, writes=200)
        assert periodic.metadata.metadata_writebacks < through.metadata.metadata_writebacks


class TestBatteryBacked:
    def test_dirty_state_accumulates_until_flush(self):
        controller = make_controller(MetadataPersistencePolicy.BATTERY_BACKED)
        run_traffic(controller)
        dirty = sum(len(c.dirty_blocks()) for c in controller.metadata.caches.values())
        assert dirty > 0  # the battery is what makes this safe
        flushed = controller.flush_metadata()
        assert flushed == dirty
