"""Colocation accounting: §IV-E1 overheads and live-counter audit."""

from __future__ import annotations

import pytest

from repro.core.colocation import (
    audit_colocation,
    counter_mode_overhead,
    deuce_overhead,
    dewrite_overhead,
)
from repro.core.config import DeWriteConfig
from repro.core.tables import DedupIndex


class TestOverheadArithmetic:
    def test_dewrite_overhead(self):
        overhead = dewrite_overhead()
        assert overhead.scheme == "DeWrite"
        assert 0.05 <= overhead.fraction <= 0.08

    def test_colocation_beats_separate_counters(self):
        assert dewrite_overhead().bits_per_line < dewrite_overhead(
            DeWriteConfig(enable_colocation=False)
        ).bits_per_line

    def test_deuce_overhead_matches_paper(self):
        # 1 flag bit per 16-bit word (6.25 %) + 28-bit counter.
        overhead = deuce_overhead()
        assert overhead.bits_per_line == 2048 / 16 + 28
        assert overhead.fraction == pytest.approx(0.0625 + 28 / 2048)

    def test_dewrite_cheaper_than_deuce(self):
        # The §IV-E1 claim.
        assert dewrite_overhead().fraction < deuce_overhead().fraction

    def test_counter_mode_overhead(self):
        assert counter_mode_overhead().bits_per_line == 28.0


class TestAudit:
    def test_placement_distribution(self):
        index = DedupIndex(total_lines=64)
        touches: list = []
        index.apply_unique(0, crc=1, touches=touches)
        index.bump_counter(0, touches)
        index.apply_duplicate(1, target=0, touches=touches)
        index.bump_counter(1, touches)
        report = audit_colocation(index)
        assert report.total == 2
        assert report.in_address_map_slots == 1  # line 0: not deduplicated
        assert report.in_inverted_hash_slots == 1  # line 1: dedup'd, empty
        assert report.overflow_fraction == 0.0

    def test_empty_index(self):
        report = audit_colocation(DedupIndex(total_lines=8))
        assert report.total == 0
        assert report.overflow_fraction == 0.0
