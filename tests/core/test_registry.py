"""Controller registry: names → controllers, options handling, errors."""

from __future__ import annotations

import pytest

from repro.baselines.i_nvmm import INvmmController
from repro.baselines.out_of_line import OutOfLinePageDedupController
from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.baselines.silent_shredder import SilentShredderController
from repro.core.config import DeWriteConfig
from repro.core.dewrite import DeWriteController
from repro.core.registry import (
    UnknownControllerError,
    available_controllers,
    build_controller,
    register_controller,
)
from repro.nvm.memory import NvmMainMemory


@pytest.fixture()
def nvm() -> NvmMainMemory:
    return NvmMainMemory()


class TestCatalogue:
    def test_every_documented_name_is_registered(self):
        names = set(available_controllers())
        assert {
            "dewrite",
            "direct",
            "parallel",
            "secure-nvm",
            "traditional-dedup",
            "silent-shredder",
            "out-of-line",
            "i-nvmm",
        } <= names

    def test_descriptions_are_nonempty(self):
        for name, description in available_controllers().items():
            assert description, f"controller {name!r} has no description"

    def test_unknown_name_raises_with_catalogue(self, nvm):
        with pytest.raises(UnknownControllerError, match="dewrite"):
            build_controller("no-such-controller", nvm)
        # It is still a KeyError for callers catching broadly.
        with pytest.raises(KeyError):
            build_controller("no-such-controller", nvm)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_controller("dewrite", lambda nvm, **opts: None)


class TestBuilders:
    def test_dewrite_default_is_predictive(self, nvm):
        controller = build_controller("dewrite", nvm)
        assert isinstance(controller, DeWriteController)
        assert controller.mode == "predictive"

    def test_direct_and_parallel_fix_their_mode(self, nvm):
        assert build_controller("direct", nvm).mode == "direct"
        assert build_controller("parallel", NvmMainMemory()).mode == "parallel"

    def test_direct_rejects_mode_override(self, nvm):
        with pytest.raises(ValueError, match="fixes"):
            build_controller("direct", nvm, mode="parallel")

    def test_secure_nvm_and_related_work_types(self, nvm):
        cases = {
            "secure-nvm": TraditionalSecureNvmController,
            "silent-shredder": SilentShredderController,
            "out-of-line": OutOfLinePageDedupController,
            "i-nvmm": INvmmController,
        }
        for name, cls in cases.items():
            assert isinstance(build_controller(name, NvmMainMemory()), cls)

    def test_traditional_dedup_fingerprint_option(self, nvm):
        controller = build_controller("traditional-dedup", nvm, fingerprint="md5")
        assert isinstance(controller, DeWriteController)
        assert controller.config.fingerprint == "md5"

    def test_dewrite_json_shaped_metadata_cache_opts(self, nvm):
        controller = build_controller(
            "dewrite",
            nvm,
            metadata_cache={
                "hash_cache_bytes": 8 * 1024,
                "address_map_cache_bytes": 8 * 1024,
                "inverted_hash_cache_bytes": 8 * 1024,
                "fsm_cache_bytes": 2 * 1024,
                "prefetch_entries": 64,
            },
        )
        assert isinstance(controller, DeWriteController)
        assert controller.config.metadata_cache.hash_cache_bytes == 8 * 1024
        assert controller.config.metadata_cache.prefetch_entries == 64

    def test_config_object_passes_through(self, nvm):
        config = DeWriteConfig(history_window=1)
        controller = build_controller("dewrite", nvm, config=config)
        assert controller.config is config

    def test_config_and_overrides_conflict(self, nvm):
        with pytest.raises(ValueError, match="not both"):
            build_controller(
                "dewrite", nvm, config=DeWriteConfig(), history_window=1
            )
