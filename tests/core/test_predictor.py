"""History-window predictor: majority voting, accuracy accounting."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.predictor import HistoryWindowPredictor


class TestPredictionRule:
    def test_cold_predictor_says_non_duplicate(self):
        assert HistoryWindowPredictor(window=3).predict() is False

    def test_single_bit_window_tracks_last_outcome(self):
        predictor = HistoryWindowPredictor(window=1)
        predictor.record(True)
        assert predictor.predict() is True
        predictor.record(False)
        assert predictor.predict() is False

    def test_majority_of_three(self):
        predictor = HistoryWindowPredictor(window=3)
        for outcome in (True, True, False):
            predictor.record(outcome)
        assert predictor.predict() is True
        predictor.record(False)  # history now T, F, F
        assert predictor.predict() is False

    def test_even_window_tie_resolves_to_most_recent(self):
        predictor = HistoryWindowPredictor(window=2)
        predictor.record(True)
        predictor.record(False)  # one vote each
        assert predictor.predict() is False
        predictor.record(True)
        predictor.record(False)
        assert predictor.predict() is False

    def test_window_length_exposed(self):
        assert HistoryWindowPredictor(window=5).window == 5

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            HistoryWindowPredictor(window=0)

    def test_initial_state_configurable(self):
        assert HistoryWindowPredictor(window=3, initial=True).predict() is True


class TestAccuracyAccounting:
    def test_observe_scores_and_records(self):
        predictor = HistoryWindowPredictor(window=1)
        predictor.observe(False)  # cold prediction False, outcome False: hit
        predictor.observe(False)  # hit
        predictor.observe(True)  # predicted False, outcome True: miss
        assert predictor.predictions == 3
        assert predictor.correct == 2
        assert predictor.accuracy == pytest.approx(2 / 3)

    def test_complete_matches_observe(self):
        a = HistoryWindowPredictor(window=3)
        b = HistoryWindowPredictor(window=3)
        outcomes = [True, True, False, True, False, False, True]
        for outcome in outcomes:
            a.observe(outcome)
            b.complete(b.predict(), outcome)
        assert a.accuracy == b.accuracy
        assert a.predict() == b.predict()

    def test_accuracy_empty(self):
        assert HistoryWindowPredictor().accuracy == 0.0


class TestStatisticalBehaviour:
    def test_perfectly_persistent_stream_is_perfect_after_warmup(self):
        predictor = HistoryWindowPredictor(window=3)
        for _ in range(3):
            predictor.record(True)
        for _ in range(100):
            assert predictor.observe(True)
        assert predictor.accuracy == 1.0

    def test_alternating_stream_defeats_last_value(self):
        predictor = HistoryWindowPredictor(window=1)
        for i in range(100):
            predictor.observe(i % 2 == 0)
        assert predictor.accuracy < 0.1

    def test_majority_window_beats_last_value_on_blippy_stream(self):
        # Long runs with isolated blips: the paper's Fig. 4 structure.
        rng = random.Random(5)
        stream = []
        state = True
        for _ in range(4000):
            if rng.random() < 0.02:
                state = not state
            if rng.random() < 0.06:
                stream.append(not state)  # isolated blip
            else:
                stream.append(state)
        one = HistoryWindowPredictor(window=1)
        three = HistoryWindowPredictor(window=3)
        for outcome in stream:
            one.observe(outcome)
            three.observe(outcome)
        assert three.accuracy > one.accuracy

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_accuracy_always_in_unit_interval(self, outcomes):
        predictor = HistoryWindowPredictor(window=3)
        for outcome in outcomes:
            predictor.observe(outcome)
        assert 0.0 <= predictor.accuracy <= 1.0
        assert predictor.predictions == len(outcomes)
