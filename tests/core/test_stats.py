"""Statistics containers."""

from __future__ import annotations

import pytest

from repro.core.stats import DeWriteStats, LatencyAccumulator


class TestLatencyAccumulator:
    def test_empty(self):
        acc = LatencyAccumulator()
        assert acc.mean_ns == 0.0
        assert acc.count == 0
        assert acc.max_ns == 0.0

    def test_accumulation(self):
        acc = LatencyAccumulator()
        for value in (100.0, 300.0, 200.0):
            acc.add(value)
        assert acc.count == 3
        assert acc.mean_ns == 200.0
        assert acc.max_ns == 300.0
        assert acc.min_ns == 100.0
        assert acc.total_ns == 600.0

    def test_min_tracks_first_sample_even_when_larger_samples_follow(self):
        acc = LatencyAccumulator()
        acc.add(500.0)
        assert acc.min_ns == 500.0
        acc.add(900.0)
        assert acc.min_ns == 500.0
        acc.add(10.0)
        assert acc.min_ns == 10.0

    def test_reset_clears_min(self):
        acc = LatencyAccumulator()
        acc.add(50.0)
        acc.reset()
        assert acc.min_ns == 0.0
        assert acc.count == 0
        # After reset the next sample re-seeds the minimum.
        acc.add(70.0)
        assert acc.min_ns == 70.0

    def test_dict_round_trip_preserves_min(self):
        acc = LatencyAccumulator()
        for value in (42.0, 17.0, 99.0):
            acc.add(value)
        clone = LatencyAccumulator.from_dict(acc.to_dict())
        assert clone.min_ns == 17.0
        assert clone.count == acc.count
        assert clone.total_ns == acc.total_ns

    def test_from_dict_tolerates_snapshots_without_min(self):
        # Cached payloads written before min_ns existed must still load.
        acc = LatencyAccumulator.from_dict(
            {"count": 2, "total_ns": 300.0, "max_ns": 200.0}
        )
        assert acc.min_ns == 0.0
        assert acc.max_ns == 200.0


class TestDeWriteStats:
    def test_write_reduction(self):
        stats = DeWriteStats()
        assert stats.write_reduction == 0.0
        stats.writes_requested = 10
        stats.writes_deduplicated = 4
        assert stats.write_reduction == pytest.approx(0.4)

    def test_prediction_accuracy(self):
        stats = DeWriteStats()
        assert stats.prediction_accuracy == 0.0
        stats.predictions = 8
        stats.correct_predictions = 6
        assert stats.prediction_accuracy == pytest.approx(0.75)

    def test_collision_rate(self):
        stats = DeWriteStats()
        stats.writes_requested = 1000
        stats.crc_collisions = 1
        assert stats.collision_rate == pytest.approx(0.001)

    def test_as_dict_complete_and_consistent(self):
        stats = DeWriteStats()
        stats.writes_requested = 5
        stats.writes_deduplicated = 2
        stats.write_latency.add(100.0)
        snapshot = stats.as_dict()
        assert snapshot["writes_requested"] == 5
        assert snapshot["write_reduction"] == pytest.approx(0.4)
        assert snapshot["mean_write_latency_ns"] == 100.0
        # Every value must be a plain number (JSON-serialisable report).
        assert all(isinstance(v, (int, float)) for v in snapshot.values())
