"""Application profiles: paper anchors and internal consistency."""

from __future__ import annotations

import statistics

import pytest

from repro.workloads.profiles import (
    ALL_PROFILES,
    PARSEC_PROFILES,
    SPEC_PROFILES,
    ApplicationProfile,
    profile_by_name,
)


class TestSuiteComposition:
    def test_twenty_applications(self):
        assert len(ALL_PROFILES) == 20

    def test_twelve_spec_eight_parsec(self):
        # §IV-A: SPEC single-threaded, 8 PARSEC apps with 4 threads.
        assert len(SPEC_PROFILES) == 12
        assert len(PARSEC_PROFILES) == 8

    def test_spec_single_threaded(self):
        assert all(p.threads == 1 for p in SPEC_PROFILES)

    def test_parsec_four_threads(self):
        assert all(p.threads == 4 for p in PARSEC_PROFILES)

    def test_unique_names(self):
        names = [p.name for p in ALL_PROFILES]
        assert len(set(names)) == 20


class TestPaperAnchors:
    def test_average_duplication_near_58_percent(self):
        mean = statistics.fmean(p.dup_ratio for p in ALL_PROFILES)
        assert 0.54 <= mean <= 0.62

    def test_duplication_range_matches_paper(self):
        ratios = [p.dup_ratio for p in ALL_PROFILES]
        assert min(ratios) == pytest.approx(0.186)
        assert max(ratios) == pytest.approx(0.984)

    def test_average_zero_lines_near_16_percent(self):
        mean = statistics.fmean(p.zero_line_fraction for p in ALL_PROFILES)
        assert 0.12 <= mean <= 0.20

    def test_named_heavy_duplicators(self):
        # §II-C / §IV-B name these four as >80 % duplicate apps.
        for name in ("cactusADM", "libquantum", "lbm", "blackscholes"):
            assert profile_by_name(name).dup_ratio > 0.8

    def test_sjeng_zero_dominated(self):
        sjeng = profile_by_name("sjeng")
        assert sjeng.zero_line_fraction >= 0.9 * sjeng.dup_ratio - 0.1
        assert sjeng.zero_line_fraction == max(p.zero_line_fraction for p in ALL_PROFILES)

    def test_bzip2_and_vips_non_dup_heavy(self):
        assert profile_by_name("bzip2").dup_ratio <= 0.25
        assert profile_by_name("vips").dup_ratio <= 0.25

    def test_locality_near_92_percent(self):
        mean = statistics.fmean(p.state_locality for p in ALL_PROFILES)
        assert 0.90 <= mean <= 0.94


class TestValidation:
    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="unknown application"):
            profile_by_name("doom3")

    def test_bad_suite_rejected(self):
        with pytest.raises(ValueError):
            ApplicationProfile(
                name="x", suite="GEEKBENCH", threads=1, dup_ratio=0.5,
                zero_line_fraction=0.1, state_locality=0.9, write_fraction=0.3,
                working_set_lines=1000, mean_gap_instructions=100,
                burst_length_mean=4.0, persist_fraction=0.1, rewrite_dirtiness=0.5,
            )

    def test_out_of_range_ratio_rejected(self):
        with pytest.raises(ValueError):
            ApplicationProfile(
                name="x", suite="SPEC", threads=1, dup_ratio=1.5,
                zero_line_fraction=0.1, state_locality=0.9, write_fraction=0.3,
                working_set_lines=1000, mean_gap_instructions=100,
                burst_length_mean=4.0, persist_fraction=0.1, rewrite_dirtiness=0.5,
            )

    def test_zero_exceeding_dup_rejected(self):
        with pytest.raises(ValueError, match="zero lines"):
            ApplicationProfile(
                name="x", suite="SPEC", threads=1, dup_ratio=0.2,
                zero_line_fraction=0.6, state_locality=0.9, write_fraction=0.3,
                working_set_lines=1000, mean_gap_instructions=100,
                burst_length_mean=4.0, persist_fraction=0.1, rewrite_dirtiness=0.5,
            )
