"""Trace datatypes: validation and views."""

from __future__ import annotations

import pytest

from repro.workloads.trace import MemoryAccess, Trace

LINE = 256


class TestMemoryAccess:
    def test_write_requires_data(self):
        with pytest.raises(ValueError, match="carry line data"):
            MemoryAccess(core=0, op="write", address=0)

    def test_read_rejects_data(self):
        with pytest.raises(ValueError, match="must not carry"):
            MemoryAccess(core=0, op="read", address=0, data=bytes(LINE))

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="op"):
            MemoryAccess(core=0, op="fetch", address=0)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            MemoryAccess(core=0, op="read", address=0, gap_instructions=-1)

    def test_frozen(self):
        access = MemoryAccess(core=0, op="read", address=0)
        with pytest.raises(Exception):
            access.address = 1  # type: ignore[misc]


class TestTrace:
    def make(self) -> Trace:
        return Trace(
            name="t",
            accesses=[
                MemoryAccess(core=0, op="write", address=0, data=bytes(LINE), gap_instructions=10),
                MemoryAccess(core=0, op="read", address=0, gap_instructions=20),
                MemoryAccess(core=1, op="write", address=1, data=b"\x01" * LINE, gap_instructions=30),
            ],
            threads=2,
        )

    def test_len_and_iter(self):
        trace = self.make()
        assert len(trace) == 3
        assert len(list(trace)) == 3

    def test_views(self):
        trace = self.make()
        assert len(trace.writes) == 2
        assert len(trace.reads) == 1
        assert list(trace.as_batch().write_pairs()) == [
            (0, bytes(LINE)),
            (1, b"\x01" * LINE),
        ]

    def test_write_pairs_deprecated_but_equivalent(self):
        trace = self.make()
        with pytest.warns(DeprecationWarning, match="as_batch"):
            legacy = trace.write_pairs()
        assert legacy == list(trace.as_batch().write_pairs())

    def test_total_instructions(self):
        assert self.make().total_instructions == 60
