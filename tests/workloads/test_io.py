"""Trace serialisation round trips."""

from __future__ import annotations

import pytest

from repro.workloads.generator import generate_trace
from repro.workloads.io import load_trace, save_trace
from repro.workloads.profiles import profile_by_name
from repro.workloads.trace import MemoryAccess, Trace

LINE = 256


class TestRoundTrip:
    def test_generated_trace_roundtrips_exactly(self, tmp_path):
        trace = generate_trace(profile_by_name("gcc"), 1_500, seed=5)
        path = tmp_path / "gcc.dwtr"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == trace.name
        assert loaded.threads == trace.threads
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert (a.core, a.op, a.address, a.data, a.gap_instructions, a.persistent) == (
                b.core, b.op, b.address, b.data, b.gap_instructions, b.persistent
            )

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.dwtr"
        save_trace(Trace("empty", []), path)
        loaded = load_trace(path)
        assert loaded.name == "empty"
        assert len(loaded) == 0

    def test_unicode_name(self, tmp_path):
        path = tmp_path / "t.dwtr"
        save_trace(Trace("трасса-β", []), path)
        assert load_trace(path).name == "трасса-β"


class TestValidation:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.dwtr"
        path.write_bytes(b"NOPE" + bytes(32))
        with pytest.raises(ValueError, match="bad magic"):
            load_trace(path)

    def test_wrong_payload_size_rejected(self, tmp_path):
        trace = Trace(
            "bad",
            [MemoryAccess(core=0, op="write", address=0, data=b"\x01" * 128)],
        )
        with pytest.raises(ValueError, match="payload"):
            save_trace(trace, tmp_path / "bad.dwtr", line_size_bytes=256)

    def test_custom_line_size(self, tmp_path):
        trace = Trace(
            "small",
            [MemoryAccess(core=0, op="write", address=3, data=b"\x07" * 64, persistent=True)],
        )
        path = tmp_path / "small.dwtr"
        save_trace(trace, path, line_size_bytes=64)
        loaded = load_trace(path)
        assert loaded.accesses[0].data == b"\x07" * 64
        assert loaded.accesses[0].persistent
