"""Multi-tenant traffic synthesis: determinism, routing partition, admission."""

from __future__ import annotations

import pytest

from repro.serve.tenants import ShardMap, TenantRegistry
from repro.workloads.batch import OP_WRITE
from repro.workloads.tenants import (
    TenantTrafficConfig,
    mix01,
    mix64,
    synthesize_shard_stream,
    tenant_line,
    zipf_rank,
)

CFG = TenantTrafficConfig(tenants=2000, accesses=1500, seed=13)


def _stream(config: TenantTrafficConfig, shards: int, shard: int, **kwargs):
    shard_map = ShardMap(shards=shards, seed=config.seed)
    registry = TenantRegistry(config.lines_per_tenant,
                              max_slots=kwargs.pop("max_slots", 0))
    return synthesize_shard_stream(
        config, shard=shard, shard_of=shard_map.shard_of, registry=registry, **kwargs
    ), registry


class TestMixers:
    def test_mix64_is_deterministic_and_part_sensitive(self):
        assert mix64(1, 2, 3) == mix64(1, 2, 3)
        assert mix64(1, 2, 3) != mix64(1, 2, 4)
        assert mix64(1, 2, 3) != mix64(3, 2, 1)

    def test_mix01_in_unit_interval(self):
        for i in range(200):
            assert 0.0 <= mix01(7, i) < 1.0

    def test_zipf_rank_bounds_and_skew(self):
        ranks = [zipf_rank(mix01(3, i), 1000, 1.1) for i in range(5000)]
        assert all(0 <= r < 1000 for r in ranks)
        # Zipfian skew: rank 0 must dominate the tail.
        head = sum(1 for r in ranks if r < 10)
        tail = sum(1 for r in ranks if r >= 500)
        assert head > tail

    def test_zipf_rank_population_one(self):
        assert zipf_rank(0.99, 1, 1.1) == 0

    def test_zipf_rank_rejects_empty_population(self):
        with pytest.raises(ValueError):
            zipf_rank(0.5, 0, 1.1)

    def test_tenant_line_deterministic_and_sized(self):
        a = tenant_line(7, 42, 3, line_size=256)
        assert a == tenant_line(7, 42, 3, line_size=256)
        assert len(a) == 256
        assert a != tenant_line(7, 42, 4, line_size=256)


class TestConfig:
    def test_round_trip(self):
        assert TenantTrafficConfig.from_dict(CFG.to_dict()) == CFG

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            TenantTrafficConfig(read_fraction=1.5)
        with pytest.raises(ValueError):
            TenantTrafficConfig(content_overlap=-0.1)

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            TenantTrafficConfig(line_size=100)


class TestSynthesis:
    def test_shards_partition_the_global_stream(self):
        # Every global access lands in exactly one shard: admitted counts
        # across shards sum to the global budget (no quotas/caps).
        streams = [_stream(CFG, 4, shard)[0] for shard in range(4)]
        assert sum(s.admitted for s in streams) == CFG.accesses
        assert sum(s.offered for s in streams) == CFG.accesses

    def test_stream_is_deterministic(self):
        a, _ = _stream(CFG, 4, 1)
        b, _ = _stream(CFG, 4, 1)
        assert a.batch.ops == b.batch.ops
        assert a.batch.addresses == b.batch.addresses
        assert a.batch.payload == b.batch.payload

    def test_single_core_stream(self):
        stream, _ = _stream(CFG, 2, 0)
        assert set(stream.batch.cores) == {0}

    def test_first_access_per_tenant_is_a_write(self):
        config = TenantTrafficConfig(
            tenants=50, accesses=800, seed=5, read_fraction=0.9
        )
        stream, _ = _stream(config, 1, 0)
        seen: set[int] = set()
        for index, op in enumerate(stream.batch.ops):
            address = stream.batch.addresses[index]
            window = address // config.lines_per_tenant
            if window not in seen:
                assert op == OP_WRITE
                seen.add(window)

    def test_reads_target_last_written_line(self):
        config = TenantTrafficConfig(tenants=20, accesses=600, seed=9,
                                     read_fraction=0.5)
        stream, _ = _stream(config, 1, 0)
        last: dict[int, int] = {}
        for index, op in enumerate(stream.batch.ops):
            address = stream.batch.addresses[index]
            window = address // config.lines_per_tenant
            if op == OP_WRITE:
                last[window] = address
            else:
                assert last[window] == address

    def test_addresses_stay_inside_the_tenant_window(self):
        stream, registry = _stream(CFG, 2, 1)
        for address in stream.batch.addresses:
            slot = address // CFG.lines_per_tenant
            assert slot < registry.tenants_registered

    def test_quota_defers_over_budget_tenants(self):
        full, _ = _stream(CFG, 1, 0)
        capped, _ = _stream(CFG, 1, 0, tenant_quota=2)
        assert capped.deferred > 0
        assert capped.admitted + capped.deferred == full.admitted
        assert capped.offered == full.offered

    def test_slot_cap_rejects_late_tenants(self):
        stream, registry = _stream(CFG, 1, 0, max_slots=3)
        assert registry.tenants_registered == 3
        assert stream.rejected > 0
        assert stream.offered == stream.admitted + stream.deferred + stream.rejected

    def test_accounting_invariant_holds(self):
        for shard in range(3):
            stream, _ = _stream(CFG, 3, shard, tenant_quota=4)
            assert stream.offered == stream.admitted + stream.deferred + stream.rejected
            assert len(stream.batch) == stream.admitted

    def test_content_overlap_shares_lines_across_tenants(self):
        config = TenantTrafficConfig(
            tenants=500, accesses=2000, seed=3,
            content_overlap=0.9, shared_pool_lines=8, read_fraction=0.0,
        )
        stream, _ = _stream(config, 1, 0)
        contents = {data for _, data in stream.batch.write_pairs()}
        # 2000 writes drawing 90 % from an 8-line pool: far fewer distinct
        # lines than writes.
        assert len(contents) < stream.admitted / 2
