"""Trace generator: each trace must exhibit its profile's statistics."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.predictor import HistoryWindowPredictor
from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.oracle import DedupOracle, is_zero_line
from repro.workloads.profiles import profile_by_name

LINE = 256


def measure(name: str, accesses: int = 12_000, seed: int = 3):
    profile = profile_by_name(name)
    trace = generate_trace(profile, accesses, seed=seed)
    oracle = DedupOracle()
    for address, data in trace.as_batch().write_pairs():
        oracle.observe_write(address, data)
    return profile, trace, oracle


def measure_mean_ratios(name: str, seeds=(0, 1, 2), accesses: int = 12_000):
    """Average duplicate/zero ratios over seeds — duplication-state runs
    are ~60 writes long, so single traces carry few effective samples."""
    profile = profile_by_name(name)
    dup = zero = 0.0
    for seed in seeds:
        trace = generate_trace(profile, accesses, seed=seed)
        oracle = DedupOracle()
        for address, data in trace.as_batch().write_pairs():
            oracle.observe_write(address, data)
        dup += oracle.duplicate_ratio
        zero += oracle.zero_ratio
    return profile, dup / len(seeds), zero / len(seeds)


class TestDuplicationStatistics:
    @pytest.mark.parametrize("name", ["lbm", "cactusADM", "mcf", "bzip2", "vips"])
    def test_duplicate_ratio_matches_profile(self, name):
        profile, dup, _ = measure_mean_ratios(name)
        assert dup == pytest.approx(profile.dup_ratio, abs=0.05)

    @pytest.mark.parametrize("name", ["lbm", "sjeng", "mcf", "vips"])
    def test_zero_ratio_matches_profile(self, name):
        profile, _, zero = measure_mean_ratios(name)
        assert zero == pytest.approx(profile.zero_line_fraction, abs=0.06)

    def test_state_locality_matches_profile(self):
        profile, trace, _ = measure("mcf", accesses=20_000)
        oracle = DedupOracle()
        states = [oracle.observe_write(a, d) for a, d in trace.as_batch().write_pairs()]
        same = sum(1 for a, b in zip(states, states[1:]) if a == b)
        locality = same / (len(states) - 1)
        assert locality == pytest.approx(profile.state_locality, abs=0.04)

    def test_wider_history_window_wins(self):
        # The Fig. 4 structure: majority-of-3 beats last-value.
        _, trace, _ = measure("gcc", accesses=25_000)
        oracle = DedupOracle()
        states = [oracle.observe_write(a, d) for a, d in trace.as_batch().write_pairs()]
        one = HistoryWindowPredictor(window=1)
        three = HistoryWindowPredictor(window=3)
        for state in states:
            one.observe(state)
            three.observe(state)
        assert three.accuracy > one.accuracy


class TestStreamShape:
    def test_requested_length(self):
        _, trace, _ = measure("mcf", accesses=5_000)
        assert len(trace) == 5_000

    def test_write_fraction_roughly_matches(self):
        profile, trace, _ = measure("mcf", accesses=15_000)
        fraction = len(trace.writes) / len(trace)
        # Bursts are write-biased, so the global fraction sits somewhat
        # above the base write_fraction; it must stay in a sane band.
        assert profile.write_fraction - 0.05 <= fraction <= profile.write_fraction + 0.3

    def test_addresses_within_working_set(self):
        profile, trace, _ = measure("bzip2")
        assert all(0 <= a.address < profile.working_set_lines for a in trace)

    def test_threads_match_profile(self):
        _, trace, _ = measure("blackscholes")
        cores = {a.core for a in trace}
        assert cores == set(range(4))
        _, spec_trace, _ = measure("mcf")
        assert {a.core for a in spec_trace} == {0}

    def test_persistent_fraction_in_band(self):
        profile, trace, _ = measure("lbm", accesses=20_000)
        writes = trace.writes
        fraction = sum(1 for w in writes if w.persistent) / len(writes)
        assert fraction == pytest.approx(profile.persist_fraction, abs=0.05)

    def test_gaps_are_positive(self):
        _, trace, _ = measure("gcc", accesses=3_000)
        assert all(a.gap_instructions >= 1 for a in trace)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        profile = profile_by_name("milc")
        a = generate_trace(profile, 2_000, seed=9)
        b = generate_trace(profile, 2_000, seed=9)
        assert [(x.op, x.address, x.data) for x in a] == [
            (x.op, x.address, x.data) for x in b
        ]

    def test_different_seed_different_trace(self):
        profile = profile_by_name("milc")
        a = generate_trace(profile, 2_000, seed=1)
        b = generate_trace(profile, 2_000, seed=2)
        assert [(x.op, x.address) for x in a] != [(x.op, x.address) for x in b]


class TestContentStructure:
    def test_fresh_lines_word_sparse(self):
        # ~half the 16-bit words of unique content are zero (drives DEUCE).
        gen = TraceGenerator(profile_by_name("vips"), seed=4)
        lines = [gen._random_sparse_line() for _ in range(50)]
        zero_words = sum(
            1
            for line in lines
            for w in range(128)
            if line[2 * w : 2 * w + 2] == b"\x00\x00"
        )
        assert 0.40 <= zero_words / (50 * 128) <= 0.60

    def test_validation(self):
        gen = TraceGenerator(profile_by_name("mcf"))
        with pytest.raises(ValueError):
            gen.generate(0)
        with pytest.raises(ValueError):
            TraceGenerator(profile_by_name("mcf"), line_size_bytes=255)
