"""Worst-case benchmark: truly zero duplicate writes (Fig. 18's input)."""

from __future__ import annotations

import pytest

from repro.workloads.oracle import DedupOracle
from repro.workloads.worstcase import worst_case_trace


class TestWorstCase:
    def test_no_duplicates_at_all(self):
        trace = worst_case_trace(num_accesses=3_000, seed=1)
        oracle = DedupOracle()
        for address, data in trace.as_batch().write_pairs():
            oracle.observe_write(address, data)
        assert oracle.duplicates == 0

    def test_has_both_phases(self):
        trace = worst_case_trace(num_accesses=3_000, seed=1)
        assert len(trace.writes) > 0
        assert len(trace.reads) > 0

    def test_requested_length(self):
        trace = worst_case_trace(num_accesses=2_500)
        assert len(trace) == 2_500

    def test_deterministic(self):
        a = worst_case_trace(num_accesses=1_000, seed=5)
        b = worst_case_trace(num_accesses=1_000, seed=5)
        assert [(x.op, x.address, x.data) for x in a] == [
            (x.op, x.address, x.data) for x in b
        ]

    def test_single_threaded(self):
        trace = worst_case_trace(num_accesses=1_000)
        assert trace.threads == 1
        assert {a.core for a in trace} == {0}

    def test_invalid_length_rejected(self):
        with pytest.raises(ValueError):
            worst_case_trace(num_accesses=0)
