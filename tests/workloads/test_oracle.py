"""Duplication oracle: the Fig. 2 measurement definition."""

from __future__ import annotations

import pytest

from repro.workloads.oracle import DedupOracle, is_zero_line

LINE = 256


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestZeroLine:
    def test_zero_detection(self):
        assert is_zero_line(bytes(LINE))
        assert not is_zero_line(b"\x01" + bytes(LINE - 1))

    def test_empty_is_zero(self):
        assert is_zero_line(b"")


class TestDuplicateDefinition:
    def test_first_write_not_duplicate(self):
        oracle = DedupOracle()
        assert oracle.observe_write(0, line(1)) is False

    def test_identical_content_elsewhere_is_duplicate(self):
        oracle = DedupOracle()
        oracle.observe_write(0, line(1))
        assert oracle.observe_write(1, line(1)) is True

    def test_silent_store_is_duplicate(self):
        oracle = DedupOracle()
        oracle.observe_write(0, line(1))
        assert oracle.observe_write(0, line(1)) is True

    def test_content_no_longer_resident_is_not_duplicate(self):
        oracle = DedupOracle()
        oracle.observe_write(0, line(1))
        oracle.observe_write(0, line(2))  # line(1) evicted from memory
        assert oracle.observe_write(1, line(1)) is False

    def test_refcounted_residency(self):
        oracle = DedupOracle()
        oracle.observe_write(0, line(1))
        oracle.observe_write(1, line(1))
        oracle.observe_write(0, line(2))  # one copy of line(1) remains at 1
        assert oracle.observe_write(2, line(1)) is True


class TestStatistics:
    def test_ratios(self):
        oracle = DedupOracle()
        oracle.observe_write(0, bytes(LINE))  # zero, not dup
        oracle.observe_write(1, bytes(LINE))  # zero, dup
        oracle.observe_write(2, line(1))  # not dup
        oracle.observe_write(3, line(1))  # dup
        assert oracle.writes == 4
        assert oracle.duplicate_ratio == pytest.approx(0.5)
        assert oracle.zero_ratio == pytest.approx(0.5)
        assert oracle.zero_duplicates == 1

    def test_resident_content_query(self):
        oracle = DedupOracle()
        oracle.observe_write(0, line(1))
        assert oracle.resident_content(line(1))
        assert not oracle.resident_content(line(2))

    def test_empty_ratios(self):
        oracle = DedupOracle()
        assert oracle.duplicate_ratio == 0.0
        assert oracle.zero_ratio == 0.0
