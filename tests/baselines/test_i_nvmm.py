"""i-NVMM: hot-data plaintext optimisation and its security exposure."""

from __future__ import annotations

import pytest

from repro.baselines.i_nvmm import INvmmController
from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(hot_set_lines: int = 8) -> INvmmController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return INvmmController(nvm, hot_set_lines=hot_set_lines)


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestHotPath:
    def test_hot_data_is_plaintext_at_rest(self):
        # The stolen-DIMM exposure §V criticises.
        controller = make_controller()
        controller.write(0, line(7), 0.0)
        assert controller.nvm.peek(0) == line(7)

    def test_hot_write_skips_aes_latency(self):
        secure = TraditionalSecureNvmController(
            NvmMainMemory(
                NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
            )
        )
        hot = make_controller()
        secure.write(0, line(1), 0.0)
        hot.write(0, line(1), 0.0)
        s = secure.write(0, line(2), 100_000.0)
        h = hot.write(0, line(2), 100_000.0)
        assert h.latency_ns < s.latency_ns
        assert s.latency_ns - h.latency_ns >= 90  # ~the AES latency

    def test_hot_read_returns_data(self):
        controller = make_controller()
        controller.write(0, line(3), 0.0)
        assert controller.read(0, 10_000.0).data == line(3)

    def test_plaintext_bus_transfers_counted(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.read(0, 10_000.0)
        assert controller.plaintext_bus_transfers == 2


class TestColdPath:
    def test_eviction_encrypts_in_place(self):
        controller = make_controller(hot_set_lines=2)
        now = 0.0
        for address in range(3):  # third write evicts line 0
            now = controller.write(address, line(address + 1), now).complete_ns + 100
        assert controller.cold_encryptions == 1
        assert controller.nvm.peek(0) != line(1)  # encrypted at rest now
        assert controller.read(0, now).data == line(1)  # still decrypts

    def test_shutdown_sweep_encrypts_everything(self):
        controller = make_controller(hot_set_lines=8)
        now = 0.0
        for address in range(4):
            now = controller.write(address, line(address + 1), now).complete_ns + 100
        swept = controller.shutdown(now)
        assert swept == 4
        for address in range(4):
            assert controller.nvm.peek(address) != line(address + 1)
            assert controller.read(address, now + 10**6).data == line(address + 1)

    def test_rewrite_after_eviction_goes_hot_again(self):
        controller = make_controller(hot_set_lines=2)
        now = 0.0
        for address in range(3):
            now = controller.write(address, line(address + 1), now).complete_ns + 100
        now = controller.write(0, line(9), now).complete_ns + 100
        assert controller.nvm.peek(0) == line(9)  # plaintext again
        assert controller.read(0, now).data == line(9)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_controller(hot_set_lines=0)


class TestSecurityContrast:
    def test_dewrite_never_puts_plaintext_on_the_bus(self):
        # The §V argument in one assertion pair.
        from repro.core.dewrite import DeWriteController

        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        dewrite = DeWriteController(nvm)
        dewrite.write(0, line(7), 0.0)
        assert nvm.peek(dewrite.index.physical_of(0)) != line(7)

        i_nvmm = make_controller()
        i_nvmm.write(0, line(7), 0.0)
        assert i_nvmm.plaintext_bus_transfers > 0
