"""Out-of-line page dedup: saves capacity, never writes (§V's contrast)."""

from __future__ import annotations

import pytest

from repro.baselines.out_of_line import OutOfLinePageDedupController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(**kwargs) -> OutOfLinePageDedupController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    kwargs.setdefault("lines_per_page", 4)
    kwargs.setdefault("scan_interval_writes", 8)
    return OutOfLinePageDedupController(nvm, **kwargs)


def fill_page(controller, page: int, pattern: int, now: float) -> float:
    for offset in range(controller.lines_per_page):
        address = page * controller.lines_per_page + offset
        outcome = controller.write(address, bytes([pattern + offset]) * LINE, now)
        now = outcome.complete_ns + 100.0
    return now


class TestZeroWriteReduction:
    def test_every_write_reaches_the_array(self):
        controller = make_controller()
        now = fill_page(controller, 0, 1, 0.0)
        fill_page(controller, 1, 1, now)  # identical content
        assert controller.nvm.writes >= 8  # all 8 line writes happened
        assert controller.stats.writes_deduplicated == 0
        assert controller.stats.write_reduction == 0.0

    def test_but_capacity_is_saved(self):
        controller = make_controller()
        now = fill_page(controller, 0, 1, 0.0)
        now = fill_page(controller, 1, 1, now)
        fill_page(controller, 2, 99, now)  # unique page, forces a scan
        assert controller.merged_pages >= 1
        assert controller.capacity_saved_lines >= controller.lines_per_page


class TestMergeMechanics:
    def test_distinct_pages_not_merged(self):
        controller = make_controller()
        now = fill_page(controller, 0, 1, 0.0)
        now = fill_page(controller, 1, 50, now)
        fill_page(controller, 2, 120, now)
        assert controller.merged_pages == 0

    def test_copy_on_write_breaks_merge(self):
        controller = make_controller()
        now = fill_page(controller, 0, 1, 0.0)
        now = fill_page(controller, 1, 1, now)
        now = fill_page(controller, 2, 99, now)
        assert controller.merged_pages == 1
        saved_before = controller.capacity_saved_lines
        # Diverge the merged page: the saving is returned.
        merged_page = next(iter(controller._merged))
        controller.write(merged_page * 4, b"\xee" * LINE, now)
        assert controller.capacity_saved_lines == saved_before - 4

    def test_scans_counted(self):
        controller = make_controller(scan_interval_writes=4)
        now = 0.0
        for i in range(12):
            now = controller.write(i, bytes([i + 1]) * LINE, now).complete_ns + 100
        assert controller.scans == 3

    def test_still_a_correct_memory(self):
        controller = make_controller()
        now = fill_page(controller, 0, 1, 0.0)
        now = fill_page(controller, 1, 1, now)
        fill_page(controller, 2, 99, now)
        for offset in range(4):
            assert controller.read(offset, 10**7).data == bytes([1 + offset]) * LINE
            assert controller.read(4 + offset, 10**7).data == bytes([1 + offset]) * LINE

    def test_validation(self):
        with pytest.raises(ValueError):
            make_controller(lines_per_page=0)
        with pytest.raises(ValueError):
            make_controller(scan_interval_writes=0)
