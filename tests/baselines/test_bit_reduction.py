"""DCW / FNW / DEUCE bit-flip models and the combined analyzer (Fig. 13)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.bit_reduction import (
    BitFlipAnalyzer,
    FnwLineState,
    dcw_flips,
    deuce_flips,
)
from repro.workloads.oracle import DedupOracle, is_zero_line

LINE = 256
LINE_BITS = LINE * 8


class TestDcw:
    def test_identical_is_zero(self):
        assert dcw_flips(0xABCD, 0xABCD) == 0

    def test_counts_xor_popcount(self):
        assert dcw_flips(0b1010, 0b0101) == 4
        assert dcw_flips(0, (1 << 2048) - 1) == 2048

    @given(st.integers(0, 2**64 - 1), st.integers(0, 2**64 - 1))
    def test_symmetric(self, a, b):
        assert dcw_flips(a, b) == dcw_flips(b, a)


class TestFnw:
    def test_first_write_of_zero_flips_nothing(self):
        state = FnwLineState(64, chunk_bits=32)
        assert state.write(0) == 0

    def test_worst_case_bounded_by_half_plus_flags(self):
        # FNW's guarantee: at most half the chunk bits + one flag per chunk.
        state = FnwLineState(LINE_BITS, chunk_bits=32)
        rng = random.Random(1)
        for _ in range(20):
            flips = state.write(rng.getrandbits(LINE_BITS))
            assert flips <= LINE_BITS // 2 + LINE_BITS // 32

    def test_inversion_chosen_when_cheaper(self):
        state = FnwLineState(32, chunk_bits=32)
        state.write(0)  # raw = 0, flag = 0
        # Writing all-ones plainly flips 32; inverted stores 0 (0 data
        # flips) + 1 flag flip.
        assert state.write((1 << 32) - 1) == 1

    def test_logical_data_preserved_under_inversion(self):
        state = FnwLineState(64, chunk_bits=32)
        rng = random.Random(2)
        for _ in range(10):
            value = rng.getrandbits(64)
            state.write(value)
            assert state.data == value

    def test_random_data_flip_fraction_near_043(self):
        # Fig. 13: FNW on encrypted (random) data converges to ~43 %.
        state = FnwLineState(LINE_BITS, chunk_bits=32)
        rng = random.Random(3)
        total = sum(state.write(rng.getrandbits(LINE_BITS)) for _ in range(60))
        fraction = total / (60 * LINE_BITS)
        assert 0.40 <= fraction <= 0.46

    def test_invalid_chunking_rejected(self):
        with pytest.raises(ValueError):
            FnwLineState(100, chunk_bits=32)


class TestDeuce:
    def test_clean_line_flips_nothing(self):
        flips, hybrid = deuce_flips(5, 5, old_ct=99, new_pad=1234, line_bits=64)
        assert flips == 0
        assert hybrid == 99

    def test_only_dirty_words_reencrypted(self):
        old_pt = 0
        new_pt = 0xFFFF  # only word 0 modified
        old_ct = 0
        pad = (1 << 64) - 1
        flips, hybrid = deuce_flips(old_pt, new_pt, old_ct, pad, line_bits=64)
        # Word 0: new ct word = 0xFFFF ^ 0xFFFF = 0; old ct word 0 -> 0 flips.
        assert flips == 0
        assert hybrid == 0

    def test_dirty_word_flip_count(self):
        old_pt, new_pt = 0, 0x00FF
        old_ct = 0xFFFF
        pad = 0
        flips, hybrid = deuce_flips(old_pt, new_pt, old_ct, pad, line_bits=16)
        # new ct word = 0x00FF; old = 0xFFFF -> 8 flips.
        assert flips == 8
        assert hybrid == 0x00FF

    def test_random_rewrites_flip_fraction_tracks_dirtiness(self):
        rng = random.Random(4)
        words = LINE_BITS // 16
        old_pt = rng.getrandbits(LINE_BITS)
        old_ct = rng.getrandbits(LINE_BITS)
        # Modify exactly half the words.
        new_pt = old_pt
        for w in range(0, words, 2):
            new_pt ^= rng.getrandbits(16) << (w * 16) or (1 << (w * 16))
        pad = rng.getrandbits(LINE_BITS)
        flips, _ = deuce_flips(old_pt, new_pt, old_ct, pad, LINE_BITS)
        # Dirty half the words, each ~50 % flips -> ~25 % of the line.
        assert 0.15 <= flips / LINE_BITS <= 0.35


class TestAnalyzer:
    def _writes(self, n=200, dup_every=2):
        rng = random.Random(5)
        base = rng.randbytes(LINE)
        out = []
        for i in range(n):
            if i % dup_every == 0:
                out.append((i % 32, base))
            else:
                out.append((i % 32, rng.randbytes(LINE)))
        return out

    def test_dcw_on_encrypted_data_is_half(self):
        report = BitFlipAnalyzer().run(self._writes())
        assert 0.47 <= report.flip_fraction("dcw") <= 0.53

    def test_fnw_beats_dcw_slightly(self):
        report = BitFlipAnalyzer().run(self._writes())
        assert report.flip_fraction("fnw") < report.flip_fraction("dcw")
        assert 0.40 <= report.flip_fraction("fnw") <= 0.46

    def test_eliminator_zeroes_out_eliminated_writes(self):
        writes = self._writes()
        all_eliminated = BitFlipAnalyzer().run(writes, eliminator=lambda a, d: True)
        assert all_eliminated.eliminated == len(writes)
        for technique in ("dcw", "fnw", "deuce"):
            assert all_eliminated.flip_fraction(technique) == 0.0

    def test_dedup_front_end_halves_flips(self):
        writes = self._writes(dup_every=2)
        plain = BitFlipAnalyzer().run(writes)
        oracle = DedupOracle()
        deduped = BitFlipAnalyzer().run(
            writes, eliminator=lambda a, d: oracle.observe_write(a, d)
        )
        assert deduped.flip_fraction("dcw") < 0.65 * plain.flip_fraction("dcw")

    def test_zero_eliminator_matches_zero_share(self):
        writes = [(i, bytes(LINE) if i % 4 == 0 else random.Random(i).randbytes(LINE))
                  for i in range(100)]
        report = BitFlipAnalyzer().run(writes, eliminator=lambda a, d: is_zero_line(d))
        assert report.elimination_rate == pytest.approx(0.25)

    def test_wrong_line_size_rejected(self):
        with pytest.raises(ValueError):
            BitFlipAnalyzer().run([(0, b"short")])

    def test_report_accounting(self):
        writes = self._writes(n=50)
        report = BitFlipAnalyzer().run(writes)
        assert report.writes == 50
        assert report.eliminated == 0
        assert report.line_bits == LINE_BITS
