"""Direct-way and parallel-way factory functions (Fig. 3 strawmen)."""

from __future__ import annotations

from repro.core.registry import build_controller
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def direct_way_controller(nvm: NvmMainMemory):
    return build_controller("direct", nvm)


def parallel_way_controller(nvm: NvmMainMemory):
    return build_controller("parallel", nvm)


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestFactories:
    def test_direct_mode(self):
        assert build_controller("direct", make_nvm()).mode == "direct"

    def test_parallel_mode(self):
        assert build_controller("parallel", make_nvm()).mode == "parallel"

    def test_both_are_correct_memories(self):
        for factory in (direct_way_controller, parallel_way_controller):
            controller = factory(make_nvm())
            controller.write(0, line(1), 0.0)
            controller.write(1, line(1), 10_000.0)
            assert controller.read(1, 20_000.0).data == line(1)


class TestFig3Tradeoff:
    def test_latency_ordering_on_unique_writes(self):
        # Fig. 15: parallel <= dewrite < direct for stored writes.
        results = {}
        for name, factory in (
            ("direct", direct_way_controller),
            ("parallel", parallel_way_controller),
        ):
            controller = factory(make_nvm())
            total = 0.0
            now = 0.0
            for i in range(20):
                outcome = controller.write(i, line(i + 1), now)
                total += outcome.latency_ns
                now = outcome.complete_ns + 5_000.0
            results[name] = total / 20
        assert results["parallel"] < results["direct"]

    def test_energy_ordering_on_duplicate_writes(self):
        # Fig. 20: direct <= dewrite < parallel on AES energy.
        results = {}
        for name, factory in (
            ("direct", direct_way_controller),
            ("parallel", parallel_way_controller),
        ):
            controller = factory(make_nvm())
            now = 0.0
            for i in range(20):
                outcome = controller.write(i, line(1), now)
                now = outcome.complete_ns + 5_000.0
            results[name] = controller.nvm.energy.aes_nj
        assert results["direct"] < results["parallel"]
