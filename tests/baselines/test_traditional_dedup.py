"""Traditional dedup baseline: trusted fingerprints, serial integration."""

from __future__ import annotations

import pytest

from repro.baselines.traditional_dedup import traditional_dedup_controller
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(fingerprint: str = "sha1"):
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return traditional_dedup_controller(nvm, fingerprint=fingerprint)


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestConfiguration:
    def test_sha1_settings(self):
        controller = make_controller("sha1")
        assert controller.config.fingerprint == "sha1"
        assert controller.config.trust_fingerprint
        assert controller.mode == "direct"
        assert controller.config.fingerprint_latency_ns == 321.0

    def test_md5_settings(self):
        controller = make_controller("md5")
        assert controller.config.fingerprint_latency_ns == 312.0

    def test_bigger_hash_entries(self):
        # 160-bit digests pack fewer entries per cache block (higher t_Q).
        controller = make_controller("sha1")
        assert controller.config.metadata_cache.hash_entry_bits == 160 + 32 + 8

    def test_crc_rejected(self):
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        with pytest.raises(ValueError):
            traditional_dedup_controller(nvm, fingerprint="crc32")


class TestBehaviour:
    def test_still_a_correct_memory(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(1, line(1), 10_000.0)
        assert controller.read(0, 20_000.0).data == line(1)
        assert controller.read(1, 21_000.0).data == line(1)

    def test_deduplicates_without_verify_reads(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        outcome = controller.write(1, line(1), 10_000.0)
        assert outcome.deduplicated
        assert controller.stats.verify_reads == 0

    def test_detection_latency_exceeds_dewrite(self):
        # Table Ib: >=312 ns per line vs DeWrite's 15/91 ns.
        traditional = make_controller()
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        dewrite = DeWriteController(nvm)
        traditional.write(0, line(1), 0.0)
        dewrite.write(0, line(1), 0.0)
        t = traditional.write(1, line(1), 100_000.0)
        d = dewrite.write(1, line(1), 100_000.0)
        assert t.deduplicated and d.deduplicated
        assert t.latency_ns > d.latency_ns
        assert t.latency_ns >= 321.0

    def test_nonduplicate_pays_serial_hash_plus_aes_plus_write(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        outcome = controller.write(1, line(2), 100_000.0)
        assert not outcome.deduplicated
        assert outcome.latency_ns >= 321 + 96 + 300
