"""Silent Shredder: zero-line elimination semantics."""

from __future__ import annotations

import pytest

from repro.baselines.silent_shredder import SilentShredderController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller() -> SilentShredderController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return SilentShredderController(nvm)


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestZeroElimination:
    def test_zero_write_cancelled(self):
        controller = make_controller()
        outcome = controller.write(0, bytes(LINE), 0.0)
        assert outcome.deduplicated
        assert controller.nvm.writes == 0
        assert controller.shredded_lines == 1

    def test_zero_write_fast(self):
        controller = make_controller()
        controller.write(0, bytes(LINE), 0.0)  # warm counter cache block
        outcome = controller.write(1, bytes(LINE), 100_000.0)
        assert outcome.latency_ns < 10.0  # counter manipulation only

    def test_shredded_read_returns_zero_without_array_access(self):
        controller = make_controller()
        controller.write(0, bytes(LINE), 0.0)
        reads_before = controller.nvm.reads
        outcome = controller.read(0, 1_000.0)
        assert outcome.data == bytes(LINE)
        assert controller.nvm.reads == reads_before

    def test_nonzero_write_passes_through(self):
        controller = make_controller()
        outcome = controller.write(0, line(1), 0.0)
        assert not outcome.deduplicated
        assert controller.nvm.writes == 1

    def test_rewrite_after_shred(self):
        controller = make_controller()
        controller.write(0, bytes(LINE), 0.0)
        controller.write(0, line(9), 1_000.0)
        assert controller.shredded_lines == 0
        assert controller.read(0, 2_000.0).data == line(9)

    def test_shred_after_data(self):
        controller = make_controller()
        controller.write(0, line(9), 0.0)
        controller.write(0, bytes(LINE), 1_000.0)
        assert controller.read(0, 2_000.0).data == bytes(LINE)


class TestComparisonWithDuplication:
    def test_nonzero_duplicates_not_eliminated(self):
        # The paper's motivation: Silent Shredder misses non-zero dups.
        controller = make_controller()
        controller.write(0, line(7), 0.0)
        outcome = controller.write(1, line(7), 1_000.0)
        assert not outcome.deduplicated

    def test_elimination_counted_in_stats(self):
        controller = make_controller()
        controller.write(0, bytes(LINE), 0.0)
        controller.write(1, line(1), 1_000.0)
        assert controller.stats.writes_requested == 2
        assert controller.stats.writes_deduplicated == 1
        assert controller.stats.write_reduction == pytest.approx(0.5)
