"""Traditional secure NVM baseline: CME correctness and timing."""

from __future__ import annotations

import pytest

from repro.baselines.secure_nvm import SecureNvmConfig, TraditionalSecureNvmController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller() -> TraditionalSecureNvmController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return TraditionalSecureNvmController(nvm)


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestFunctional:
    def test_read_your_write(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        assert controller.read(0, 1_000.0).data == line(1)

    def test_unwritten_reads_zero(self):
        controller = make_controller()
        assert controller.read(7, 0.0).data == bytes(LINE)

    def test_rewrites_visible(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(0, line(2), 1_000.0)
        assert controller.read(0, 2_000.0).data == line(2)

    def test_data_encrypted_at_rest(self):
        controller = make_controller()
        controller.write(0, line(5), 0.0)
        assert controller.nvm.peek(0) != line(5)

    def test_counter_increments_per_write(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(0, line(1), 1_000.0)
        assert controller._counters[0] == 2

    def test_rewrite_of_same_data_changes_ciphertext(self):
        # Diffusion under counter bump (§I).
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        first = controller.nvm.peek(0)
        controller.write(0, line(1), 1_000.0)
        assert controller.nvm.peek(0) != first


class TestNoDeduplication:
    def test_duplicate_lines_written_anyway(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(1, line(1), 1_000.0)
        assert controller.nvm.writes == 2
        assert controller.stats.writes_deduplicated == 0


class TestTiming:
    def test_write_latency_includes_aes_and_array(self):
        controller = make_controller()
        outcome = controller.write(0, line(1), 0.0)
        # counter-cache cold miss + AES (96) + array write (300).
        assert outcome.latency_ns >= 96 + 300

    def test_warm_write_latency(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        outcome = controller.write(0, line(2), 100_000.0)
        assert outcome.latency_ns == pytest.approx(96 + 300)

    def test_warm_read_latency(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        outcome = controller.read(0, 100_000.0)
        # OTP overlapped with the 75 ns read; only the XOR shows (row hit
        # possible if the row is still open, so allow the faster case).
        assert outcome.latency_ns <= 75 + 0.5

    def test_counter_cache_miss_penalty_on_cold_read(self):
        controller = make_controller()
        outcome = controller.read(12_345, 0.0)
        assert outcome.latency_ns >= 75 + 96  # metadata fetch + decrypt

    def test_stats_accumulate(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.read(0, 1_000.0)
        assert controller.stats.writes_requested == 1
        assert controller.stats.reads_requested == 1
        assert controller.stats.write_latency.count == 1
        assert controller.stats.read_latency.count == 1


class TestConfig:
    def test_counter_cache_blocks(self):
        config = SecureNvmConfig()
        assert config.counter_cache_blocks == 2 * 1024 * 1024 * 8 // (28 * 256)

    def test_address_bounds(self):
        controller = make_controller()
        with pytest.raises(IndexError):
            controller.write(controller.data_lines, line(0), 0.0)
