"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import DeWriteConfig, MetadataCacheConfig
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_line(fill: int = 0, size: int = LINE) -> bytes:
    """A line filled with one byte value."""
    return bytes([fill]) * size


def random_line(rng: random.Random, size: int = LINE) -> bytes:
    """A random line from a seeded generator."""
    return rng.randbytes(size)


@pytest.fixture
def rng() -> random.Random:
    """Deterministic RNG per test."""
    return random.Random(0xDE57)


@pytest.fixture
def small_nvm() -> NvmMainMemory:
    """A small NVM device (64 Ki lines) for fast controller tests."""
    config = NvmConfig(
        organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE, line_size_bytes=LINE)
    )
    return NvmMainMemory(config)


@pytest.fixture
def small_config() -> DeWriteConfig:
    """DeWrite config with small caches so evictions actually happen."""
    return DeWriteConfig(
        metadata_cache=MetadataCacheConfig(
            hash_cache_bytes=8 * 1024,
            address_map_cache_bytes=8 * 1024,
            inverted_hash_cache_bytes=8 * 1024,
            fsm_cache_bytes=2 * 1024,
            prefetch_entries=16,
        )
    )
