"""Failure-injection tests: the system must fail loudly, never corrupt.

Each scenario sabotages one internal assumption and checks that either the
invariant checker catches it or the behaviour degrades safely.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import DeWriteConfig, MetadataCacheConfig
from repro.core.dewrite import DeWriteController
from repro.core.tables import DedupIndexError
from repro.nvm.config import NvmConfig, NvmOrganization, NvmTimingConfig
from repro.nvm.memory import NvmMainMemory

LINE = 256


def make_controller(**config_kwargs) -> DeWriteController:
    nvm = NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )
    return DeWriteController(nvm, config=DeWriteConfig(**config_kwargs))


def line(fill: int) -> bytes:
    return bytes([fill]) * LINE


class TestInvariantCheckerCatchesCorruption:
    def test_corrupted_mapping_detected(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.index._mapping[5] = 999  # sabotage: dangling mapping
        with pytest.raises(DedupIndexError):
            controller.check_invariants()

    def test_corrupted_reference_detected(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.write(1, line(1), 10_000.0)
        crc = controller.index.content_crc(0)
        controller.index._hash_table[crc][0] = 7  # sabotage: wrong refcount
        with pytest.raises(DedupIndexError):
            controller.check_invariants()

    def test_orphan_hash_entry_detected(self):
        controller = make_controller()
        controller.write(0, line(1), 0.0)
        controller.index._hash_table[0xDEAD] = {123: 1}  # sabotage: orphan
        with pytest.raises(DedupIndexError):
            controller.check_invariants()


class TestDegenerateConfigurations:
    def test_zero_capacity_metadata_caches_still_correct(self):
        # Pathological: no metadata caching at all.  Slow, but correct.
        controller = make_controller(
            metadata_cache=MetadataCacheConfig(
                hash_cache_bytes=0,
                address_map_cache_bytes=0,
                inverted_hash_cache_bytes=0,
                fsm_cache_bytes=0,
                prefetch_entries=1,
            )
        )
        controller.write(0, line(1), 0.0)
        controller.write(1, line(1), 100_000.0)
        assert controller.read(1, 200_000.0).data == line(1)
        controller.check_invariants()

    def test_reference_cap_of_one_disables_sharing(self):
        # cap=1: every stored line is instantly saturated, so nothing ever
        # deduplicates — but correctness must hold.
        controller = make_controller(reference_cap=1)
        controller.write(0, line(1), 0.0)
        outcome = controller.write(1, line(1), 10_000.0)
        assert not outcome.deduplicated
        assert controller.read(1, 20_000.0).data == line(1)
        controller.check_invariants()

    def test_tiny_device_fills_up_gracefully(self):
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * LINE))
        )
        controller = DeWriteController(nvm)
        data_lines = controller.layout.data_lines
        now = 0.0
        # Unique content everywhere: the device really fills.
        for address in range(data_lines):
            data = address.to_bytes(8, "little") + bytes(LINE - 8)
            now = controller.write(address, data, now).complete_ns + 100
        for address in range(data_lines):
            expected = address.to_bytes(8, "little") + bytes(LINE - 8)
            assert controller.read(address, now).data == expected

    def test_extreme_timing_asymmetry(self):
        # 8x asymmetry (the top of the paper's band) must simply work.
        nvm = NvmMainMemory(
            NvmConfig(
                timing=NvmTimingConfig(read_ns=50, write_ns=400, row_hit_ns=10),
                organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE),
            )
        )
        controller = DeWriteController(nvm)
        controller.write(0, line(1), 0.0)
        dup = controller.write(1, line(1), 100_000.0)
        assert dup.deduplicated
        assert dup.latency_ns < 400  # still cheaper than a write


class TestAdversarialContent:
    def test_crc_collision_is_not_a_false_dedup(self):
        # Two different lines with the SAME CRC-32 must never be merged:
        # the byte-compare verify read is the safety net (§III-B1).
        controller = make_controller()
        base = bytearray(line(0))
        base[0:9] = b"collide!\x00"
        original = bytes(base)

        # Craft a second line with equal CRC by appending the CRC fixup:
        # flipping 4 bytes and patching via linearity of CRC32.  Easier:
        # brute-force a 2-byte tweak pair is impractical; instead exploit
        # CRC32 linearity: crc(a) == crc(b) iff crc(a XOR b) over the zero
        # message == 0 pattern.  Use a known CRC-preserving XOR delta.
        import zlib

        # Find a small collision by brute force over one patched byte pair
        # (guaranteed to exist within 2^16 trials by pigeonhole is not
        # true, so search a wider space but bail once found).
        target = zlib.crc32(original)
        collided = None
        probe = bytearray(original)
        for first in range(256):
            probe[100] = first
            for second in range(256):
                probe[101] = second
                if (first, second) != (original[100], original[101]) and zlib.crc32(
                    bytes(probe)
                ) == target:
                    collided = bytes(probe)
                    break
            if collided:
                break

        controller.write(0, original, 0.0)
        if collided is not None:
            outcome = controller.write(1, collided, 100_000.0)
            assert not outcome.deduplicated, "collision merged distinct data!"
            assert controller.read(1, 200_000.0).data == collided
            assert controller.read(0, 300_000.0).data == original
        else:
            # No 2-byte collision exists for this content; the stats path
            # is still exercised via random traffic elsewhere.
            assert True

    def test_all_identical_content_storm(self):
        # Thousands of copies of one line: reference saturation plus fresh
        # copies must keep everything consistent.
        controller = make_controller(reference_cap=5)
        now = 0.0
        for address in range(300):
            now = controller.write(address, line(9), now).complete_ns + 50
        controller.check_invariants()
        rng = random.Random(1)
        for _ in range(50):
            address = rng.randrange(300)
            assert controller.read(address, now).data == line(9)
