"""Paper-claim pinning tests: the headline numbers, asserted at test scale.

Each test names one quantitative claim from the paper and asserts the
reproduction's equivalent at a small-but-stable scale, so a regression in
any subsystem that would bend a headline figure fails the unit suite —
not just the (slower) benchmark suite.
"""

from __future__ import annotations

import statistics

import pytest

from repro.baselines.bit_reduction import BitFlipAnalyzer
from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.core.dewrite import DeWriteController
from repro.core.predictor import HistoryWindowPredictor
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.oracle import DedupOracle
from repro.workloads.profiles import ALL_PROFILES, profile_by_name

LINE = 256
APPS = ("lbm", "cactusADM", "libquantum", "blackscholes", "mcf", "sjeng", "gcc", "vips")
ACCESSES = 6_000
SEED = 13


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=256 * 1024 * LINE))
    )


@pytest.fixture(scope="module")
def comparisons():
    """Baseline + DeWrite runs for the app subset, computed once."""
    results = {}
    for name in APPS:
        trace = generate_trace(profile_by_name(name), ACCESSES, seed=SEED)
        base = simulate(TraditionalSecureNvmController(make_nvm()), trace)
        dewrite = simulate(DeWriteController(make_nvm()), trace)
        results[name] = (base, dewrite)
    return results


class TestSection2Claims:
    def test_duplication_average_near_58_percent(self):
        """§II-C: 'the duplicate lines written to memory account for 58 %'."""
        ratios = []
        for profile in ALL_PROFILES:
            oracle = DedupOracle()
            for a, d in generate_trace(profile, 3_000, seed=SEED).as_batch().write_pairs():
                oracle.observe_write(a, d)
            ratios.append(oracle.duplicate_ratio)
        assert statistics.fmean(ratios) == pytest.approx(0.58, abs=0.06)

    def test_zero_lines_alone_are_16_percent(self):
        """§II-C: Silent Shredder's target is only ~16 % of writes."""
        ratios = []
        for profile in ALL_PROFILES:
            oracle = DedupOracle()
            for a, d in generate_trace(profile, 3_000, seed=SEED).as_batch().write_pairs():
                oracle.observe_write(a, d)
            ratios.append(oracle.zero_ratio)
        assert statistics.fmean(ratios) == pytest.approx(0.16, abs=0.05)


class TestSection3Claims:
    def test_prediction_92_percent_with_one_bit(self):
        """§III-A: ~92 % of writes share their predecessor's state."""
        accuracies = []
        for name in APPS:
            oracle = DedupOracle()
            trace = generate_trace(profile_by_name(name), ACCESSES, seed=SEED)
            predictor = HistoryWindowPredictor(window=1)
            for a, d in trace.as_batch().write_pairs():
                predictor.observe(oracle.observe_write(a, d))
            accuracies.append(predictor.accuracy)
        assert statistics.fmean(accuracies) == pytest.approx(0.92, abs=0.03)

    def test_dup_detection_91ns_and_nvm_write_asymmetry(self):
        """§III-B1/Table Ib: 91 ns per duplicate < the 300 ns write."""
        controller = DeWriteController(make_nvm())
        data = b"\x11" * LINE
        controller.write(0, data, 0.0)
        outcome = controller.write(1, data, 500_000.0)
        assert outcome.deduplicated
        assert outcome.latency_ns < 100
        assert outcome.latency_ns < 300


class TestSection4Claims:
    def test_write_reduction_tracks_54_percent(self, comparisons):
        """Fig. 12: reduction ~54 % on the paper's mix (subset proxy)."""
        reductions = [dw.write_reduction for _, dw in comparisons.values()]
        assert 0.45 <= statistics.fmean(reductions) <= 0.75

    def test_every_app_wins_or_ties_on_writes(self, comparisons):
        """Fig. 14: DeWrite never loses on write latency."""
        for name, (base, dewrite) in comparisons.items():
            speedup = base.mean_write_latency_ns / dewrite.mean_write_latency_ns
            assert speedup > 0.93, f"{name} lost on writes"

    def test_heavy_duplicators_gain_multifold(self, comparisons):
        """Fig. 14: cactusADM/lbm-class apps gain several-fold."""
        for name in ("lbm", "cactusADM"):
            base, dewrite = comparisons[name]
            assert base.mean_write_latency_ns / dewrite.mean_write_latency_ns > 2.5

    def test_energy_reduction_toward_40_percent(self, comparisons):
        """Fig. 19: ~40 % energy saved on average."""
        ratios = [dw.energy_nj / base.energy_nj for base, dw in comparisons.values()]
        assert statistics.fmean(ratios) < 0.75

    def test_dcw_pinned_at_half_by_diffusion(self):
        """Fig. 13: DCW cannot beat ~50 % on encrypted data."""
        trace = generate_trace(profile_by_name("mcf"), 4_000, seed=SEED)
        report = BitFlipAnalyzer().run(trace.as_batch().write_pairs())
        assert report.flip_fraction("dcw") == pytest.approx(0.50, abs=0.03)

    def test_dewrite_halves_bit_flips_of_every_technique(self):
        """Fig. 13: the combined columns (on a non-zero-dominated app —
        for zero-heavy apps like sjeng DEUCE is already nearly free on
        zero-over-zero rewrites, so dedup adds less there)."""
        trace = generate_trace(profile_by_name("mcf"), 4_000, seed=SEED)
        writes = list(trace.as_batch().write_pairs())
        plain = BitFlipAnalyzer().run(writes)
        oracle = DedupOracle()
        combined = BitFlipAnalyzer().run(
            writes, eliminator=lambda a, d: oracle.observe_write(a, d)
        )
        for technique in ("dcw", "fnw", "deuce"):
            assert combined.flip_fraction(technique) < 0.70 * plain.flip_fraction(technique)

    def test_metadata_overhead_near_six_percent(self):
        """§IV-E1: ≈6.25 % of capacity."""
        from repro.core.config import DeWriteConfig

        assert DeWriteConfig().metadata_overhead_fraction() == pytest.approx(0.065, abs=0.01)
