"""Hypothesis stateful testing: DeWrite as a rule-based state machine.

Hypothesis drives arbitrary interleavings of writes (duplicate-prone and
fresh), reads, metadata flushes and invariant checks against a dictionary
model — and shrinks any failure to a minimal scenario.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core.config import DeWriteConfig, MetadataCacheConfig
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory

LINE = 256
ADDRESSES = 24
POOL = [bytes([value]) * LINE for value in range(1, 6)] + [bytes(LINE)]


class DeWriteMachine(RuleBasedStateMachine):
    """Random traffic against the full controller, checked per step."""

    contents = Bundle("contents")

    @initialize()
    def setup(self) -> None:
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
        )
        # Small caches so evictions and write-backs happen under test.
        config = DeWriteConfig(
            reference_cap=4,  # exercise saturation constantly
            metadata_cache=MetadataCacheConfig(
                hash_cache_bytes=2 * 1024,
                address_map_cache_bytes=2 * 1024,
                inverted_hash_cache_bytes=2 * 1024,
                fsm_cache_bytes=1024,
                prefetch_entries=8,
            ),
        )
        self.controller = DeWriteController(nvm, config=config)
        self.model: dict[int, bytes] = {}
        self.now = 0.0
        self.fresh_counter = 0

    @rule(target=contents, pool_index=st.integers(0, len(POOL) - 1))
    def pick_pool_content(self, pool_index: int) -> bytes:
        return POOL[pool_index]

    @rule(target=contents)
    def make_fresh_content(self) -> bytes:
        self.fresh_counter += 1
        return self.fresh_counter.to_bytes(8, "little") + bytes(LINE - 8)

    @rule(address=st.integers(0, ADDRESSES - 1), data=contents)
    def write(self, address: int, data: bytes) -> None:
        outcome = self.controller.write(address, data, self.now)
        self.model[address] = data
        self.now = outcome.complete_ns + 50.0

    @rule(address=st.integers(0, ADDRESSES - 1))
    def read(self, address: int) -> None:
        outcome = self.controller.read(address, self.now)
        expected = self.model.get(address, bytes(LINE))
        assert outcome.data == expected
        self.now = outcome.complete_ns + 50.0

    @rule()
    def flush_metadata(self) -> None:
        self.controller.flush_metadata(self.now)

    @invariant()
    def index_is_consistent(self) -> None:
        self.controller.check_invariants()

    @invariant()
    def accounting_is_sane(self) -> None:
        stats = self.controller.stats
        assert stats.writes_deduplicated + stats.writes_stored == stats.writes_requested
        assert 0.0 <= stats.write_reduction <= 1.0


DeWriteMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=40, deadline=None
)
TestDeWriteStateMachine = DeWriteMachine.TestCase
