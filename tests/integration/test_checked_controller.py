"""Run the full simulator under CheckedController for every controller.

This is the acceptance gate for the runtime invariant subsystem: each
controller in the repository services realistic traces while every
conservation law is re-verified after every request, and the wrapper is
proven transparent (identical reports with and without checking).
"""

from __future__ import annotations

import pytest

from repro.baselines.i_nvmm import INvmmController
from repro.core.registry import build_controller
from repro.baselines.out_of_line import OutOfLinePageDedupController
from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.baselines.silent_shredder import SilentShredderController
from repro.baselines.traditional_dedup import traditional_dedup_controller
from repro.check.invariants import CheckedController
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name
from repro.workloads.worstcase import worst_case_trace

LINE = 256
ACCESSES = 1_500


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


CONTROLLER_FACTORIES = [
    ("dewrite", lambda: DeWriteController(make_nvm())),
    ("dewrite-direct", lambda: DeWriteController(make_nvm(), mode="direct")),
    ("dewrite-parallel", lambda: DeWriteController(make_nvm(), mode="parallel")),
    ("traditional", lambda: TraditionalSecureNvmController(make_nvm())),
    ("shredder", lambda: SilentShredderController(make_nvm())),
    ("direct-way", lambda: build_controller("direct", make_nvm())),
    ("parallel-way", lambda: build_controller("parallel", make_nvm())),
    ("sha1-dedup", lambda: traditional_dedup_controller(make_nvm())),
    ("i-nvmm", lambda: INvmmController(make_nvm())),
    ("page-dedup", lambda: OutOfLinePageDedupController(make_nvm())),
]


@pytest.mark.parametrize("name,factory", CONTROLLER_FACTORIES)
class TestSimulatorSuiteUnderChecking:
    def test_application_trace(self, name, factory):
        trace = generate_trace(profile_by_name("mcf"), ACCESSES, seed=7)
        checked = CheckedController(factory(), deep_check_interval=128)
        simulate(checked, trace)
        checked.close(now_ns=10.0**12)
        assert checked.operations == ACCESSES
        assert checked.deep_checks >= ACCESSES // 128

    def test_worst_case_trace(self, name, factory):
        trace = worst_case_trace(num_accesses=600, seed=3)
        checked = CheckedController(factory(), deep_check_interval=64)
        simulate(checked, trace)
        checked.close(now_ns=10.0**12)


@pytest.mark.parametrize(
    "app", ["lbm", "mcf", "sjeng"]
)
def test_checked_run_is_bit_identical_to_unchecked(app):
    trace = generate_trace(profile_by_name(app), ACCESSES, seed=11)
    plain_report = simulate(DeWriteController(make_nvm()), trace)
    checked = CheckedController(DeWriteController(make_nvm()), deep_check_interval=100)
    checked_report = simulate(checked, trace)

    assert checked_report.stats.as_dict() == plain_report.stats.as_dict()
    assert checked_report.mean_write_latency_ns == plain_report.mean_write_latency_ns
    assert checked_report.mean_read_latency_ns == plain_report.mean_read_latency_ns
    assert checked_report.energy_nj == plain_report.energy_nj
    # The final sweep (incl. metadata flush) must still come up clean.
    checked.close(now_ns=10.0**12)
