"""Cross-controller integration tests.

Every controller in the repository is, first of all, a memory: under
arbitrary interleaved traffic all of them must return exactly the data a
plain dictionary would.  On top of that, the relative behaviours the paper
builds its argument on (who eliminates what, who pays which latency) must
hold on the same shared traces.
"""

from __future__ import annotations

import random

import pytest

from repro.core.registry import build_controller
from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.baselines.silent_shredder import SilentShredderController
from repro.baselines.traditional_dedup import traditional_dedup_controller
from repro.core.dewrite import DeWriteController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.simulator import simulate
from repro.workloads.generator import generate_trace
from repro.workloads.profiles import profile_by_name
from repro.workloads.worstcase import worst_case_trace

LINE = 256


def make_nvm() -> NvmMainMemory:
    return NvmMainMemory(
        NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * LINE))
    )


CONTROLLER_FACTORIES = [
    ("dewrite", lambda: DeWriteController(make_nvm())),
    ("traditional", lambda: TraditionalSecureNvmController(make_nvm())),
    ("shredder", lambda: SilentShredderController(make_nvm())),
    ("direct", lambda: build_controller("direct", make_nvm())),
    ("parallel", lambda: build_controller("parallel", make_nvm())),
    ("sha1-dedup", lambda: traditional_dedup_controller(make_nvm())),
]


@pytest.mark.parametrize("name,factory", CONTROLLER_FACTORIES)
class TestEveryControllerIsAMemory:
    def test_random_traffic_equals_dict(self, name, factory):
        controller = factory()
        rng = random.Random(hash(name) & 0xFFFF)
        model: dict[int, bytes] = {}
        pool = [bytes([v]) * LINE for v in range(4)] + [bytes(LINE)]
        now = 0.0
        for step in range(400):
            address = rng.randrange(128)
            if rng.random() < 0.55:
                if rng.random() < 0.5:
                    data = pool[rng.randrange(len(pool))]
                else:
                    data = step.to_bytes(8, "little") + rng.randbytes(LINE - 8)
                outcome = controller.write(address, data, now)
                model[address] = data
                now = outcome.complete_ns + rng.uniform(50, 500)
            else:
                outcome = controller.read(address, now)
                assert outcome.data == model.get(address, bytes(LINE)), (
                    f"{name} corrupted line {address} at step {step}"
                )
                now = outcome.complete_ns + rng.uniform(50, 500)
        for address, expected in model.items():
            assert controller.read(address, now).data == expected


class TestRelativeBehaviour:
    def _shared_trace(self, app="sjeng", accesses=6_000):
        return generate_trace(profile_by_name(app), accesses, seed=11)

    def test_dewrite_eliminates_more_than_shredder(self):
        # Fig. 2's point: all-duplicate elimination beats zero-only.
        trace = self._shared_trace("mcf")
        dewrite = DeWriteController(make_nvm())
        shredder = SilentShredderController(make_nvm())
        simulate(dewrite, trace)
        simulate(shredder, trace)
        assert dewrite.stats.write_reduction > shredder.stats.write_reduction

    def test_dewrite_matches_shredder_on_zero_dominated_app(self):
        # sjeng: duplicates are mostly zeros, so the gap narrows (§II-C).
        trace = self._shared_trace("sjeng")
        dewrite = DeWriteController(make_nvm())
        shredder = SilentShredderController(make_nvm())
        simulate(dewrite, trace)
        simulate(shredder, trace)
        gap = dewrite.stats.write_reduction - shredder.stats.write_reduction
        assert 0.0 <= gap < 0.25

    def test_nvm_array_writes_reduced_by_dedup(self):
        trace = self._shared_trace("lbm")
        dewrite = DeWriteController(make_nvm())
        baseline = TraditionalSecureNvmController(make_nvm())
        simulate(dewrite, trace)
        simulate(baseline, trace)
        assert dewrite.nvm.writes < 0.3 * baseline.nvm.writes

    def test_wear_reduced_by_dedup(self):
        trace = self._shared_trace("lbm")
        dewrite = DeWriteController(make_nvm())
        baseline = TraditionalSecureNvmController(make_nvm())
        simulate(dewrite, trace)
        simulate(baseline, trace)
        assert dewrite.nvm.wear.lifetime_factor(baseline.nvm.wear) > 2.0

    def test_worst_case_energy_overhead_small(self):
        trace = worst_case_trace(num_accesses=4_000, seed=2)
        dewrite = DeWriteController(make_nvm())
        baseline = TraditionalSecureNvmController(make_nvm())
        dw = simulate(dewrite, trace)
        base = simulate(baseline, trace)
        assert dw.energy_nj / base.energy_nj < 1.1

    def test_same_trace_same_data_all_controllers(self):
        # After replaying the same workload, every controller must expose
        # an identical logical memory image.
        trace = self._shared_trace("gcc", accesses=2_000)
        final_images = []
        addresses = sorted({a.address for a in trace})
        for _, factory in CONTROLLER_FACTORIES:
            controller = factory()
            simulate(controller, trace)
            now = 10**9
            image = {addr: controller.read(addr, now).data for addr in addresses}
            final_images.append(image)
        for image in final_images[1:]:
            assert image == final_images[0]


class TestMetadataPersistence:
    def test_flush_then_data_survives(self):
        controller = DeWriteController(make_nvm())
        data = {i: bytes([i + 1]) * LINE for i in range(32)}
        now = 0.0
        for address, content in data.items():
            now = controller.write(address, content, now).complete_ns + 100
        controller.flush_metadata(now)
        for address, content in data.items():
            assert controller.read(address, now + 10_000).data == content

    def test_counter_never_reused_for_same_physical_line(self):
        # Pad uniqueness across free/realloc cycles (the §III-C subtlety).
        controller = DeWriteController(make_nvm())
        seen: set[tuple[int, int]] = set()
        original_encrypt = controller.cme.encrypt

        def spying_encrypt(plaintext, address, counter):
            token = (address, counter)
            assert token not in seen, f"OTP reuse at {token}"
            seen.add(token)
            return original_encrypt(plaintext, address, counter)

        controller.cme.encrypt = spying_encrypt
        rng = random.Random(9)
        now = 0.0
        pool = [bytes([v]) * LINE for v in range(3)]
        for step in range(300):
            address = rng.randrange(24)
            if rng.random() < 0.5:
                data = pool[rng.randrange(3)]
            else:
                data = step.to_bytes(8, "little") + bytes(LINE - 8)
            now = controller.write(address, data, now).complete_ns + 50
