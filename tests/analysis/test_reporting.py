"""Table rendering and accessors."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import Table


class TestTable:
    def make(self) -> Table:
        table = Table("Demo", ["app", "value"])
        table.add_row("lbm", 0.981)
        table.add_row("mcf", 0.505)
        return table

    def test_row_arity_checked(self):
        table = self.make()
        with pytest.raises(ValueError, match="cells"):
            table.add_row("only-one")

    def test_column_access(self):
        assert self.make().column("value") == [0.981, 0.505]

    def test_column_unknown(self):
        with pytest.raises(KeyError, match="no column"):
            self.make().column("bogus")

    def test_row_for(self):
        assert self.make().row_for("mcf")[1] == 0.505

    def test_row_for_unknown(self):
        with pytest.raises(KeyError):
            self.make().row_for("gcc")

    def test_render_contains_everything(self):
        table = self.make()
        table.add_note("a note")
        text = table.render()
        assert "Demo" in text
        assert "lbm" in text
        assert "0.981" in text
        assert "note: a note" in text

    def test_render_aligns_columns(self):
        lines = self.make().render().splitlines()
        data_lines = lines[2:]  # after title and underline
        assert len({len(line) for line in data_lines}) == 1

    def test_float_formatting(self):
        table = Table("F", ["a"])
        table.add_row(12345.6)
        table.add_row(0.00001)
        text = table.render()
        assert "12,346" in text
        assert "1.00e-05" in text

    def test_str_is_render(self):
        table = self.make()
        assert str(table) == table.render()
