"""Experiment runners at smoke scale: shapes, orderings, paper directions.

These run the real pipeline on short traces and a small application subset;
the full-scale numbers live in the benchmark suite / EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    ExperimentSettings,
    bit_flip_comparison,
    collision_survey,
    duplication_survey,
    evaluate_all,
    integration_mode_comparison,
    metadata_cache_sweep,
    prediction_accuracy_survey,
    reference_count_survey,
    storage_overhead_table,
    system_comparison_table,
    table1_detection_latency,
    traditional_dedup_comparison,
    worst_case_comparison,
    write_reduction_survey,
)


@pytest.fixture(scope="module")
def settings() -> ExperimentSettings:
    return ExperimentSettings(
        accesses=5_000, seed=7, applications=("lbm", "mcf", "vips")
    )


class TestDuplicationSurvey:
    def test_rows_and_ordering(self, settings):
        table = duplication_survey(settings)
        assert [r[0] for r in table.rows] == ["lbm", "mcf", "vips", "AVERAGE"]
        lbm, mcf, vips = (table.row_for(n)[1] for n in ("lbm", "mcf", "vips"))
        assert lbm > mcf > vips  # Fig. 2 ordering

    def test_ratios_in_unit_interval(self, settings):
        for row in duplication_survey(settings).rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0


class TestPredictionSurvey:
    def test_window_three_beats_one_on_average(self, settings):
        table = prediction_accuracy_survey(settings)
        average = table.row_for("AVERAGE")
        assert average[2] > average[1]
        assert average[1] > 0.8  # near the paper's 92 %


class TestTable1:
    def test_dewrite_beats_traditional_on_both_rows(self):
        table = table1_detection_latency()
        dewrite = table.row_for("DeWrite")
        assert dewrite[4] == pytest.approx(90.5)
        assert dewrite[5] == pytest.approx(15.0)
        for row in table.rows:
            if row[0] == "traditional dedup":
                assert row[4] > dewrite[4]
                assert row[5] > dewrite[5]


class TestSystemComparison:
    def test_dewrite_wins_where_it_should(self, settings):
        table = system_comparison_table(settings)
        lbm = table.row_for("lbm")
        assert lbm[2] > 2.0  # write speedup on the 98 % dup app
        assert lbm[3] > 1.2  # read speedup
        assert lbm[4] > 1.5  # IPC
        assert lbm[5] < 0.5  # energy
        vips = table.row_for("vips")
        assert 0.7 <= vips[2] <= 1.3  # near-parity on the non-dup app

    def test_write_reduction_tracks_duplication(self, settings):
        table = system_comparison_table(settings)
        assert table.row_for("lbm")[1] > table.row_for("mcf")[1] > table.row_for("vips")[1]


class TestWriteReduction:
    def test_reduction_close_to_available(self, settings):
        table = write_reduction_survey(settings)
        for row in table.rows:
            if row[0] == "AVERAGE":
                continue
            available, reduced = row[1], row[2]
            assert reduced <= available + 0.03
            assert reduced >= available - 0.12


class TestBitFlips:
    def test_paper_orderings(self, settings):
        table = bit_flip_comparison(settings)
        average = table.row_for("AVERAGE")
        dcw, fnw, deuce = average[1], average[2], average[3]
        assert 0.45 <= dcw <= 0.55  # diffusion defeats DCW
        assert fnw < dcw
        assert deuce < fnw
        # DeWrite composes: combined columns beat standalone ones.
        assert average[7] < dcw
        assert average[8] < fnw
        assert average[9] < deuce


class TestModes:
    def test_latency_and_energy_bracketing(self, settings):
        table = integration_mode_comparison(settings)
        average = table.row_for("AVERAGE")
        direct_lat, parallel_lat, dewrite_lat = average[1], average[2], average[3]
        direct_e, parallel_e, dewrite_e = average[4], average[5], average[6]
        assert parallel_lat <= 1.0  # parallel at or below direct
        assert dewrite_lat <= 1.02  # DeWrite near the parallel way
        assert direct_e <= 1.0
        assert dewrite_e <= 1.05  # DeWrite near the direct way


class TestWorstCase:
    def test_near_parity(self):
        table = worst_case_comparison(ExperimentSettings(accesses=5_000))
        ipc_row = table.row_for("ipc")
        assert ipc_row[3] == pytest.approx(1.0, abs=0.05)
        write_row = table.row_for("write_latency_ns")
        assert write_row[3] == pytest.approx(1.0, abs=0.1)


class TestCollisionsAndReferences:
    def test_collision_rate_tiny(self, settings):
        table = collision_survey(settings)
        assert table.row_for("AVERAGE")[3] < 0.001  # paper: < 0.01 %

    def test_references_below_cap(self, settings):
        table = reference_count_survey(settings)
        # Moderate-duplication apps keep almost all references below 255.
        assert table.row_for("mcf")[3] > 0.99
        assert table.row_for("vips")[3] > 0.99
        # The 98 %-duplicate app exercises saturation: at smoke scale its
        # live-line population is tiny, so only the cap itself is asserted.
        assert table.row_for("lbm")[2] == 255


class TestStorageOverhead:
    def test_dewrite_cheapest_dedup_scheme(self):
        table = storage_overhead_table()
        dewrite = table.row_for("DeWrite")[2]
        deuce = table.row_for("DEUCE")[2]
        no_coloc = table.row_for("DeWrite (no colocation)")[2]
        assert dewrite < no_coloc
        assert dewrite < deuce
        assert 0.05 <= dewrite <= 0.08  # the paper's ~6.25 %


class TestMetadataCacheSweep:
    def test_hit_rate_monotone_in_cache_size(self):
        settings = ExperimentSettings(accesses=3_000, applications=("mcf",))
        table = metadata_cache_sweep(
            settings, cache_sizes_kb=(16, 256), prefetch_entries=(256,)
        )
        small = table.rows[0]
        big = table.rows[1]
        assert big[2] >= small[2] - 0.02  # hash cache
        assert big[3] >= small[3] - 0.02  # address map


class TestTraditionalDedup:
    def test_dewrite_faster(self):
        settings = ExperimentSettings(accesses=3_000, applications=("lbm",))
        table = traditional_dedup_comparison(settings)
        assert table.row_for("lbm")[3] > 1.5


class TestCaching:
    def test_evaluate_all_memoizes_through_provider(self, settings):
        from repro.runner import provider

        provider.reset()
        first = evaluate_all(settings)
        executed = provider.active().stats.executed
        second = evaluate_all(settings)
        # The second sweep is answered entirely from the provider memo:
        # no new job executions, and identical results.
        assert provider.active().stats.executed == executed
        assert provider.active().stats.memo_hits > 0
        for name in settings.applications:
            assert first[name] == second[name]
