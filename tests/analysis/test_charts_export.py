"""ASCII charts and JSON export."""

from __future__ import annotations

import json

import pytest

from repro.analysis.charts import render_bar_chart
from repro.analysis.export import dump_json, load_json, report_to_dict, table_to_dict
from repro.analysis.reporting import Table
from repro.baselines.secure_nvm import TraditionalSecureNvmController
from repro.nvm.config import NvmConfig, NvmOrganization
from repro.nvm.memory import NvmMainMemory
from repro.system.simulator import simulate
from repro.workloads.trace import MemoryAccess, Trace


def sample_table() -> Table:
    table = Table("Speedups", ["app", "write_speedup"])
    table.add_row("lbm", 4.0)
    table.add_row("mcf", 2.0)
    table.add_row("vips", 1.0)
    return table


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = render_bar_chart(sample_table(), "write_speedup", width=40)
        lines = chart.splitlines()
        lbm = next(l for l in lines if l.strip().startswith("lbm"))
        mcf = next(l for l in lines if l.strip().startswith("mcf"))
        assert lbm.count("█") == 40
        assert mcf.count("█") == 20

    def test_values_printed(self):
        chart = render_bar_chart(sample_table(), "write_speedup")
        assert "4" in chart and "2" in chart

    def test_reference_marker(self):
        chart = render_bar_chart(sample_table(), "write_speedup", reference=1.0)
        assert "|" in chart
        assert "marks 1" in chart

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            render_bar_chart(sample_table(), "nope")

    def test_empty_table(self):
        table = Table("Empty", ["a", "b"])
        assert "(no rows)" in render_bar_chart(table, "b")


class TestJsonExport:
    def test_table_roundtrip(self, tmp_path):
        table = sample_table()
        table.add_note("a note")
        path = tmp_path / "t.json"
        dump_json(table_to_dict(table), path)
        loaded = load_json(path)
        assert loaded["title"] == "Speedups"
        assert loaded["rows"][0] == ["lbm", 4.0]
        assert loaded["notes"] == ["a note"]

    def test_report_is_json_serialisable(self, tmp_path):
        nvm = NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=1024 * 256))
        )
        trace = Trace(
            "t",
            [
                MemoryAccess(core=0, op="write", address=0, data=bytes(256),
                             gap_instructions=10, persistent=True),
                MemoryAccess(core=0, op="read", address=0, gap_instructions=10),
            ],
        )
        report = simulate(TraditionalSecureNvmController(nvm), trace)
        payload = report_to_dict(report)
        text = json.dumps(payload)  # must not raise
        assert json.loads(text)["workload"] == "t"
        assert payload["wear"]["total_line_writes"] >= 1
