"""§V related-work comparison experiment."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import ExperimentSettings, related_work_comparison


@pytest.fixture(scope="module")
def table():
    settings = ExperimentSettings(accesses=3_000, seed=2, applications=("mcf", "lbm"))
    return related_work_comparison(settings)


class TestStructuralClaims:
    def test_all_five_schemes_present(self, table):
        schemes = {row[0] for row in table.rows}
        assert schemes == {
            "traditional secure NVM",
            "out-of-line page dedup",
            "Silent Shredder",
            "i-NVMM",
            "DeWrite",
        }

    def test_out_of_line_saves_no_writes(self, table):
        assert table.row_for("out-of-line page dedup")[1] == 0.0

    def test_dewrite_beats_shredder_on_reduction(self, table):
        assert table.row_for("DeWrite")[1] > table.row_for("Silent Shredder")[1]

    def test_only_i_nvmm_exposes_plaintext(self, table):
        for row in table.rows:
            if row[0] == "i-NVMM":
                assert row[3] > 0
            else:
                assert row[3] == 0

    def test_baseline_energy_is_unity(self, table):
        assert table.row_for("traditional secure NVM")[4] == pytest.approx(1.0)

    def test_dewrite_cheapest_encrypted_scheme(self, table):
        dewrite = table.row_for("DeWrite")[4]
        assert dewrite < table.row_for("traditional secure NVM")[4]
        assert dewrite < table.row_for("out-of-line page dedup")[4]
