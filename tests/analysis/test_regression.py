"""Result-regression comparison utility."""

from __future__ import annotations

import math

import pytest

from repro.analysis.export import table_to_dict
from repro.analysis.regression import compare_tables
from repro.analysis.reporting import Table


def make_export(lbm=4.0, mcf=2.0) -> dict:
    table = Table("T", ["app", "speedup", "label"])
    table.add_row("lbm", lbm, "x")
    table.add_row("mcf", mcf, "y")
    return table_to_dict(table)


class TestCompare:
    def test_identical_is_clean(self):
        report = compare_tables(make_export(), make_export())
        assert report.clean
        assert report.cells_compared == 4
        assert "clean" in report.summary()

    def test_within_tolerance_is_clean(self):
        report = compare_tables(make_export(lbm=4.0), make_export(lbm=4.1))
        assert report.clean

    def test_drift_detected(self):
        report = compare_tables(make_export(lbm=4.0), make_export(lbm=6.0))
        assert not report.clean
        assert len(report.drifts) == 1
        drift = report.drifts[0]
        assert drift.row_key == "lbm"
        assert drift.column == "speedup"
        assert drift.relative_change == pytest.approx(0.5)
        assert "lbm/speedup" in report.summary()

    def test_non_numeric_mismatch_detected(self):
        current = make_export()
        current["rows"][0][2] = "CHANGED"
        report = compare_tables(make_export(), current)
        assert len(report.drifts) == 1

    def test_missing_and_extra_rows(self):
        current = make_export()
        current["rows"] = [current["rows"][0], ["gcc", 1.5, "z"]]
        report = compare_tables(make_export(), current)
        assert report.missing_rows == ["mcf"]
        assert report.extra_rows == ["gcc"]
        assert not report.clean

    def test_header_mismatch_raises(self):
        other = make_export()
        other["headers"] = ["app", "other", "label"]
        with pytest.raises(ValueError, match="header mismatch"):
            compare_tables(make_export(), other)

    def test_zero_reference_reports_as_appeared(self):
        report = compare_tables(make_export(lbm=0.0), make_export(lbm=0.5))
        assert not report.clean
        assert report.drifts == []
        assert len(report.appeared) == 1
        drift = report.appeared[0]
        assert drift.category == "appeared"
        # Never ±inf: a zero reference has nothing to be relative to.
        assert math.isnan(drift.relative_change)
        assert "appeared" in str(drift)
        assert "1 appeared" in report.summary()

    def test_zero_current_reports_as_vanished(self):
        report = compare_tables(make_export(lbm=0.5), make_export(lbm=0.0))
        assert not report.clean
        assert report.drifts == []
        assert len(report.vanished) == 1
        drift = report.vanished[0]
        assert drift.category == "vanished"
        assert drift.relative_change == pytest.approx(-1.0)
        assert "vanished" in str(drift)

    def test_all_drifts_spans_categories(self):
        report = compare_tables(
            make_export(lbm=0.0, mcf=2.0), make_export(lbm=0.5, mcf=9.0)
        )
        assert len(report.all_drifts) == 2
        assert {d.category for d in report.all_drifts} == {"appeared", "changed"}
