"""Command-line interface: ``python -m repro``.

Subcommands:

- ``run``      — regenerate many figures at once on a parallel worker
  pool with a persistent result cache (the fast full reproduction);
  every run writes a ``manifest.json`` recording exactly what produced
  the output (see :mod:`repro.obs.manifest`);
- ``trace``    — run one figure's pipeline with the structured tracer
  attached and print the per-stage latency breakdown (p50/p95/p99);
  ``--out`` streams the raw span records as JSONL; ``--chrome`` exports
  the spans in Chrome trace-event format (sim-time timeline, worker
  lanes), either from the run just traced or from an existing JSONL
  file via ``--from-jsonl``;
- ``watch``    — live terminal dashboard over the event stream a run
  emits with ``run --events``: jobs in flight, warm-cache hit rate,
  throughput, ETA from the content-keyed plan, and the stage split when
  snapshots carry one (see :mod:`repro.obs.watch`);
- ``ledger``   — append-only cross-run index over bench records and run
  manifests (``ledger add``/``ledger ls``; see :mod:`repro.obs.ledger`);
- ``trend``    — per-case time series across the committed bench anchors
  (or a ledger file) with step-regression flags and stage-drift
  attribution;
- ``profile``  — run one figure's pipeline with the summary-mode stage
  accumulator and the batch profiler attached: the fused kernels stay
  active (full tracing forces the scalar path), the stage table is
  deterministic, and ``--flamegraph`` writes collapsed-stack lines with
  sim-ns weights; ``--manifest`` records the stage section for ``diff``;
- ``stats``    — validate and summarise a run manifest (``--json`` emits
  the machine-readable digest the ``diff`` verb and CI consume);
- ``timeline`` — run windowed simulations and print the in-run
  time-series (dedup ratio, write reduction, cache hit rate, bank waits,
  bit flips per sim-time window); ``--manifest`` records the merged
  timeline in a run manifest for later ``diff``;
- ``faults``   — deterministic fault-injection campaign: crash each
  controller at seeded points, recover its metadata under each
  persistence policy, audit every written line against the replay
  oracle and print the vulnerability-window table; ``--manifest``
  records the verdicts for later ``diff`` (see :mod:`repro.faults`);
- ``wear``     — render per-bank / per-region wear tables, an ASCII
  address-space heatmap and a projected-lifetime panel vs a baseline;
- ``diff``     — compare two run manifests (plus optional JSONL traces
  and figure-JSON directories): deterministic counter/timeline drift
  gates the exit code, wall-clock deltas are informational;
- ``bench``    — time the hot paths (controller loops, hash circuits,
  metadata cache), write a ``BENCH_<gitsha>.json`` record and optionally
  gate against a baseline record (``--check``) or against *every*
  committed anchor in a directory (``--gate``);
- ``serve``    — run the sharded multi-tenant dedup-memory service:
  synthesize seeded zipfian tenant traffic, drive it through N data-plane
  shards under the lease/heartbeat control plane, and report cross-tenant
  dedup ratio, per-shard wear balance and p50/p99 simulated latency
  (``--events`` streams lifecycle records for ``repro watch``);
- ``loadgen``  — synthesize the same seeded traffic plan without running
  a simulation: per-shard tenant/access balance, admission outcomes and
  a content census predicting the dedup ratio;
- ``compare``  — run one application under the traditional secure NVM and
  under DeWrite, print the side-by-side report;
- ``figure``   — regenerate one of the paper's tables/figures by id;
- ``regress``  — compare two exported figure JSONs for drift;
- ``check``    — run the simlint static rules and/or the runtime
  invariant pass (see :mod:`repro.check`);
- ``list``     — enumerate figure ids, applications and controllers.

Figure ids come from the declarative experiment registry
(:mod:`repro.analysis.registry`); controllers are built through the
controller registry (:mod:`repro.core.registry`).  ``run``, ``figure``
and ``compare`` share the cache options ``--parallel`` / ``--cache-dir``
/ ``--no-cache`` / ``--job-timeout``.

Examples::

    python -m repro run --parallel 8
    python -m repro run system modes --apps lbm,mcf --accesses 5000
    python -m repro run --parallel 4 --events /tmp/events.jsonl
    python -m repro watch /tmp/events.jsonl --once
    python -m repro trace fig14 --out /tmp/trace.jsonl
    python -m repro trace --from-jsonl /tmp/trace.jsonl --chrome /tmp/trace.chrome.json
    python -m repro ledger add benchmarks/results/BENCH_*.json
    python -m repro trend benchmarks/results
    python -m repro profile fig14 --flamegraph /tmp/stages.folded
    python -m repro stats manifest.json
    python -m repro timeline system --apps lbm --window-ns 2e5 --csv tl.csv
    python -m repro faults system --apps lbm --points 0.5 --cell-faults 2
    python -m repro wear fig12 --app lbm --metric flips
    python -m repro diff old/manifest.json new/manifest.json
    python -m repro bench --out bench/ --check bench/BENCH_abc123.json
    python -m repro serve --tenants 1000000 --shards 8 --accesses 250000
    python -m repro loadgen --tenants 1000000 --shards 8 --json plan.json
    python -m repro compare --app lbm --accesses 20000
    python -m repro figure fig13 --apps lbm,mcf,vips
    python -m repro check --lint src/repro
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments as ex
from repro.analysis import registry as figures
from repro.workloads.profiles import ALL_PROFILES, profile_by_name


def _add_settings_args(parser: argparse.ArgumentParser, default_accesses: int) -> None:
    parser.add_argument("--apps", default="", help="comma-separated subset (default: all)")
    parser.add_argument("--accesses", type=int, default=default_accesses)
    parser.add_argument("--seed", type=int, default=1)


def _add_traffic_args(parser: argparse.ArgumentParser) -> None:
    """The seeded multi-tenant traffic knobs shared by serve and loadgen."""
    parser.add_argument("--tenants", type=int, default=1_000_000,
                        help="addressable tenant population (default 1,000,000)")
    parser.add_argument("--accesses", type=int, default=250_000,
                        help="global interleaved access budget (default 250,000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--zipf", type=float, default=1.1, dest="zipf_s",
                        help="zipf skew of tenant popularity (default 1.1)")
    parser.add_argument("--overlap", type=float, default=0.35,
                        help="cross-tenant shared-content write fraction (default 0.35)")
    parser.add_argument("--pool-lines", type=int, default=4096,
                        help="shared content pool size in lines (default 4096)")
    parser.add_argument("--lines-per-tenant", type=int, default=64,
                        help="address window carved per tenant (default 64 lines)")
    parser.add_argument("--read-fraction", type=float, default=0.3,
                        help="read share of admitted accesses (default 0.3)")
    parser.add_argument("--persistent-fraction", type=float, default=0.05,
                        help="flush+fence-ordered write share (default 0.05)")


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--parallel", type=int, default=1, metavar="N",
        help="worker processes for cache misses (default 1: serial)",
    )
    parser.add_argument(
        "--cache-dir", default="", metavar="DIR",
        help="result cache location (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache for this invocation",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-job wall-clock budget before retry (default 600)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="DeWrite (MICRO 2018) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="regenerate figures on a parallel worker pool with a result cache"
    )
    run.add_argument(
        "figures", nargs="*", metavar="FIGURE",
        help="figure ids to regenerate (default: every registered figure)",
    )
    _add_settings_args(run, default_accesses=20_000)
    _add_cache_args(run)
    run.add_argument(
        "--out", default="", metavar="DIR",
        help="also write each rendered table to DIR/<figure>.txt",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="print one line per resolved job on stderr "
             "(default: on when --parallel > 1)",
    )
    run.add_argument(
        "--manifest", default="manifest.json", metavar="PATH",
        help="where to write the run manifest (default: ./manifest.json)",
    )
    run.add_argument(
        "--no-manifest", action="store_true",
        help="skip writing the run manifest",
    )
    run.add_argument(
        "--events", default="", metavar="PATH",
        help="stream schema-v1 lifecycle events to PATH "
             "(JSONL file, or an existing unix socket a `repro watch` holds)",
    )

    trace = sub.add_parser(
        "trace", help="trace one figure's pipeline; print per-stage latency percentiles"
    )
    trace.add_argument(
        "figure", nargs="?", default="",
        help="figure id or paper alias (fig14/fig16/fig17/fig19 resolve to "
             "'system'; optional with --from-jsonl)",
    )
    trace.add_argument("--app", default="lbm", help="workload to trace (default lbm)")
    trace.add_argument("--accesses", type=int, default=2_000)
    trace.add_argument("--seed", type=int, default=1)
    trace.add_argument(
        "--controller", default="dewrite",
        help="controller to instrument (default dewrite; see `list`)",
    )
    trace.add_argument(
        "--out", default="", metavar="PATH",
        help="stream raw span/event records to PATH as JSONL",
    )
    trace.add_argument(
        "--chrome", default="", metavar="PATH",
        help="export the trace in Chrome trace-event format to PATH "
             "(open in chrome://tracing or Perfetto)",
    )
    trace.add_argument(
        "--from-jsonl", default="", metavar="PATH", dest="from_jsonl",
        help="convert an existing trace JSONL instead of running a simulation "
             "(requires --chrome)",
    )

    watch = sub.add_parser(
        "watch", help="live dashboard over a run's event stream (see run --events)"
    )
    watch.add_argument(
        "target",
        help="events.jsonl path, a run directory containing events.jsonl, "
             "or (with --socket) a unix socket path to bind",
    )
    watch.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="refresh interval (default 0.5)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render one frame from the stream's current state and exit",
    )
    watch.add_argument(
        "--socket", action="store_true",
        help="bind TARGET as a unix datagram socket and watch live "
             "(start the watcher first, then `repro run --events TARGET`)",
    )
    watch.add_argument(
        "--max-wait", type=float, default=0.0, metavar="SECONDS",
        help="give up after this much wall time without run_finished "
             "(default 0: wait indefinitely)",
    )

    ledger = sub.add_parser(
        "ledger", help="append-only cross-run index over bench records and manifests"
    )
    ledger.add_argument("action", choices=("add", "ls"), help="add records / list entries")
    ledger.add_argument(
        "records", nargs="*", metavar="FILE",
        help="bench BENCH_*.json or manifest.json files to index (for `add`)",
    )
    ledger.add_argument(
        "--ledger", default="ledger.json", metavar="PATH", dest="ledger_path",
        help="ledger file location (default: ./ledger.json)",
    )
    ledger.add_argument(
        "--json", action="store_true", help="emit `ls` output as JSON"
    )

    trend = sub.add_parser(
        "trend", help="per-case bench time series across commits, with regression flags"
    )
    trend.add_argument(
        "source", nargs="?", default="benchmarks/results",
        help="ledger file or directory of BENCH_*.json anchors "
             "(default: benchmarks/results)",
    )
    trend.add_argument(
        "--threshold", type=float, default=0.30,
        help="relative step-regression threshold (default 30 %%)",
    )
    trend.add_argument(
        "--json", action="store_true", help="emit the trend report as JSON"
    )

    profile = sub.add_parser(
        "profile",
        help="profile one figure's pipeline on the fused fast path "
        "(summary-mode stages + per-batch wall timing)",
    )
    profile.add_argument(
        "figure",
        help="figure id or paper alias (fig14/fig16/fig17/fig19 resolve to 'system')",
    )
    profile.add_argument("--app", default="lbm", help="workload to profile (default lbm)")
    profile.add_argument("--accesses", type=int, default=2_000)
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "--controller", default="dewrite",
        help="controller to profile (default dewrite; see `list`)",
    )
    profile.add_argument(
        "--flamegraph", default="", metavar="PATH",
        help="write collapsed-stack flamegraph lines (sim-ns weights) to PATH",
    )
    profile.add_argument(
        "--json", default="", metavar="PATH",
        help="write the full profile payload (stages + wall section) to PATH",
    )
    profile.add_argument(
        "--manifest", default="", metavar="PATH",
        help="write a run manifest carrying the stage section (for `repro diff`)",
    )

    stats = sub.add_parser("stats", help="validate and summarise a run manifest")
    stats.add_argument(
        "manifest", nargs="?", default="manifest.json",
        help="manifest path (default: ./manifest.json)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable summary digest as JSON "
             "(what `repro diff` and CI consume)",
    )

    timeline = sub.add_parser(
        "timeline", help="windowed in-run time-series for one figure's workloads"
    )
    timeline.add_argument(
        "figure",
        help="figure id or paper alias (labels the run; fig14 etc. resolve to 'system')",
    )
    _add_settings_args(timeline, default_accesses=20_000)
    _add_cache_args(timeline)
    timeline.add_argument(
        "--controller", default="dewrite",
        help="controller to sample (default dewrite; see `list`)",
    )
    timeline.add_argument(
        "--window-ns", type=float, default=1e6, metavar="NS",
        help="sim-time window width in ns (default 1e6)",
    )
    timeline.add_argument(
        "--max-rows", type=int, default=40,
        help="cap on printed windows (default 40; export is never capped)",
    )
    timeline.add_argument(
        "--csv", default="", metavar="PATH", help="also export every window as CSV"
    )
    timeline.add_argument(
        "--jsonl", default="", metavar="PATH",
        help="also export one JSON object per window as JSONL",
    )
    timeline.add_argument(
        "--manifest", default="", metavar="PATH",
        help="also write a run manifest embedding the merged timeline",
    )

    from repro.faults.campaign import DEFAULT_POINTS, DEFAULT_POLICIES
    from repro.faults.plan import CELL_FAULT_MODES

    faults = sub.add_parser(
        "faults", help="crash/recover/audit campaign across persistence policies"
    )
    faults.add_argument(
        "figure",
        help="figure id or paper alias labelling the campaign (e.g. 'system')",
    )
    _add_settings_args(faults, default_accesses=4_000)
    _add_cache_args(faults)
    faults.add_argument(
        "--controllers", default="", metavar="NAMES",
        help="comma-separated controller subset (default: all registered)",
    )
    faults.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES), metavar="NAMES",
        help="comma-separated persistence policies "
             f"(default: {','.join(DEFAULT_POLICIES)})",
    )
    faults.add_argument(
        "--points", default=",".join(str(p) for p in DEFAULT_POINTS),
        metavar="FRACTIONS",
        help="crash points as trace fractions in (0, 1] "
             f"(default {','.join(str(p) for p in DEFAULT_POINTS)})",
    )
    faults.add_argument(
        "--interval-ns", type=float, default=100_000.0, metavar="NS",
        help="periodic-writeback flush interval in ns (default 1e5)",
    )
    faults.add_argument(
        "--cell-faults", type=int, default=0, metavar="N",
        help="wear-correlated cell faults injected at the crash instant (default 0)",
    )
    faults.add_argument(
        "--cell-fault-mode", choices=CELL_FAULT_MODES, default="bit_flip",
        help="cell fault model (default bit_flip)",
    )
    faults.add_argument(
        "--drop-probability", type=float, default=0.0, metavar="P",
        help="probability each droppable metadata persist is torn (default 0)",
    )
    faults.add_argument(
        "--json", default="", metavar="PATH",
        help="also dump every scenario verdict as JSON",
    )
    faults.add_argument(
        "--manifest", default="", metavar="PATH",
        help="also write a run manifest embedding the faults section",
    )

    wear = sub.add_parser(
        "wear", help="wear heatmap, per-bank/per-region tables and lifetime panel"
    )
    wear.add_argument(
        "figure",
        help="figure id or paper alias (labels the run; fig12/fig13 are the wear figures)",
    )
    wear.add_argument("--app", default="lbm", help="workload to run (default lbm)")
    wear.add_argument("--accesses", type=int, default=20_000)
    wear.add_argument("--seed", type=int, default=1)
    wear.add_argument(
        "--controller", default="dewrite",
        help="controller under test (default dewrite)",
    )
    wear.add_argument(
        "--baseline", default="secure-nvm",
        help="baseline controller for the lifetime panel (default secure-nvm; "
             "'none' skips the second run)",
    )
    wear.add_argument("--rows", type=int, default=8, help="heatmap rows (default 8)")
    wear.add_argument("--cols", type=int, default=32, help="heatmap columns (default 32)")
    wear.add_argument(
        "--regions", type=int, default=8,
        help="contiguous address regions in the wear table (default 8)",
    )
    wear.add_argument(
        "--metric", choices=("writes", "flips"), default="writes",
        help="heatmap intensity metric (default writes)",
    )
    wear.add_argument(
        "--csv", default="", metavar="PATH", help="also export the heatmap grid as CSV"
    )

    diff = sub.add_parser(
        "diff", help="compare two run manifests (and optional traces/figures)"
    )
    diff.add_argument("manifest_a", help="reference run manifest")
    diff.add_argument("manifest_b", help="current run manifest")
    diff.add_argument(
        "--trace-a", default="", metavar="PATH",
        help="JSONL trace of run A (enables per-stage percentile deltas)",
    )
    diff.add_argument(
        "--trace-b", default="", metavar="PATH", help="JSONL trace of run B"
    )
    diff.add_argument(
        "--figures-a", default="", metavar="DIR",
        help="directory of figure JSONs from run A (enables figure drift)",
    )
    diff.add_argument(
        "--figures-b", default="", metavar="DIR",
        help="directory of figure JSONs from run B",
    )
    diff.add_argument(
        "--tolerance", type=float, default=0.05,
        help="relative tolerance for stage/figure comparisons (default 5 %%)",
    )
    diff.add_argument(
        "--json", action="store_true", help="emit the full diff as JSON"
    )

    bench = sub.add_parser(
        "bench", help="microbenchmark the hot paths; write/gate BENCH_<gitsha>.json"
    )
    bench.add_argument("--accesses", type=int, default=1_200,
                       help="trace length per controller case (default 1200)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="interleaved repeats; best is kept (default 3)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument(
        "--controllers", default="", metavar="NAMES",
        help="comma-separated controller subset (default: all registered)",
    )
    bench.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for the BENCH_<gitsha>.json record (default .)",
    )
    bench.add_argument(
        "--check", default="", metavar="BASELINE",
        help="baseline BENCH_*.json to gate against (exit 1 on regression)",
    )
    bench.add_argument(
        "--gate", default="", metavar="DIR",
        help="gate against every BENCH_*.json anchor in DIR at once "
             "(composite per-case-best baseline; exit 1 on regression)",
    )
    bench.add_argument(
        "--threshold", type=float, default=0.30,
        help="relative regression threshold for --check/--gate (default 30 %%)",
    )

    compare = sub.add_parser("compare", help="baseline vs DeWrite on one application")
    compare.add_argument("--app", default="lbm", help="application name (see `list`)")
    compare.add_argument("--accesses", type=int, default=20_000)
    compare.add_argument("--seed", type=int, default=1)
    _add_cache_args(compare)

    figure = sub.add_parser("figure", help="regenerate one paper table/figure")
    figure.add_argument("id", choices=figures.experiment_ids())
    _add_settings_args(figure, default_accesses=20_000)
    _add_cache_args(figure)
    figure.add_argument(
        "--chart", default="", metavar="COLUMN",
        help="also render COLUMN as an ASCII bar chart",
    )
    figure.add_argument(
        "--json", default="", metavar="PATH", help="also dump the table as JSON"
    )

    regress = sub.add_parser(
        "regress", help="compare two exported figure JSONs for drift"
    )
    regress.add_argument("reference", help="reference JSON (from figure --json)")
    regress.add_argument("current", help="current JSON to check")
    regress.add_argument("--tolerance", type=float, default=0.05,
                         help="relative tolerance per cell (default 5 %%)")

    check = sub.add_parser(
        "check", help="simulator lint (SIM001-SIM104) and runtime invariant checks"
    )
    check.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the installed repro package)",
    )
    check.add_argument(
        "--lint", action="store_true", help="run only the static lint pass"
    )
    check.add_argument(
        "--invariants", action="store_true", help="run only the runtime invariant pass"
    )
    check.add_argument(
        "--accesses", type=int, default=4_000,
        help="trace length for the invariant pass (default 4000)",
    )
    check.add_argument("--seed", type=int, default=1)
    check.add_argument(
        "--json", action="store_true", dest="json_output",
        help="print the lint report as JSON instead of text",
    )
    check.add_argument(
        "--sarif", default="", metavar="PATH",
        help="also write the lint report as SARIF 2.1.0 to PATH",
    )
    check.add_argument(
        "--baseline", default="", metavar="PATH",
        help="suppress findings recorded in this baseline file "
             "(default: nearest simlint-baseline.json above the first target)",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file and report every finding",
    )
    check.add_argument(
        "--write-baseline", default="", metavar="PATH",
        help="record the current findings as the new baseline and exit 0",
    )

    serve = sub.add_parser(
        "serve",
        help="run the sharded multi-tenant dedup-memory service over seeded traffic",
    )
    _add_traffic_args(serve)
    serve.add_argument("--shards", type=int, default=8,
                       help="data-plane shard count (default 8)")
    serve.add_argument("--controller", default="dewrite",
                       help="controller each shard runs (default dewrite)")
    serve.add_argument("--quota", type=int, default=0, metavar="N",
                       help="per-tenant admitted-access quota (0 = unbounded)")
    serve.add_argument("--max-slots", type=int, default=0, metavar="N",
                       help="per-shard tenant address-slot cap (0 = unbounded)")
    _add_cache_args(serve)
    serve.add_argument("--events", default="", metavar="PATH",
                       help="emit lifecycle events (JSONL file or watch socket)")
    serve.add_argument("--json", default="", dest="json_out", metavar="PATH",
                       help="write the service report as canonical JSON")
    serve.add_argument("--tables", default="", metavar="DIR",
                       help="write wear-balance and dedup-ratio CSV tables to DIR")
    serve.add_argument("--progress", action="store_true",
                       help="print one line per resolved shard job")

    loadgen = sub.add_parser(
        "loadgen",
        help="synthesize the seeded multi-tenant traffic plan without simulating",
    )
    _add_traffic_args(loadgen)
    loadgen.add_argument("--shards", type=int, default=8,
                         help="shard count the plan routes over (default 8)")
    loadgen.add_argument("--quota", type=int, default=0, metavar="N",
                         help="per-tenant admitted-access quota (0 = unbounded)")
    loadgen.add_argument("--max-slots", type=int, default=0, metavar="N",
                         help="per-shard tenant address-slot cap (0 = unbounded)")
    loadgen.add_argument("--json", default="", dest="json_out", metavar="PATH",
                         help="write the plan as canonical JSON")

    sub.add_parser("list", help="list figure ids, applications and controllers")
    return parser


def _settings(args: argparse.Namespace) -> ex.ExperimentSettings:
    if getattr(args, "apps", ""):
        applications = tuple(name.strip() for name in args.apps.split(",") if name.strip())
    else:
        applications = tuple(p.name for p in ALL_PROFILES)
    return ex.ExperimentSettings(
        accesses=args.accesses, seed=args.seed, applications=applications
    )


def _configure_runner(args: argparse.Namespace):
    """Install the CLI's result provider; returns the cache (or None)."""
    from repro.runner import provider
    from repro.runner.cache import ResultCache

    if getattr(args, "no_cache", False):
        provider.configure(cache=None)
        return None
    cache_dir = getattr(args, "cache_dir", "")
    cache = ResultCache(cache_dir) if cache_dir else ResultCache()
    provider.configure(cache=cache)
    return cache


def _warm_jobs(args: argparse.Namespace, jobs, cache, progress=None, events=None):
    """Resolve planned jobs (parallel when requested); returns the report."""
    from repro.obs.events import NULL_EVENTS
    from repro.runner.engine import run_jobs

    return run_jobs(
        jobs,
        parallel=getattr(args, "parallel", 1),
        cache=cache,
        job_timeout_s=getattr(args, "job_timeout", 600.0),
        progress=progress,
        events=events if events is not None else NULL_EVENTS,
    )


def _event_bus(path: str):
    """Build the run's event bus for ``--events PATH``.

    An existing unix socket at PATH (a waiting ``repro watch --socket``)
    gets a datagram sink; anything else is treated as a JSONL file.
    """
    import pathlib

    from repro.obs.events import EventBus, SocketSink
    from repro.obs.sinks import JsonlSink

    target = pathlib.Path(path)
    if target.exists() and target.is_socket():
        return EventBus(SocketSink(target))
    return EventBus(JsonlSink(path))


def _run_run(args: argparse.Namespace) -> int:
    from repro.runner.engine import stderr_progress

    settings = _settings(args)
    requested = list(args.figures) if args.figures else figures.experiment_ids()
    ids: list[str] = []
    for spec_id in requested:
        resolved = figures.resolve_id(spec_id)
        figures.experiment(resolved)  # raises with the known ids on a typo
        if resolved not in ids:
            ids.append(resolved)

    cache = _configure_runner(args)
    jobs = figures.plan_for(ids, settings)
    show_progress = args.progress or args.parallel > 1
    events = _event_bus(args.events) if args.events else None
    try:
        report = _warm_jobs(
            args, jobs, cache,
            progress=stderr_progress if show_progress else None,
            events=events,
        )
    finally:
        if events is not None:
            events.close()
    if events is not None:
        print(
            f"events: {events.emitted} emitted, {events.dropped} dropped "
            f"-> {args.events}",
            file=sys.stderr,
        )
    for failure in report.failures:
        print(
            f"run: FAILED {failure.spec.label} after {failure.attempts} attempt(s): "
            f"{failure.error}",
            file=sys.stderr,
        )

    out_dir = None
    if args.out:
        import pathlib

        out_dir = pathlib.Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)

    rendered = 0
    for spec_id in ids:
        spec = figures.experiment(spec_id)
        try:
            table = spec.render(settings)
        except Exception as exc:  # noqa: BLE001 — keep rendering the other figures
            print(f"run: render of {spec_id} failed: {exc}", file=sys.stderr)
            continue
        text = table.render()
        if rendered:
            print()
        print(text)
        rendered += 1
        if out_dir is not None:
            (out_dir / f"{spec_id}.txt").write_text(text + "\n")

    print(report.cache_stats_line(), file=sys.stderr)
    if not args.no_manifest:
        path = _write_run_manifest(args, ids, settings, report, show_progress)
        print(f"manifest: {path}", file=sys.stderr)
    return 0 if report.ok and rendered == len(ids) else 1


def _write_run_manifest(args, ids, settings, report, show_progress, timeline=None,
                        faults=None):
    from repro.obs.manifest import build_manifest, write_manifest
    from repro.obs.metrics import registry as metrics_registry

    payload = build_manifest(
        timeline=timeline,
        faults=faults,
        figures=ids,
        settings={
            "accesses": settings.accesses,
            "seed": settings.seed,
            "applications": list(settings.applications),
        },
        options={
            "parallel": args.parallel,
            "cache": not args.no_cache,
            "job_timeout_s": args.job_timeout,
            "progress": show_progress,
        },
        jobs=report.job_timings,
        cache={
            "planned": report.planned,
            "unique": report.unique,
            "disk_hits": report.disk_hits,
            "executed": report.executed,
            "simulations": report.simulations,
            "retries": report.retries,
        },
        failures=[
            {"label": f.spec.label, "error": f.error, "attempts": f.attempts}
            for f in report.failures
        ],
        elapsed_s=report.elapsed_s,
        metrics=metrics_registry().to_dict(),
    )
    return write_manifest(args.manifest, payload)


def _run_trace(args: argparse.Namespace) -> int:
    from repro.core.registry import build_controller
    from repro.nvm.memory import NvmMainMemory
    from repro.obs.sinks import JsonlSink
    from repro.obs.trace import Tracer, percentile
    from repro.runner.jobs import trace_for
    from repro.system.simulator import simulate

    if args.from_jsonl:
        # Pure conversion: an existing trace JSONL becomes a Chrome
        # trace-event file, no simulation involved.
        if not args.chrome:
            print("trace: --from-jsonl requires --chrome OUT", file=sys.stderr)
            return 2
        from repro.obs.chrome import read_trace_jsonl, write_chrome_trace

        try:
            path = write_chrome_trace(read_trace_jsonl(args.from_jsonl), args.chrome)
        except (OSError, ValueError) as error:
            print(f"trace: {error}", file=sys.stderr)
            return 2
        print(f"wrote Chrome trace to {path}")
        return 0
    if not args.figure:
        print("trace: a figure id is required (or use --from-jsonl)", file=sys.stderr)
        return 2

    spec = figures.resolve_experiment(args.figure)
    workload = trace_for(args.app, args.accesses, args.seed)
    sink = JsonlSink(args.out) if args.out else None
    tracer = Tracer(sink=sink)
    tracer.set_context(
        figure=spec.id, app=args.app, controller=args.controller, seed=args.seed
    )
    controller = build_controller(args.controller, NvmMainMemory(), tracer=tracer)
    simulate(controller, workload)
    tracer.close()

    stages = tracer.stage_durations(clock="sim")
    print(
        f"{spec.id} ({spec.anchor}) — {args.controller} on {args.app}, "
        f"{args.accesses} accesses, seed {args.seed}"
    )
    print(f"{'stage':16s}{'count':>8s}{'mean ns':>10s}{'p50 ns':>10s}"
          f"{'p95 ns':>10s}{'p99 ns':>10s}{'max ns':>10s}")
    for name in sorted(stages):
        durations = sorted(stages[name])
        mean = sum(durations) / len(durations)
        print(
            f"{name:16s}{len(durations):8d}{mean:10.1f}"
            f"{percentile(durations, 50):10.1f}{percentile(durations, 95):10.1f}"
            f"{percentile(durations, 99):10.1f}{durations[-1]:10.1f}"
        )
    if args.out:
        print(f"\nwrote {len(tracer.records)} records to {args.out}")
    if args.chrome:
        from repro.obs.chrome import write_chrome_trace

        path = write_chrome_trace(tracer.records, args.chrome)
        print(f"wrote Chrome trace to {path}")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    import time as _time
    from pathlib import Path

    from repro.core.registry import build_controller
    from repro.nvm.memory import NvmMainMemory
    from repro.obs.metrics import registry as metrics_registry
    from repro.obs.profile import (
        BatchProfiler,
        render_stage_table,
        render_wall_summary,
    )
    from repro.runner.jobs import trace_for
    from repro.system.simulator import simulate

    spec = figures.resolve_experiment(args.figure)
    workload = trace_for(args.app, args.accesses, args.seed)
    controller = build_controller(args.controller, NvmMainMemory())
    profiler = BatchProfiler(controller)
    started = _time.perf_counter()
    with profiler:
        simulate(controller, workload)
    elapsed_s = _time.perf_counter() - started

    print(
        f"{spec.id} ({spec.anchor}) — {args.controller} on {args.app}, "
        f"{args.accesses} accesses, seed {args.seed}"
    )
    print(render_stage_table(profiler))
    print(render_wall_summary(profiler))
    if args.flamegraph:
        lines = profiler.collapsed_stacks()
        Path(args.flamegraph).write_text("\n".join(lines) + "\n", encoding="utf-8")
        print(f"wrote {len(lines)} flamegraph frame(s) to {args.flamegraph}", file=sys.stderr)
    if args.json:
        import json

        Path(args.json).write_text(
            json.dumps(profiler.report(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote profile payload to {args.json}", file=sys.stderr)
    if args.manifest:
        from repro.obs.manifest import build_manifest, write_manifest

        payload = build_manifest(
            figures=[spec.id],
            settings={
                "accesses": args.accesses,
                "seed": args.seed,
                "applications": [args.app],
            },
            options={"controller": args.controller, "command": "profile"},
            jobs=[],
            cache={
                "planned": 1, "unique": 1, "disk_hits": 0,
                "executed": 1, "simulations": 1, "retries": 0,
            },
            failures=[],
            elapsed_s=elapsed_s,
            metrics=metrics_registry().to_dict(),
            stages=profiler.stages.to_dict(),
        )
        path = write_manifest(args.manifest, payload)
        print(f"manifest: {path}", file=sys.stderr)
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    from repro.obs.manifest import (
        ManifestError,
        load_manifest,
        summarize_manifest,
        validate_manifest,
    )

    try:
        payload = load_manifest(args.manifest, validate=False)
    except ManifestError as error:
        print(f"stats: {error}", file=sys.stderr)
        return 1
    if args.json:
        import json

        summary = summarize_manifest(payload)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if summary["valid"] else 1

    problems = validate_manifest(payload)
    print(f"manifest: {args.manifest}")
    print(f"  command:   {' '.join(payload.get('command', []) or ['?'])}")
    print(f"  git sha:   {payload.get('git_sha') or 'unknown'}")
    print(f"  python:    {payload.get('python', '?')}")
    print(f"  figures:   {', '.join(payload.get('figures', []) or ['-'])}")
    settings = payload.get("settings", {})
    if isinstance(settings, dict):
        print(
            f"  settings:  accesses={settings.get('accesses')} seed={settings.get('seed')} "
            f"apps={','.join(settings.get('applications', []) or [])}"
        )
    jobs = payload.get("jobs", [])
    if isinstance(jobs, list):
        by_source: dict[str, int] = {}
        for job in jobs:
            if isinstance(job, dict):
                by_source[str(job.get("source"))] = by_source.get(str(job.get("source")), 0) + 1
        summary = ", ".join(f"{count} {source}" for source, count in sorted(by_source.items()))
        print(f"  jobs:      {len(jobs)} ({summary or 'none'})")
        timed = [j for j in jobs if isinstance(j, dict) and j.get("source") == "executed"]
        for job in sorted(timed, key=lambda j: -float(j.get("compute_s", 0.0)))[:5]:
            print(
                f"    {job.get('label', '?'):40s} compute {float(job.get('compute_s', 0)):6.2f}s "
                f"queue {float(job.get('queue_s', 0)):6.2f}s x{job.get('attempts', 1)}"
            )
    print(f"  elapsed:   {payload.get('elapsed_s', 0):.1f}s")
    if payload.get("peak_rss_kb") is not None:
        print(f"  peak RSS:  {payload['peak_rss_kb'] / 1024:.0f} MiB")
    timeline = payload.get("timeline")
    if isinstance(timeline, dict):
        windows = timeline.get("windows", {})
        print(
            f"  timeline:  {len(windows) if isinstance(windows, dict) else 0} "
            f"window(s) x {float(timeline.get('window_ns', 0) or 0):g} ns"
        )
    faults = payload.get("faults")
    if isinstance(faults, dict):
        scenarios = faults.get("scenarios", [])
        print(
            f"  faults:    {len(scenarios) if isinstance(scenarios, list) else 0} "
            f"scenario(s), interval {float(faults.get('interval_ns', 0) or 0):g} ns"
        )
    stages = payload.get("stages")
    if isinstance(stages, dict):
        entries = stages.get("stages", {})
        samples = sum(
            entry.get("count", 0)
            for entry in (entries.values() if isinstance(entries, dict) else [])
            if isinstance(entry, dict)
        )
        print(
            f"  stages:    {len(entries) if isinstance(entries, dict) else 0} "
            f"stage(s), {samples} sample(s) (summary mode)"
        )
    metrics = payload.get("metrics", {})
    if isinstance(metrics, dict):
        # Fused kernels silently bail to the scalar loop under full
        # tracing/timelines or multi-stream cursors; surface the why.
        fallbacks = {
            name: entry.get("value", 0)
            for name, entry in sorted(metrics.items())
            if name.startswith("batch.fallback.") and isinstance(entry, dict)
        }
        if fallbacks:
            rendered = ", ".join(f"{name.rsplit('.', 1)[-1]}={value:g}"
                                 for name, value in fallbacks.items())
            print(f"  fallbacks: {rendered} (batches driven scalar)")
        # Live-telemetry stream health: environment counters like the
        # fallbacks above (a property of the attached sink, never drift).
        stream = {
            name: entry.get("value", 0)
            for name, entry in sorted(metrics.items())
            if name.startswith("events.") and isinstance(entry, dict)
        }
        if stream:
            rendered = ", ".join(f"{name.rsplit('.', 1)[-1]}={value:g}"
                                 for name, value in stream.items())
            print(f"  events:    {rendered} (live telemetry stream)")
    failures = payload.get("failures", [])
    if failures:
        print(f"  failures:  {len(failures)}")
        for failure in failures:
            if isinstance(failure, dict):
                print(f"    {failure.get('label', '?')}: {failure.get('error', '?')}")
    if problems:
        print(f"stats: manifest is INVALID ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("stats: manifest is valid")
    return 0


def _run_timeline(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.timeline import TimelineCollector, render_timeline, timeline_csv
    from repro.runner import provider
    from repro.runner.jobs import simulate_spec

    spec = figures.resolve_experiment(args.figure)
    settings = _settings(args)
    cache = _configure_runner(args)
    jobs = [
        simulate_spec(
            workload=app,
            controller=args.controller,
            accesses=settings.accesses,
            seed=settings.seed,
            experiment=spec.id,
            timeline_window_ns=args.window_ns,
        )
        for app in settings.applications
    ]
    report = _warm_jobs(args, jobs, cache)
    for failure in report.failures:
        print(
            f"timeline: FAILED {failure.spec.label}: {failure.error}", file=sys.stderr
        )
    if not report.ok:
        return 1

    merged = TimelineCollector(window_ns=args.window_ns)
    for job in jobs:
        payload = provider.active().get(job)
        merged.merge(TimelineCollector.from_dict(payload["timeline"]))

    print(
        f"{spec.id} ({spec.anchor}) — {args.controller} on "
        f"{', '.join(settings.applications)}, {settings.accesses} accesses, "
        f"seed {settings.seed}, window {args.window_ns:g} ns"
    )
    print(render_timeline(merged, max_rows=args.max_rows))
    if args.csv:
        Path(args.csv).write_text(timeline_csv(merged), encoding="utf-8")
        print(f"wrote {args.csv}", file=sys.stderr)
    if args.jsonl:
        import json

        with Path(args.jsonl).open("w", encoding="utf-8") as handle:
            for row in merged.rows():
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        print(f"wrote {args.jsonl}", file=sys.stderr)
    if args.manifest:
        path = _write_run_manifest(
            args, [spec.id], settings, report, False, timeline=merged.to_dict()
        )
        print(f"manifest: {path}", file=sys.stderr)
    return 0


def _faults_manifest_section(jobs, entries, interval_ns):
    """The manifest's ``faults`` section: one compact record per scenario.

    Everything recorded here is a product of the seeded simulation, so
    ``repro diff`` treats any divergence as deterministic drift.
    """
    scenarios = []
    for job, (controller, scenario) in zip(jobs, entries):
        params = job.params
        recovery = scenario["recovery"]
        scenarios.append({
            "workload": params["workload"],
            "controller": controller,
            "policy": scenario["policy"],
            "crash_access": params["plan"]["power_loss_at_access"],
            "crash_ns": scenario["crash_ns"],
            "horizon_ns": recovery["horizon_ns"],
            "durable_events": recovery["durable_events"],
            "dropped_events": recovery["dropped_events"],
            "lost_counter_lines": len(recovery["lost_counter_lines"]),
            "broken_references": len(recovery["broken_references"]),
            "recovery_time_ns": recovery["recovery_time_ns"],
            "report": {
                key: scenario["report"][key]
                for key in ("total_lines", "intact", "stale", "lost")
            },
        })
    return {"interval_ns": float(interval_ns), "scenarios": scenarios}


def _run_faults(args: argparse.Namespace) -> int:
    from repro.faults.audit import ConsistencyReport
    from repro.faults.campaign import campaign_specs, vulnerability_table
    from repro.runner import provider

    spec = figures.resolve_experiment(args.figure)
    settings = _settings(args)
    cache = _configure_runner(args)

    if args.controllers:
        controllers = tuple(
            name.strip() for name in args.controllers.split(",") if name.strip()
        )
    else:
        from repro.core.registry import available_controllers

        controllers = tuple(available_controllers())
    policies = tuple(name.strip() for name in args.policies.split(",") if name.strip())
    points = tuple(float(part) for part in args.points.split(",") if part.strip())

    jobs = []
    try:
        for app in settings.applications:
            jobs.extend(
                campaign_specs(
                    workload=app,
                    accesses=settings.accesses,
                    seed=settings.seed,
                    controllers=controllers,
                    policies=policies,
                    points=points,
                    interval_ns=args.interval_ns,
                    cell_faults=args.cell_faults,
                    cell_fault_mode=args.cell_fault_mode,
                    drop_probability=args.drop_probability,
                    experiment=spec.id,
                )
            )
    except ValueError as exc:
        print(f"faults: {exc}", file=sys.stderr)
        return 2
    report = _warm_jobs(args, jobs, cache)
    for failure in report.failures:
        print(f"faults: FAILED {failure.spec.label}: {failure.error}", file=sys.stderr)
    if not report.ok:
        return 1

    entries = []
    for job in jobs:
        scenario = provider.active().get(job)["scenario"]
        # Re-assert the partition invariant on every payload — cached
        # entries included — so a poisoned cache cannot pass silently.
        ConsistencyReport.from_dict(scenario["report"])
        entries.append((job.params["controller"], scenario))

    print(
        f"{spec.id} ({spec.anchor}) — fault campaign on "
        f"{', '.join(settings.applications)}: {len(controllers)} controller(s) x "
        f"{len(policies)} policy(ies) x {len(points)} crash point(s), "
        f"{settings.accesses} accesses, seed {settings.seed}"
    )
    print(vulnerability_table(entries, args.interval_ns).render())

    if args.json:
        import json
        from pathlib import Path

        payload = [
            {"controller": controller, **scenario}
            for controller, scenario in entries
        ]
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.json}", file=sys.stderr)
    if args.manifest:
        path = _write_run_manifest(
            args, [spec.id], settings, report, False,
            faults=_faults_manifest_section(jobs, entries, args.interval_ns),
        )
        print(f"manifest: {path}", file=sys.stderr)
    return 0


def _run_wear(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.charts import heatmap_csv, render_heatmap
    from repro.core.registry import build_controller
    from repro.nvm.memory import NvmMainMemory
    from repro.runner.jobs import trace_for
    from repro.system.simulator import simulate

    spec = figures.resolve_experiment(args.figure)
    workload = trace_for(args.app, args.accesses, args.seed)

    def run_one(name: str):
        nvm = NvmMainMemory()
        return nvm, simulate(build_controller(name, nvm), workload)

    nvm, report = run_one(args.controller)
    wear = nvm.wear
    config = nvm.config
    print(
        f"{spec.id} ({spec.anchor}) — {args.controller} on {args.app}, "
        f"{args.accesses} accesses, seed {args.seed}"
    )
    summary = wear.summary()
    print(
        f"{summary.total_line_writes} line writes over "
        f"{summary.distinct_lines_written} distinct lines, "
        f"{summary.total_bit_flips} bit flips "
        f"(hottest line: {summary.max_line_writes} writes)\n"
    )

    highest = wear.highest_line_written()
    touched = (highest + 1) if highest is not None else 1
    grid = wear.heatmap_grid(touched, args.rows, args.cols, metric=args.metric)
    print(
        render_heatmap(
            grid,
            title=f"wear heatmap: {args.metric} over lines [0, {touched})",
            cell_label=args.metric,
        )
    )

    print(f"\n{'bank':>6s}{'writes':>10s}{'flips':>12s}{'peak':>8s}  hottest line")
    for bank in wear.bank_wear(config.organization.total_banks):
        hottest = bank.hottest_line if bank.hottest_line is not None else "-"
        print(
            f"{bank.index:6d}{bank.line_writes:10d}{bank.bit_flips:12d}"
            f"{bank.max_line_writes:8d}  {hottest}"
        )

    print(f"\n{'region':>6s}{'lines':>8s}{'writes':>10s}{'flips':>12s}"
          f"{'mean w/line':>12s}{'peak':>8s}")
    for region in wear.region_wear(touched, args.regions):
        print(
            f"{region.index:6d}{region.lines:8d}{region.line_writes:10d}"
            f"{region.bit_flips:12d}{region.mean_writes_per_line:12.2f}"
            f"{region.max_line_writes:8d}"
        )

    def lifetime(tracker, makespan_ns: float) -> float:
        return tracker.projected_lifetime_years(
            total_lines=config.organization.total_lines,
            line_bits=config.line_bits,
            cell_endurance_writes=config.cell_endurance_writes,
            makespan_ns=makespan_ns,
        )

    years = lifetime(wear, report.makespan_ns)
    print(f"\nprojected lifetime ({args.controller}): {years:.3g} years "
          f"(ideal levelling, {config.cell_endurance_writes:g} writes/cell)")
    if args.baseline and args.baseline != "none":
        base_nvm, base_report = run_one(args.baseline)
        base_years = lifetime(base_nvm.wear, base_report.makespan_ns)
        factor = wear.lifetime_factor(base_nvm.wear)
        print(
            f"projected lifetime ({args.baseline}): {base_years:.3g} years — "
            f"{args.controller} extends lifetime {factor:.2f}x "
            f"({base_nvm.wear.summary().total_bit_flips} -> "
            f"{summary.total_bit_flips} flips)"
        )

    if args.csv:
        Path(args.csv).write_text(heatmap_csv(grid), encoding="utf-8")
        print(f"wrote {args.csv}", file=sys.stderr)
    return 0


def _run_diff(args: argparse.Namespace) -> int:
    from repro.obs.diff import (
        diff_figure_dirs,
        diff_manifests,
        diff_stages,
        stage_percentiles,
    )
    from repro.obs.manifest import ManifestError, load_manifest

    if bool(args.trace_a) != bool(args.trace_b):
        print("diff: --trace-a and --trace-b must be given together", file=sys.stderr)
        return 2
    if bool(args.figures_a) != bool(args.figures_b):
        print("diff: --figures-a and --figures-b must be given together", file=sys.stderr)
        return 2
    try:
        manifest_a = load_manifest(args.manifest_a, validate=False)
        manifest_b = load_manifest(args.manifest_b, validate=False)
    except ManifestError as error:
        print(f"diff: {error}", file=sys.stderr)
        return 2

    diff = diff_manifests(manifest_a, manifest_b)
    drift = diff.deterministic_drift
    stage_notes: list[str] = []
    if args.trace_a:
        stage_notes = diff_stages(
            stage_percentiles(args.trace_a),
            stage_percentiles(args.trace_b),
            tolerance=args.tolerance,
        )
        drift = drift or bool(stage_notes)
    figure_reports: dict[str, object] = {}
    figure_notes: list[str] = []
    if args.figures_a:
        figure_reports, figure_notes = diff_figure_dirs(
            args.figures_a, args.figures_b, tolerance=args.tolerance
        )
        drift = drift or bool(figure_notes)
        drift = drift or any(not report.clean for report in figure_reports.values())

    if args.json:
        import json

        payload = {
            "deterministic_drift": drift,
            "manifest": {
                "context": diff.context,
                "counter_drifts": [
                    {"name": d.name, "a": d.a, "b": d.b} for d in diff.counter_drifts
                ],
                "appeared_counters": diff.appeared_counters,
                "vanished_counters": diff.vanished_counters,
                "counters_compared": diff.counters_compared,
                "timeline_drifts": diff.timeline_drifts,
                "timeline_windows_compared": diff.timeline_windows_compared,
                "faults_drifts": diff.faults_drifts,
                "faults_scenarios_compared": diff.faults_scenarios_compared,
                "stages_drifts": diff.stages_drifts,
                "stages_compared": diff.stages_compared,
                "wall_clock_deltas": [
                    {"name": d.name, "kind": d.kind, "a": d.a, "b": d.b}
                    for d in diff.info_deltas
                ],
            },
            "stages": stage_notes,
            "figures": {
                "notes": figure_notes,
                "reports": {
                    name: {"clean": report.clean, "summary": report.summary()}
                    for name, report in figure_reports.items()
                },
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 1 if drift else 0

    print(f"diff: {args.manifest_a} vs {args.manifest_b}")
    print(diff.render())
    if args.trace_a:
        if stage_notes:
            print(f"stage drift ({len(stage_notes)}):")
            for note in stage_notes:
                print(f"  {note}")
        else:
            print("stages: per-stage sim-clock percentiles match")
    if args.figures_a:
        for note in figure_notes:
            print(f"figures: {note}")
        for name, report in sorted(figure_reports.items()):
            verdict = "clean" if report.clean else "DRIFT"
            print(f"figures: {name}: {verdict} — {report.summary().splitlines()[0]}")
    print(f"diff: {'DRIFT detected' if drift else 'no deterministic drift'}")
    return 1 if drift else 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.obs import bench

    controllers = (
        [name.strip() for name in args.controllers.split(",") if name.strip()]
        if args.controllers
        else None
    )
    cases = bench.default_suite(
        accesses=args.accesses, seed=args.seed, controllers=controllers
    )
    print(f"bench: {len(cases)} case(s), best of {args.repeats} interleaved repeat(s)")
    results = bench.run_suite(cases, repeats=args.repeats)
    stages = bench.collect_stage_breakdown(
        accesses=args.accesses, seed=args.seed, controllers=controllers
    )
    print(f"{'case':26s}{'best ms':>10s}{'ops':>8s}{'ns/op':>12s}")
    for name, entry in sorted(results.items()):
        print(
            f"{name:26s}{entry['best_s'] * 1000:10.2f}{entry['ops']:8d}"
            f"{entry['per_op_ns']:12.1f}"
        )
    record = bench.build_record(
        results,
        scale={
            "accesses": args.accesses,
            "seed": args.seed,
            "repeats": args.repeats,
            "controllers": controllers if controllers is not None else "all",
        },
        stages=stages,
    )
    path = bench.write_record(record, args.out)
    print(f"wrote {path}", file=sys.stderr)
    exit_code = 0
    if args.check:
        try:
            baseline = bench.load_record(args.check)
        except (OSError, ValueError) as error:
            print(f"bench: cannot load baseline: {error}", file=sys.stderr)
            return 2
        comparison = bench.compare_records(record, baseline, threshold=args.threshold)
        print(comparison.render())
        exit_code |= 0 if comparison.ok else 1
    if args.gate:
        try:
            anchors = bench.discover_anchors(args.gate)
            records = [bench.load_record(anchor) for anchor in anchors]
        except (OSError, ValueError) as error:
            print(f"bench: cannot load anchors: {error}", file=sys.stderr)
            return 2
        if not records:
            print(f"bench: no BENCH_*.json anchors in {args.gate}", file=sys.stderr)
            return 2
        baseline = bench.composite_baseline(records)
        print(
            f"gating against {len(records)} anchor(s) in {args.gate} "
            f"(per-case best-ever baseline)"
        )
        comparison = bench.compare_records(record, baseline, threshold=args.threshold)
        print(comparison.render())
        exit_code |= 0 if comparison.ok else 1
    return exit_code


def _run_watch(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.watch import follow_file, follow_socket

    max_wait = args.max_wait if args.max_wait > 0 else None
    if args.socket:
        target = Path(args.target)
        if target.exists():
            print(f"watch: {target} already exists; refusing to bind", file=sys.stderr)
            return 2
        model = follow_socket(target, interval_s=args.interval, max_wait_s=max_wait)
    else:
        target = Path(args.target)
        if target.is_dir():
            target = target / "events.jsonl"
        if args.once and not target.exists():
            print(f"watch: no event stream at {target}", file=sys.stderr)
            return 2
        model = follow_file(
            target, interval_s=args.interval, once=args.once, max_wait_s=max_wait
        )
    return 1 if model.failed else 0


def _traffic_config(args: argparse.Namespace):
    from repro.workloads.tenants import TenantTrafficConfig

    return TenantTrafficConfig(
        tenants=args.tenants,
        accesses=args.accesses,
        seed=args.seed,
        zipf_s=args.zipf_s,
        content_overlap=args.overlap,
        shared_pool_lines=args.pool_lines,
        lines_per_tenant=args.lines_per_tenant,
        read_fraction=args.read_fraction,
        persistent_fraction=args.persistent_fraction,
    )


def _run_serve(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.events import NULL_EVENTS
    from repro.runner.engine import stderr_progress
    from repro.serve.control import AdmissionPolicy
    from repro.serve.service import ServiceConfig, run_service

    config = ServiceConfig(
        traffic=_traffic_config(args),
        policy=AdmissionPolicy(max_tenant_slots=args.max_slots, tenant_quota=args.quota),
        shards=args.shards,
        controller=args.controller,
    )
    cache = _configure_runner(args)
    events = _event_bus(args.events) if args.events else NULL_EVENTS
    progress = stderr_progress if args.progress else None
    try:
        outcome = run_service(
            config,
            parallel=args.parallel,
            cache=cache,
            job_timeout_s=args.job_timeout,
            events=events,
            progress=progress,
        )
    except RuntimeError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 1
    finally:
        if events is not NULL_EVENTS:
            events.close()
    report = outcome.report
    print(report.render())
    print(outcome.leases.render(), file=sys.stderr)
    print(outcome.run.cache_stats_line(), file=sys.stderr)
    if args.json_out:
        blob = json.dumps(report.to_dict(), sort_keys=True, indent=2)
        Path(args.json_out).write_text(blob + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    if args.tables:
        tables = Path(args.tables)
        tables.mkdir(parents=True, exist_ok=True)
        (tables / "wear_balance.csv").write_text(report.wear_table_csv())
        (tables / "dedup_ratio.csv").write_text(report.dedup_table_csv())
        print(f"wrote {tables}/wear_balance.csv and {tables}/dedup_ratio.csv",
              file=sys.stderr)
    return 0


def _run_loadgen(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.serve.control import AdmissionPolicy
    from repro.serve.loadgen import build_load_plan

    policy = AdmissionPolicy(max_tenant_slots=args.max_slots, tenant_quota=args.quota)
    plan = build_load_plan(_traffic_config(args), policy, args.shards)
    print(plan.render())
    if args.json_out:
        blob = json.dumps(plan.to_dict(), sort_keys=True, indent=2)
        Path(args.json_out).write_text(blob + "\n")
        print(f"wrote {args.json_out}", file=sys.stderr)
    return 0


def _run_ledger(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs.ledger import Ledger, LedgerError

    path = Path(args.ledger_path)
    if path.exists():
        try:
            ledger = Ledger.load(path)
        except LedgerError as error:
            print(f"ledger: {error}", file=sys.stderr)
            return 2
    else:
        ledger = Ledger()

    if args.action == "add":
        if not args.records:
            print("ledger: add needs at least one record file", file=sys.stderr)
            return 2
        added = 0
        for record_path in args.records:
            try:
                payload = json.loads(Path(record_path).read_text(encoding="utf-8"))
                if ledger.add_record(payload, source=str(record_path)):
                    added += 1
            except (OSError, json.JSONDecodeError, LedgerError) as error:
                print(f"ledger: {record_path}: {error}", file=sys.stderr)
                return 2
        ledger.dump(path)
        duplicates = len(args.records) - added
        print(
            f"ledger: indexed {added} new record(s)"
            + (f", {duplicates} already present" if duplicates else "")
            + f" -> {path} ({len(ledger)} total)"
        )
        return 0

    entries = ledger.entries()
    if args.json:
        print(json.dumps(ledger.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"ledger: {path} — {len(entries)} entr(y/ies)")
    for entry in entries:
        sha = (entry.git_sha or "nogit")[:12]
        if entry.record_kind == "bench":
            detail = f"{len(entry.summary.get('results', {}))} case(s)"
        else:
            jobs = entry.summary.get("jobs", {})
            detail = f"{jobs.get('total', 0)} job(s), {entry.summary.get('failures', 0)} failed"
        print(f"  {entry.entry_id}  {entry.record_kind:8s} {sha:12s} {detail}"
              + (f"  [{entry.source}]" if entry.source else ""))
    return 0


def _run_trend(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.obs import bench
    from repro.obs.ledger import Ledger, LedgerError, compute_trend, ledger_from_records

    source = Path(args.source)
    try:
        if source.is_dir():
            anchors = bench.discover_anchors(source)
            ledger = ledger_from_records(
                (bench.load_record(anchor), str(anchor)) for anchor in anchors
            )
        else:
            ledger = Ledger.load(source)
    except (OSError, ValueError, LedgerError) as error:
        print(f"trend: {error}", file=sys.stderr)
        return 2
    report = compute_trend(ledger.entries(record_kind="bench"), threshold=args.threshold)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _run_compare(args: argparse.Namespace) -> int:
    _configure_runner(args)
    profile = profile_by_name(args.app)
    settings = ex.ExperimentSettings(
        accesses=args.accesses, seed=args.seed, applications=(profile.name,)
    )
    result = ex.run_app_comparison(profile, settings)
    speedups = result.speedups
    print(f"application: {profile.name}  ({profile.suite}, {profile.threads} thread(s))")
    print(f"trace: {args.accesses} accesses, seed {args.seed}\n")
    rows = [
        ("mean write latency (ns)",
         result.baseline.mean_write_latency_ns, result.dewrite.mean_write_latency_ns),
        ("mean read latency (ns)",
         result.baseline.mean_read_latency_ns, result.dewrite.mean_read_latency_ns),
        ("IPC (x1000)", result.baseline.ipc * 1000, result.dewrite.ipc * 1000),
        ("energy (uJ)", result.baseline.energy_nj / 1000, result.dewrite.energy_nj / 1000),
        ("NVM bit flips",
         float(result.baseline.wear.total_bit_flips), float(result.dewrite.wear.total_bit_flips)),
    ]
    print(f"{'metric':26s}{'baseline':>12s}{'dewrite':>12s}")
    for name, base, ours in rows:
        print(f"{name:26s}{base:12,.1f}{ours:12,.1f}")
    print(
        f"\nwrite reduction {result.dewrite.write_reduction:.0%} | "
        f"write speedup {speedups['write_speedup']:.2f}x | "
        f"read speedup {speedups['read_speedup']:.2f}x | "
        f"IPC {speedups['ipc_ratio']:.2f}x | "
        f"energy {speedups['energy_ratio']:.2f}x"
    )
    return 0


def _run_figure(args: argparse.Namespace) -> int:
    spec = figures.experiment(args.id)
    settings = _settings(args)
    cache = _configure_runner(args)
    if args.parallel > 1:
        _warm_jobs(args, spec.jobs(settings), cache)
    table = spec.render(settings)
    print(table.render())
    if args.chart:
        from repro.analysis.charts import render_bar_chart

        reference = 1.0 if ("speedup" in args.chart or "ratio" in args.chart) else None
        print()
        print(render_bar_chart(table, args.chart, reference=reference))
    if args.json:
        from repro.analysis.export import dump_json, table_to_dict

        dump_json(table_to_dict(table), args.json)
        print(f"\nwrote {args.json}")
    return 0


def _run_regress(args: argparse.Namespace) -> int:
    from repro.analysis.export import load_json
    from repro.analysis.regression import compare_tables

    report = compare_tables(
        load_json(args.reference),
        load_json(args.current),
        relative_tolerance=args.tolerance,
    )
    print(report.summary())
    return 0 if report.clean else 1


def _run_check(args: argparse.Namespace) -> int:
    do_lint = args.lint or not args.invariants
    do_invariants = args.invariants or not args.lint
    exit_code = 0
    if do_lint:
        exit_code |= _run_check_lint(args)
    if do_invariants:
        exit_code |= _run_check_invariants(args.accesses, args.seed)
    return exit_code


def _run_check_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro
    from repro.check.baseline import Baseline, discover_baseline
    from repro.check.lint import lint_paths
    from repro.check.output import render_json, render_sarif

    targets = args.paths if args.paths else [str(Path(repro.__file__).parent)]

    if args.write_baseline:
        report = lint_paths(targets)
        Baseline.from_violations(report.violations).dump(args.write_baseline)
        print(
            f"simlint: wrote baseline with {len(report.violations)} finding(s) "
            f"to {args.write_baseline}"
        )
        return 0

    baseline = None
    if args.baseline:
        baseline = Baseline.load(args.baseline)
    elif not args.no_baseline:
        found = discover_baseline(Path(targets[0]))
        if found is not None:
            baseline = Baseline.load(found)

    report = lint_paths(targets, baseline=baseline)
    if args.sarif:
        Path(args.sarif).write_text(render_sarif(report) + "\n", encoding="utf-8")
    if args.json_output:
        print(render_json(report))
    else:
        print(report.render())
    return 0 if report.clean else 1


def _run_check_invariants(accesses: int, seed: int) -> int:
    from repro.check.invariants import CheckedController, InvariantViolation
    from repro.core.registry import build_controller
    from repro.nvm.config import NvmConfig, NvmOrganization
    from repro.nvm.memory import NvmMainMemory
    from repro.system.simulator import simulate
    from repro.workloads.generator import generate_trace
    from repro.workloads.worstcase import worst_case_trace

    line = 256

    def make_nvm() -> NvmMainMemory:
        return NvmMainMemory(
            NvmConfig(organization=NvmOrganization(capacity_bytes=64 * 1024 * line))
        )

    runs = [
        ("dewrite/mcf", lambda: build_controller("dewrite", make_nvm()),
         generate_trace(profile_by_name("mcf"), accesses, seed=seed)),
        ("dewrite-direct/lbm", lambda: build_controller("direct", make_nvm()),
         generate_trace(profile_by_name("lbm"), accesses, seed=seed)),
        ("secure-nvm/sjeng", lambda: build_controller("secure-nvm", make_nvm()),
         generate_trace(profile_by_name("sjeng"), accesses, seed=seed)),
        ("dewrite/worstcase", lambda: build_controller("dewrite", make_nvm()),
         worst_case_trace(num_accesses=accesses, seed=seed)),
    ]
    failures = 0
    for name, factory, trace in runs:
        checked = CheckedController(factory())
        try:
            simulate(checked, trace)
            checked.close(now_ns=10.0**12)
        except InvariantViolation as violation:
            failures += 1
            print(f"invariants: FAIL {name}: {violation}")
            continue
        print(
            f"invariants: ok {name} ({checked.operations} ops, "
            f"{checked.deep_checks} deep sweeps)"
        )
    if failures:
        print(f"invariants: {failures} run(s) violated conservation laws")
        return 1
    print(f"invariants: all {len(runs)} runs clean")
    return 0


def _run_list() -> int:
    from repro.core.registry import available_controllers

    print("figures:")
    for spec in figures.all_experiments():
        print(f"  {spec.id:8s} {spec.description}")
    print("\napplications:")
    for profile in ALL_PROFILES:
        print(
            f"  {profile.name:14s} {profile.suite:6s} dup={profile.dup_ratio:.0%} "
            f"zero={profile.zero_line_fraction:.0%}"
        )
    print("\ncontrollers:")
    for name, description in available_controllers().items():
        print(f"  {name:18s} {description}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _run_run(args)
        if args.command == "trace":
            return _run_trace(args)
        if args.command == "profile":
            return _run_profile(args)
        if args.command == "stats":
            return _run_stats(args)
        if args.command == "timeline":
            return _run_timeline(args)
        if args.command == "faults":
            return _run_faults(args)
        if args.command == "wear":
            return _run_wear(args)
        if args.command == "diff":
            return _run_diff(args)
        if args.command == "bench":
            return _run_bench(args)
        if args.command == "watch":
            return _run_watch(args)
        if args.command == "serve":
            return _run_serve(args)
        if args.command == "loadgen":
            return _run_loadgen(args)
        if args.command == "ledger":
            return _run_ledger(args)
        if args.command == "trend":
            return _run_trend(args)
        if args.command == "compare":
            return _run_compare(args)
        if args.command == "figure":
            return _run_figure(args)
        if args.command == "regress":
            return _run_regress(args)
        if args.command == "check":
            return _run_check(args)
        return _run_list()
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":
    sys.exit(main())
