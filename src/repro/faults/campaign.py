"""Fault-injection campaigns over the parallel experiment engine.

A campaign fans a grid of crash scenarios — (controller × persistence
policy × crash point) — into content-keyed ``"crash-recovery"`` jobs, so
the :mod:`repro.runner` engine gives every point its own cache entry and
bit-identical results serial or parallel (the fault plan's seed travels
inside the spec, like every other input).

Crash points are given as *fractions of the trace*: a point at 0.5 pulls
the plug before the access at the middle of the trace, which keeps a grid
meaningful across workloads of different lengths and (unlike sim-time
points) independent of each controller's own latencies — every controller
crashes at the same logical position, so the comparison isolates the
metadata durability story.

Persistence-policy plumbing differs by family, deliberately:

- DeWrite-family controllers (``dewrite``/``direct``/``parallel``) get the
  policy injected into their config, so the *runtime* flush traffic
  (write-through metadata writes, periodic flush bursts) matches the crash
  model's durability assumption;
- the secure baselines (and ``traditional-dedup``, whose builder fixes its
  config) carry no persistence knob — for them the policy is purely the
  crash-model assumption, which the vulnerability table footnotes.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.reporting import Table
from repro.core.persistence import MetadataPersistenceConfig, MetadataPersistencePolicy
from repro.faults.plan import FaultPlan
from repro.runner.jobs import JobSpec, _core_params, canonical_json
from repro.system.cpu import CoreModelConfig

#: Policy grid of the paper's §V survey, in comparison order.
DEFAULT_POLICIES = ("battery_backed", "write_through", "periodic_writeback")

#: Controllers whose configs accept a persistence policy (runtime flush
#: traffic then matches the crash model; see the module docstring).
PERSISTENCE_AWARE_CONTROLLERS = ("dewrite", "direct", "parallel")

#: Default crash points, as fractions of the trace length.
DEFAULT_POINTS = (0.25, 0.5, 0.9)


def crash_recovery_spec(
    *,
    workload: str,
    controller: str,
    accesses: int,
    seed: int,
    plan: FaultPlan,
    policy: str,
    interval_ns: float,
    opts: dict[str, Any] | None = None,
    core: CoreModelConfig | None = None,
    experiment: str = "",
) -> JobSpec:
    """Spec for one crash/recovery/audit scenario."""
    # Validate eagerly so a bad grid fails at spec-build time, not in a
    # worker process.
    MetadataPersistenceConfig(
        policy=MetadataPersistencePolicy(policy), writeback_interval_ns=interval_ns
    )
    params = {
        "workload": workload,
        "controller": controller,
        "opts": opts or {},
        "accesses": accesses,
        "seed": seed,
        "core": _core_params(core),
        "plan": plan.to_dict(),
        "policy": policy,
        "interval_ns": float(interval_ns),
    }
    return JobSpec("crash-recovery", canonical_json(params), experiment)


def run_crash_recovery_job(params: dict[str, Any]) -> dict[str, Any]:
    """Job-kind executor: one full simulate → crash → recover → audit."""
    from repro.core.registry import build_controller
    from repro.faults.crash import run_crash_scenario
    from repro.nvm.memory import NvmMainMemory
    from repro.runner.jobs import trace_for

    core = CoreModelConfig(**params["core"])
    trace = trace_for(params["workload"], int(params["accesses"]), int(params["seed"]))
    plan = FaultPlan.from_dict(params["plan"])
    persistence = MetadataPersistenceConfig(
        policy=MetadataPersistencePolicy(params["policy"]),
        writeback_interval_ns=float(params["interval_ns"]),
    )
    controller = build_controller(params["controller"], NvmMainMemory(), **params["opts"])
    result = run_crash_scenario(controller, trace, plan, persistence, core)
    return {"scenario": result.to_dict(), "simulations": 1}


def campaign_specs(
    *,
    workload: str,
    accesses: int,
    seed: int,
    controllers: tuple[str, ...],
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    points: tuple[float, ...] = DEFAULT_POINTS,
    interval_ns: float = 100_000.0,
    cell_faults: int = 0,
    cell_fault_mode: str = "bit_flip",
    drop_probability: float = 0.0,
    core: CoreModelConfig | None = None,
    experiment: str = "faults",
) -> list[JobSpec]:
    """The campaign grid: one job per (controller × policy × crash point)."""
    for point in points:
        if not 0.0 < point <= 1.0:
            raise ValueError(f"crash points are trace fractions in (0, 1], got {point}")
    specs: list[JobSpec] = []
    for controller in controllers:
        for policy in policies:
            opts: dict[str, Any] = {}
            if controller in PERSISTENCE_AWARE_CONTROLLERS:
                opts["persistence"] = {
                    "policy": policy,
                    "writeback_interval_ns": float(interval_ns),
                }
            for point in points:
                plan = FaultPlan(
                    seed=seed,
                    power_loss_at_access=max(1, int(accesses * point)),
                    cell_faults=cell_faults,
                    cell_fault_mode=cell_fault_mode,
                    flush_drop_probability=drop_probability,
                )
                specs.append(
                    crash_recovery_spec(
                        workload=workload,
                        controller=controller,
                        accesses=accesses,
                        seed=seed,
                        plan=plan,
                        policy=policy,
                        interval_ns=interval_ns,
                        opts=opts,
                        core=core,
                        experiment=experiment,
                    )
                )
    return specs


def vulnerability_table(
    entries: list[tuple[str, dict[str, Any]]], interval_ns: float
) -> Table:
    """Aggregate scenario payloads into the §V vulnerability-window table.

    ``entries`` pairs each job's controller name with its ``"scenario"``
    payload dict; rows aggregate over crash points per (controller,
    policy).
    """
    grouped: dict[tuple[str, str], dict[str, Any]] = {}
    for controller, scenario in entries:
        policy = scenario["policy"]
        bucket = grouped.setdefault(
            (controller, policy),
            {"points": 0, "total": 0, "intact": 0, "stale": 0, "lost": 0,
             "lost_counters": 0, "recovery_ns": 0.0},
        )
        report = scenario["report"]
        bucket["points"] += 1
        bucket["total"] += report["total_lines"]
        bucket["intact"] += report["intact"]
        bucket["stale"] += report["stale"]
        bucket["lost"] += report["lost"]
        bucket["lost_counters"] += len(scenario["recovery"]["lost_counter_lines"])
        bucket["recovery_ns"] += scenario["recovery"]["recovery_time_ns"]

    table = Table(
        title="Crash vulnerability windows (per persistence policy)",
        headers=[
            "controller", "policy", "window_ns", "points",
            "lines", "intact", "stale", "lost", "lost_ctrs", "recovery_ns",
        ],
    )
    policy_order = {name: i for i, name in enumerate(DEFAULT_POLICIES)}
    for (controller, policy), bucket in sorted(
        grouped.items(), key=lambda item: (item[0][0], policy_order.get(item[0][1], 99))
    ):
        window = MetadataPersistenceConfig(
            policy=MetadataPersistencePolicy(policy), writeback_interval_ns=interval_ns
        ).vulnerability_window_ns()
        table.add_row(
            controller,
            policy,
            window,
            bucket["points"],
            bucket["total"],
            bucket["intact"],
            bucket["stale"],
            bucket["lost"],
            bucket["lost_counters"],
            bucket["recovery_ns"] / bucket["points"],
        )
    table.add_note(
        "window_ns is the worst-case age of metadata a crash can lose; counts "
        "aggregate over all crash points of the grid."
    )
    table.add_note(
        "policies are config-plumbed for dewrite/direct/parallel and a pure "
        "crash-model assumption for the secure baselines."
    )
    return table
