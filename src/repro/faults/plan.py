"""Seeded, sim-time-driven fault plans.

A :class:`FaultPlan` is the complete, deterministic description of what
goes wrong during one simulated run:

- **power loss** — the crash point, either an absolute sim time
  (``power_loss_ns``: the first request arriving at or after that instant
  never issues) or a request ordinal (``power_loss_at_access``: the run
  dies before the Nth access).  With neither set, power is pulled at the
  end of the trace — a clean-shutdown-without-flush scenario.
- **cell faults** — ``cell_faults`` worn NVM lines suffer stuck-at or
  disturb (bit-flip) faults at the crash instant, victim lines sampled
  proportionally to their :class:`~repro.nvm.wear.WearTracker` write
  counts (endurance failures hit the hottest cells first).
- **flush faults** — ``flush_drop_probability`` models dropped or torn
  metadata persists, honoring the configured
  :class:`~repro.core.persistence.MetadataPersistencePolicy` (see
  :class:`repro.faults.injectors.FlushFaultModel` for the per-policy
  semantics; battery-backed drains are never torn).

Everything is derived from ``seed``: the same plan over the same trace
and controller yields a byte-identical
:class:`~repro.faults.audit.ConsistencyReport`, which is what lets fault
campaigns run through the content-keyed :mod:`repro.runner` cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Cell-fault modes: disturb (toggle) vs stuck-at (force a value).
CELL_FAULT_MODES = ("bit_flip", "stuck_at_zero", "stuck_at_one")


@dataclass(frozen=True)
class FaultPlan:
    """One deterministic fault scenario (see the module docstring)."""

    seed: int = 1
    power_loss_ns: float | None = None
    power_loss_at_access: int | None = None
    cell_faults: int = 0
    cell_fault_mode: str = "bit_flip"
    cell_fault_bits: int = 1
    flush_drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.power_loss_ns is not None and self.power_loss_ns < 0:
            raise ValueError(f"power_loss_ns must be non-negative, got {self.power_loss_ns}")
        if self.power_loss_at_access is not None and self.power_loss_at_access < 1:
            raise ValueError(
                f"power_loss_at_access must be at least 1, got {self.power_loss_at_access}"
            )
        if self.cell_faults < 0:
            raise ValueError(f"cell_faults must be non-negative, got {self.cell_faults}")
        if self.cell_fault_mode not in CELL_FAULT_MODES:
            raise ValueError(
                f"cell_fault_mode must be one of {CELL_FAULT_MODES}, "
                f"got {self.cell_fault_mode!r}"
            )
        if self.cell_fault_bits < 1:
            raise ValueError(f"cell_fault_bits must be at least 1, got {self.cell_fault_bits}")
        if not 0.0 <= self.flush_drop_probability <= 1.0:
            raise ValueError(
                f"flush_drop_probability must be in [0, 1], "
                f"got {self.flush_drop_probability}"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-shaped form (travels inside job specs and cache keys)."""
        return {
            "seed": self.seed,
            "power_loss_ns": self.power_loss_ns,
            "power_loss_at_access": self.power_loss_at_access,
            "cell_faults": self.cell_faults,
            "cell_fault_mode": self.cell_fault_mode,
            "cell_fault_bits": self.cell_fault_bits,
            "flush_drop_probability": self.flush_drop_probability,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        return cls(
            seed=int(payload["seed"]),
            power_loss_ns=(
                None if payload.get("power_loss_ns") is None
                else float(payload["power_loss_ns"])
            ),
            power_loss_at_access=(
                None if payload.get("power_loss_at_access") is None
                else int(payload["power_loss_at_access"])
            ),
            cell_faults=int(payload.get("cell_faults", 0)),
            cell_fault_mode=str(payload.get("cell_fault_mode", "bit_flip")),
            cell_fault_bits=int(payload.get("cell_fault_bits", 1)),
            flush_drop_probability=float(payload.get("flush_drop_probability", 0.0)),
        )
