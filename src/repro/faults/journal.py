"""The semantic durability journal of the crash model.

The repo separates *function* from *timing*: the metadata caches
(:class:`~repro.core.metadata_cache.MetadataCache`) model only block
presence and dirtiness, while all functional table state lives in the
:class:`~repro.core.tables.DedupIndex` (or the baselines' counter dicts).
A crash model therefore cannot ask the caches "which entries were dirty" —
they don't know values.  Instead, the crash simulator journals every
*semantic* metadata update as it commits, stamped with the write's
completion time:

- ``map``    — logical line L now resolves to physical line P;
- ``ctr``    — physical line P's encryption counter is now C (the bytes in
  the array at P are ciphertext under C);
- ``stored`` — physical line P holds content fingerprinted C (dedup-family
  inverted-hash view; used to rebuild the hash table and detect broken
  references);
- ``free``   — physical line P no longer holds live content;
- ``shred``  — logical line L entered Silent Shredder's all-zero state (a
  counter-metadata manipulation, durable with the counter table);
- ``plain``  — logical line L is stored as *plaintext* (i-NVMM hot line:
  its counter is invalidated, the array bytes are raw).

Replaying the journal up to a durability horizon reconstructs exactly the
metadata image a :class:`~repro.faults.recovery.RecoveryManager` can read
back after power loss; replaying it in full reconstructs the metadata
state at the crash instant.  The difference between the two is what the
crash destroyed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

#: Journal event kinds (see the module docstring).
UPDATE_KINDS = ("map", "ctr", "stored", "free", "shred", "plain")


@dataclass(frozen=True)
class MetadataUpdate:
    """One semantic metadata update, stamped at its commit time."""

    ns: float
    kind: str
    key: int
    value: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in UPDATE_KINDS:
            raise ValueError(f"unknown update kind {self.kind!r}; known: {UPDATE_KINDS}")


@dataclass
class DurableState:
    """A metadata image reconstructed by replaying journal events.

    ``mapping``/``counters``/``stored`` mirror the dedup index's three
    value-bearing tables; ``shredded`` and ``plaintext`` carry the two
    baseline-specific line states that piggyback on counter metadata.
    """

    mapping: dict[int, int] = field(default_factory=dict)
    counters: dict[int, int] = field(default_factory=dict)
    stored: dict[int, int] = field(default_factory=dict)
    shredded: set[int] = field(default_factory=set)
    plaintext: set[int] = field(default_factory=set)

    def apply(self, update: MetadataUpdate) -> None:
        """Fold one journal event into the image (in journal order)."""
        kind, key, value = update.kind, update.key, update.value
        if kind == "map":
            if value is None:
                raise ValueError(f"map event for line {key} carries no target")
            self.mapping[key] = value
            self.shredded.discard(key)
            self.plaintext.discard(key)
        elif kind == "ctr":
            if value is None:
                raise ValueError(f"ctr event for line {key} carries no counter")
            self.counters[key] = value
            self.plaintext.discard(key)
        elif kind == "stored":
            if value is None:
                raise ValueError(f"stored event for line {key} carries no fingerprint")
            self.stored[key] = value
        elif kind == "free":
            self.stored.pop(key, None)
        elif kind == "shred":
            self.shredded.add(key)
            self.mapping.pop(key, None)
            self.plaintext.discard(key)
        else:  # "plain"
            self.mapping[key] = key
            self.counters.pop(key, None)
            self.shredded.discard(key)
            self.plaintext.add(key)


class DurabilityJournal:
    """Append-only log of :class:`MetadataUpdate` records for one run."""

    def __init__(self) -> None:
        self._events: list[MetadataUpdate] = []

    def record(self, update: MetadataUpdate) -> None:
        """Append one event (events must arrive in commit order)."""
        self._events.append(update)

    def extend(self, updates: Iterable[MetadataUpdate]) -> None:
        """Append a batch of events from one committed write."""
        self._events.extend(updates)

    def events(self) -> tuple[MetadataUpdate, ...]:
        """The full journal, in commit order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)


def replay(events: Iterable[MetadataUpdate]) -> DurableState:
    """Reconstruct the metadata image described by ``events`` (in order).

    Pass the full journal for the at-crash image, or a horizon/drop
    filtered subset (see :class:`repro.faults.injectors.FlushFaultModel`)
    for the durable image recovery starts from.
    """
    state = DurableState()
    for event in events:
        state.apply(event)
    return state
