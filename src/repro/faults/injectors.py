"""Deterministic fault injectors: NVM cell faults and torn metadata flushes.

Both injectors are pure functions of a seed plus the simulated history, so
the same :class:`~repro.faults.plan.FaultPlan` over the same run always
injects the same faults — the property that lets fault campaigns flow
through the content-keyed :mod:`repro.runner` cache.

**Cell faults** model endurance failures at the crash instant: victim
lines are sampled from the population the run actually wrote, weighted by
each line's :meth:`~repro.nvm.wear.WearTracker.writes_to` count (worn
cells fail first), and mutated in place via
:meth:`~repro.nvm.memory.NvmMainMemory.poke` — no bank traffic, no wear,
just silently corrupted cells for recovery to trip over.

**Flush faults** model dropped or torn metadata persists, honouring the
configured :class:`~repro.core.persistence.MetadataPersistencePolicy`:

- battery-backed — the battery drains the dirty cache; nothing tears;
- write-through — every update is its own NVM persist, so each journal
  event inside the horizon is dropped independently with probability *p*;
- periodic writeback — only the *final* flush batch can tear (earlier
  batches were re-persisted by every later flush), so drops are confined
  to events inside the last completed interval ``(horizon - interval,
  horizon]``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.persistence import MetadataPersistenceConfig, MetadataPersistencePolicy
from repro.faults.journal import MetadataUpdate
from repro.faults.plan import CELL_FAULT_MODES
from repro.nvm.memory import NvmMainMemory


@dataclass(frozen=True)
class CellFault:
    """One injected cell fault (machine-readable, travels in reports)."""

    line: int
    mode: str
    bits: tuple[int, ...]
    changed: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "line": self.line,
            "mode": self.mode,
            "bits": list(self.bits),
            "changed": self.changed,
        }


class CellFaultInjector:
    """Wear-correlated stuck-at / disturb faults on NVM lines."""

    def __init__(self, seed: int, faults: int, mode: str = "bit_flip", bits: int = 1) -> None:
        if faults < 0:
            raise ValueError(f"fault count must be non-negative, got {faults}")
        if mode not in CELL_FAULT_MODES:
            raise ValueError(f"mode must be one of {CELL_FAULT_MODES}, got {mode!r}")
        if bits < 1:
            raise ValueError(f"bits per fault must be at least 1, got {bits}")
        self.faults = faults
        self.mode = mode
        self.bits = bits
        self._rng = random.Random(f"{seed}:cell-faults")

    def _pick_victims(self, nvm: NvmMainMemory, line_limit: int | None) -> list[int]:
        """Distinct victim lines, weighted by accumulated write counts."""
        population = [
            line
            for line in nvm.wear.written_lines()
            if line_limit is None or line < line_limit
        ]
        weights = [nvm.wear.writes_to(line) for line in population]
        victims: list[int] = []
        while population and len(victims) < self.faults:
            # Sequential weighted picks without replacement keep victims
            # distinct while preserving the wear bias.
            [choice] = self._rng.choices(population, weights=weights)
            index = population.index(choice)
            population.pop(index)
            weights.pop(index)
            victims.append(choice)
        return victims

    def inject(self, nvm: NvmMainMemory, line_limit: int | None = None) -> list[CellFault]:
        """Corrupt up to ``faults`` worn lines in place; returns the record.

        ``line_limit`` restricts victims to the data region (recovery never
        reads metadata lines from the array — it replays the journal — so a
        fault there would be invisible to the audit).  A stuck-at fault
        whose target cell already held the stuck value is a silent no-op —
        it is still reported (``changed=False``) because the cell is
        genuinely broken even if this crash didn't expose it.
        """
        line_bits = nvm.config.organization.line_size_bytes * 8
        records: list[CellFault] = []
        for victim in self._pick_victims(nvm, line_limit):
            positions = tuple(sorted(self._rng.sample(range(line_bits), k=min(self.bits, line_bits))))
            raw = int.from_bytes(nvm.peek(victim), "little")
            faulty = raw
            for bit in positions:
                if self.mode == "bit_flip":
                    faulty ^= 1 << bit
                elif self.mode == "stuck_at_zero":
                    faulty &= ~(1 << bit)
                else:  # stuck_at_one
                    faulty |= 1 << bit
            changed = faulty != raw
            if changed:
                nvm.poke(victim, faulty.to_bytes(line_bits // 8, "little"))
            records.append(
                CellFault(line=victim, mode=self.mode, bits=positions, changed=changed)
            )
        return records


class FlushFaultModel:
    """Policy-aware dropped/torn metadata persists over the journal."""

    def __init__(
        self,
        persistence: MetadataPersistenceConfig,
        drop_probability: float,
        seed: int,
    ) -> None:
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {drop_probability}")
        self.persistence = persistence
        self.drop_probability = drop_probability
        self._rng = random.Random(f"{seed}:flush-faults")

    def _droppable(self, event: MetadataUpdate, horizon_ns: float) -> bool:
        policy = self.persistence.policy
        if policy is MetadataPersistencePolicy.BATTERY_BACKED:
            return False
        if policy is MetadataPersistencePolicy.WRITE_THROUGH:
            return True
        # Periodic writeback: only the last flush batch can tear.
        return event.ns > horizon_ns - self.persistence.writeback_interval_ns

    def retained(
        self, events: tuple[MetadataUpdate, ...], horizon_ns: float
    ) -> tuple[list[MetadataUpdate], list[MetadataUpdate]]:
        """Split the durable prefix of the journal into (kept, dropped).

        Events past ``horizon_ns`` were never persisted and are excluded
        from both lists — they are crash losses, not flush faults.
        """
        kept: list[MetadataUpdate] = []
        dropped: list[MetadataUpdate] = []
        for event in events:
            if event.ns > horizon_ns:
                continue
            if (
                self.drop_probability > 0.0
                and self._droppable(event, horizon_ns)
                and self._rng.random() < self.drop_probability
            ):
                dropped.append(event)
            else:
                kept.append(event)
        return kept, dropped
