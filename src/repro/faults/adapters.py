"""Per-controller-family bridges between live controllers and the journal.

The crash simulator (:mod:`repro.faults.crash`) is controller-agnostic: it
wraps any registered controller and, after every committed write, asks the
adapter which semantic metadata updates that write implied (see
:mod:`repro.faults.journal` for the event vocabulary).  After power loss,
the adapter also answers the recovery-side questions: how large is the
metadata region a recovery scan must read back, and what plaintext does a
rebuilt controller serve for a given logical line under a reconstructed
durable metadata image.

Three families cover the whole registry:

- :class:`DedupFamilyAdapter` — DeWrite and its integration-mode strawmen
  plus the trusted-fingerprint dedup baseline; all expose the four-table
  :class:`~repro.core.tables.DedupIndex` with colocated counters.
- :class:`SecureFamilyAdapter` — the CME-only baseline and the out-of-line
  page-dedup baseline (whose background scan reads but never rewrites
  lines, so the plain counter-table view is exact).  Mappings are the
  identity; only the counter table is metadata.
- :class:`ShredderAdapter` / :class:`INvmmAdapter` — thin extensions for
  the two baselines whose line state piggybacks on counter metadata
  (shredded-zero lines, plaintext hot lines).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

from repro.faults.journal import DurableState, MetadataUpdate

if TYPE_CHECKING:
    from repro.core.interface import MemoryController, WriteOutcome


class UnsupportedControllerError(TypeError):
    """The controller exposes no metadata surface the crash model understands."""


class ControllerFaultAdapter(ABC):
    """Extracts journalable metadata updates and recovery views."""

    #: Family label carried into reports ("dedup", "secure", ...).
    family = "unknown"

    def __init__(self, controller: "MemoryController") -> None:
        self.controller = controller

    @abstractmethod
    def snapshot_before_write(self, address: int) -> Any:
        """Capture whatever pre-write state ``updates_for_write`` needs."""

    @abstractmethod
    def updates_for_write(
        self, address: int, data: bytes, outcome: "WriteOutcome", snapshot: Any
    ) -> list[MetadataUpdate]:
        """Semantic metadata updates the committed write implied, stamped
        at the write's completion time."""

    @abstractmethod
    def metadata_lines(self) -> int:
        """NVM lines a recovery scan must read to rebuild the metadata."""

    @abstractmethod
    def data_lines(self) -> int:
        """Lines of the data region (the cell-fault victim universe)."""

    @abstractmethod
    def recovered_plaintext(self, durable: DurableState, logical: int) -> bytes:
        """Plaintext a rebuilt controller serves for ``logical`` under the
        reconstructed ``durable`` metadata image (post-crash array bytes)."""

    def metadata_decrypt_ns(self) -> float:
        """Per-line decrypt latency of the metadata region (recovery cost)."""
        return float(self.controller.config.metadata_decrypt_ns)

    @property
    def _zeros(self) -> bytes:
        return bytes(self.controller.line_size)


class DedupFamilyAdapter(ControllerFaultAdapter):
    """DeWrite-machinery controllers: four tables + colocated counters."""

    family = "dedup"

    def snapshot_before_write(self, address: int) -> int | None:
        # The physical line the logical address resolved to before the
        # write — needed to detect that the write released it.
        return self.controller.index.physical_of(address)

    def updates_for_write(
        self, address: int, data: bytes, outcome: "WriteOutcome", snapshot: Any
    ) -> list[MetadataUpdate]:
        index = self.controller.index
        ns = outcome.complete_ns
        new_phys = index.physical_of(address)
        if new_phys is None:
            raise RuntimeError(f"write of line {address} left it unmapped")
        crc = index.content_crc(new_phys)
        if crc is None:
            raise RuntimeError(f"write of line {address} targets empty line {new_phys}")
        updates = [
            MetadataUpdate(ns, "map", address, new_phys),
            MetadataUpdate(ns, "ctr", new_phys, index.peek_counter(new_phys)),
            MetadataUpdate(ns, "stored", new_phys, crc),
        ]
        old_phys = snapshot
        if old_phys is not None and old_phys != new_phys and not index.holds_data(old_phys):
            updates.append(MetadataUpdate(ns, "free", old_phys))
        return updates

    def metadata_lines(self) -> int:
        return int(self.controller.layout.metadata_lines)

    def data_lines(self) -> int:
        return int(self.controller.layout.data_lines)

    def recovered_plaintext(self, durable: DurableState, logical: int) -> bytes:
        phys = durable.mapping.get(logical)
        if phys is None:
            # Never durably mapped: a rebuilt index serves the erased pattern.
            return self._zeros
        raw = self.controller.nvm.peek(phys)
        counter = durable.counters.get(phys, 0)
        return self.controller.cme.decrypt(raw, phys, counter)


class SecureFamilyAdapter(ControllerFaultAdapter):
    """CME-only controllers: identity mapping, counter table as metadata."""

    family = "secure"

    def snapshot_before_write(self, address: int) -> Any:
        return None

    def _counter_of(self, address: int) -> int:
        controller = self.controller
        if controller._split is not None:
            return controller._split.counter_of(address)
        return controller._counters.get(address, 0)

    def updates_for_write(
        self, address: int, data: bytes, outcome: "WriteOutcome", snapshot: Any
    ) -> list[MetadataUpdate]:
        ns = outcome.complete_ns
        return [
            MetadataUpdate(ns, "map", address, address),
            MetadataUpdate(ns, "ctr", address, self._counter_of(address)),
        ]

    def metadata_lines(self) -> int:
        return int(self.controller._counter_lines)

    def data_lines(self) -> int:
        return int(self.controller.data_lines)

    def recovered_plaintext(self, durable: DurableState, logical: int) -> bytes:
        if logical in durable.shredded:
            return self._zeros
        if logical in durable.plaintext:
            return self.controller.nvm.peek(logical)
        phys = durable.mapping.get(logical)
        if phys is None:
            return self._zeros
        counter = durable.counters.get(phys)
        if counter is None:
            # Mapping survived but the counter didn't (torn flush): the
            # rebuilt controller has no counter entry and — like the live
            # read path — serves the erased pattern for counter-less lines.
            return self._zeros
        return self.controller.cme.decrypt(self.controller.nvm.peek(phys), phys, counter)


class ShredderAdapter(SecureFamilyAdapter):
    """Silent Shredder: zero writes become counter-metadata shred marks."""

    family = "shredder"

    def updates_for_write(
        self, address: int, data: bytes, outcome: "WriteOutcome", snapshot: Any
    ) -> list[MetadataUpdate]:
        if address in self.controller._shredded:
            # The write was cancelled; only the shred mark must persist.
            return [MetadataUpdate(outcome.complete_ns, "shred", address)]
        return super().updates_for_write(address, data, outcome, snapshot)


class INvmmAdapter(SecureFamilyAdapter):
    """i-NVMM: hot writes land in plaintext; evictions re-encrypt a victim."""

    family = "i-nvmm"

    def snapshot_before_write(self, address: int) -> int | None:
        # The LRU-oldest hot line is the only possible eviction victim of
        # this write (``_touch_hot`` evicts at most one line per write).
        return next(iter(self.controller._hot), None)

    def updates_for_write(
        self, address: int, data: bytes, outcome: "WriteOutcome", snapshot: Any
    ) -> list[MetadataUpdate]:
        controller = self.controller
        ns = outcome.complete_ns
        # Every i-NVMM write makes the line hot and stores it in plaintext
        # with its counter invalidated.
        updates = [MetadataUpdate(ns, "plain", address)]
        victim = snapshot
        if (
            victim is not None
            and victim not in controller._hot
            and victim in controller._counters
        ):
            # The write evicted the LRU line, which was re-encrypted in
            # place under a fresh counter.
            updates.append(MetadataUpdate(ns, "ctr", victim, controller._counters[victim]))
        return updates


def adapter_for(controller: "MemoryController") -> ControllerFaultAdapter:
    """The most specific adapter for ``controller`` (by family).

    Imports lazily, mirroring :mod:`repro.core.registry`, so the crash
    model never forces every baseline into memory.
    """
    from repro.baselines.i_nvmm import INvmmController
    from repro.baselines.secure_nvm import TraditionalSecureNvmController
    from repro.baselines.silent_shredder import SilentShredderController
    from repro.core.dewrite import DeWriteController

    if isinstance(controller, SilentShredderController):
        return ShredderAdapter(controller)
    if isinstance(controller, INvmmController):
        return INvmmAdapter(controller)
    if isinstance(controller, TraditionalSecureNvmController):
        # Covers the CME-only baseline and out-of-line page dedup (whose
        # background scan never mutates counters or line contents).
        return SecureFamilyAdapter(controller)
    if isinstance(controller, DeWriteController):
        return DedupFamilyAdapter(controller)
    raise UnsupportedControllerError(
        f"no fault adapter for controller type {type(controller).__name__}"
    )
