"""Post-recovery consistency auditing against the replay oracle.

The auditor holds the one piece of ground truth the simulated system never
sees: the full logical memory image at the crash instant, maintained by a
:class:`~repro.workloads.oracle.ReplayOracle` fed every pre-crash write.
After recovery it asks the controller's fault adapter what plaintext the
rebuilt system serves for every line the workload ever wrote, and
classifies each answer:

- **intact** — equals the line's latest pre-crash content;
- **stale**  — equals an *earlier* version of that line (decryptable but
  rolled back: the newer mapping/counter update missed the durability
  horizon);
- **lost**   — neither: garbage from a lost counter, a broken dedup
  reference, or an injected cell fault.

``intact + stale + lost == total`` always (every written line gets exactly
one verdict); :meth:`ConsistencyReport.verify` asserts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.faults.adapters import ControllerFaultAdapter
from repro.faults.journal import DurableState
from repro.workloads.oracle import ReplayOracle

#: Example addresses kept per verdict in the machine-readable report.
EXAMPLE_CAP = 8


@dataclass(frozen=True)
class ConsistencyReport:
    """Machine-readable verdict over every line the workload wrote."""

    total_lines: int
    intact: int
    stale: int
    lost: int
    stale_examples: tuple[int, ...] = ()
    lost_examples: tuple[int, ...] = ()

    def verify(self) -> None:
        """Assert the verdicts partition the audited universe."""
        if self.intact + self.stale + self.lost != self.total_lines:
            raise ValueError(
                f"verdicts do not partition the universe: "
                f"{self.intact} + {self.stale} + {self.lost} != {self.total_lines}"
            )

    @property
    def intact_fraction(self) -> float:
        """Fraction of written lines recovered bit-exact."""
        return self.intact / self.total_lines if self.total_lines else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "total_lines": self.total_lines,
            "intact": self.intact,
            "stale": self.stale,
            "lost": self.lost,
            "stale_examples": list(self.stale_examples),
            "lost_examples": list(self.lost_examples),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ConsistencyReport":
        report = cls(
            total_lines=int(payload["total_lines"]),
            intact=int(payload["intact"]),
            stale=int(payload["stale"]),
            lost=int(payload["lost"]),
            stale_examples=tuple(int(a) for a in payload.get("stale_examples", ())),
            lost_examples=tuple(int(a) for a in payload.get("lost_examples", ())),
        )
        report.verify()
        return report


class ConsistencyAuditor:
    """Compares the recovered system's view against the replay oracle."""

    def __init__(self, oracle: ReplayOracle, adapter: ControllerFaultAdapter) -> None:
        self.oracle = oracle
        self.adapter = adapter

    def audit(self, durable: DurableState) -> ConsistencyReport:
        """Classify every written line under the recovered metadata image."""
        intact = stale = lost = 0
        stale_examples: list[int] = []
        lost_examples: list[int] = []
        addresses = self.oracle.written_addresses()
        for address in addresses:
            recovered = self.adapter.recovered_plaintext(durable, address)
            verdict = self.oracle.classify(address, recovered)
            if verdict == "intact":
                intact += 1
            elif verdict == "stale":
                stale += 1
                if len(stale_examples) < EXAMPLE_CAP:
                    stale_examples.append(address)
            else:
                lost += 1
                if len(lost_examples) < EXAMPLE_CAP:
                    lost_examples.append(address)
        report = ConsistencyReport(
            total_lines=len(addresses),
            intact=intact,
            stale=stale,
            lost=lost,
            stale_examples=tuple(stale_examples),
            lost_examples=tuple(lost_examples),
        )
        report.verify()
        return report
