"""Crash simulation: power loss mid-run, then recovery and audit.

:class:`CrashSimulator` wraps any registered memory controller behind the
standard :class:`~repro.core.interface.MemoryController` surface, so the
unmodified :func:`~repro.system.simulator.simulate` loop drives it.  On
every forwarded request it:

1. checks the :class:`~repro.faults.plan.FaultPlan`'s power-loss trigger
   (sim-time instant or access ordinal) and raises
   :class:`PowerLossError` *before* issuing the doomed request;
2. feeds every committed write to the
   :class:`~repro.workloads.oracle.ReplayOracle` (ground truth) and asks
   the controller's fault adapter which semantic metadata updates the
   write implied, journaling them
   (:class:`~repro.faults.journal.DurabilityJournal`).

The crash instant is the completion time of the last committed request:
in-flight array writes finish draining (the device's write circuit holds
enough charge to complete a programmed line), and it is the *metadata*
durability policy that decides what survives above that — exactly the
paper's §V framing.

:func:`run_crash_scenario` is the one-call orchestration: simulate until
power loss (or trace end — a crash-without-clean-shutdown), inject
wear-correlated cell faults, recover, audit, and emit ``fault.*`` events
on the trace bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.interface import MemoryController, ReadOutcome, WriteOutcome
from repro.core.persistence import MetadataPersistenceConfig
from repro.faults.adapters import adapter_for
from repro.faults.audit import ConsistencyAuditor, ConsistencyReport
from repro.faults.injectors import CellFault, CellFaultInjector, FlushFaultModel
from repro.faults.journal import DurabilityJournal
from repro.faults.plan import FaultPlan
from repro.faults.recovery import RecoveryManager, RecoveryResult
from repro.obs.trace import TracerLike
from repro.system.cpu import CoreModelConfig
from repro.workloads.oracle import ReplayOracle
from repro.workloads.trace import Trace


class PowerLossError(RuntimeError):
    """Power failed at ``crash_ns``; the run cannot continue."""

    def __init__(self, crash_ns: float) -> None:
        super().__init__(f"power lost at {crash_ns:.1f} ns")
        self.crash_ns = crash_ns


class CrashSimulator(MemoryController):
    """Journal-keeping wrapper that pulls the plug per the fault plan."""

    def __init__(
        self,
        controller: MemoryController,
        plan: FaultPlan,
        oracle: ReplayOracle | None = None,
    ) -> None:
        super().__init__(controller.nvm)
        self.inner = controller
        self.adapter = adapter_for(controller)
        self.plan = plan
        self.journal = DurabilityJournal()
        self.oracle = oracle if oracle is not None else ReplayOracle()
        self.accesses = 0
        self.last_complete_ns = 0.0

    @property
    def stats(self):  # noqa: ANN201 - mirrors the wrapped controller's stats
        return self.inner.stats

    def _propagate_observers(self, tracer: TracerLike, timeline) -> None:
        self.inner.attach_observers(tracer=tracer, timeline=timeline)

    def _maybe_crash(self, arrival_ns: float) -> None:
        """Pull the plug before the current request if the plan says so."""
        self.accesses += 1
        plan = self.plan
        if plan.power_loss_at_access is not None and self.accesses >= plan.power_loss_at_access:
            raise PowerLossError(self.last_complete_ns)
        if plan.power_loss_ns is not None and arrival_ns >= plan.power_loss_ns:
            # Committed writes may have completed after the nominal loss
            # instant (they drained); the crash point covers them all.
            raise PowerLossError(max(self.last_complete_ns, plan.power_loss_ns))

    def write(self, address: int, data: bytes, arrival_ns: float) -> WriteOutcome:
        self._maybe_crash(arrival_ns)
        snapshot = self.adapter.snapshot_before_write(address)
        outcome = self.inner.write(address, data, arrival_ns)
        self.oracle.observe_write(address, data)
        self.journal.extend(self.adapter.updates_for_write(address, data, outcome, snapshot))
        if outcome.complete_ns > self.last_complete_ns:
            self.last_complete_ns = outcome.complete_ns
        return outcome

    def read(self, address: int, arrival_ns: float) -> ReadOutcome:
        self._maybe_crash(arrival_ns)
        outcome = self.inner.read(address, arrival_ns)
        if outcome.complete_ns > self.last_complete_ns:
            self.last_complete_ns = outcome.complete_ns
        return outcome


@dataclass(frozen=True)
class CrashScenarioResult:
    """Everything one fault scenario produced, JSON-serialisable."""

    plan: FaultPlan
    policy: str
    completed_trace: bool
    crash_ns: float
    accesses_before_crash: int
    recovery: RecoveryResult
    report: ConsistencyReport
    cell_faults: tuple[CellFault, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan": self.plan.to_dict(),
            "policy": self.policy,
            "completed_trace": self.completed_trace,
            "crash_ns": self.crash_ns,
            "accesses_before_crash": self.accesses_before_crash,
            "recovery": self.recovery.to_dict(),
            "report": self.report.to_dict(),
            "cell_faults": [fault.to_dict() for fault in self.cell_faults],
        }


def run_crash_scenario(
    controller: MemoryController,
    trace: Trace,
    plan: FaultPlan,
    persistence: MetadataPersistenceConfig,
    core: CoreModelConfig | None = None,
    tracer: TracerLike | None = None,
) -> CrashScenarioResult:
    """Simulate under ``plan``, then recover and audit the wreckage.

    ``persistence`` is the crash-consistency policy the durability model
    honours.  For DeWrite-family controllers it should match the
    controller's own configured policy (so runtime flush traffic and the
    crash model agree); for the secure baselines — whose configs carry no
    persistence knob — it is purely the crash-model assumption.
    """
    from repro.system.simulator import simulate

    wrapper = CrashSimulator(controller, plan)
    if tracer is not None:
        wrapper.attach_observers(tracer=tracer)
    tracer = wrapper.tracer

    completed = False
    try:
        simulate(wrapper, trace, core)
        completed = True
        crash_ns = wrapper.last_complete_ns
    except PowerLossError as exc:
        crash_ns = exc.crash_ns

    if tracer.enabled:
        tracer.event(
            "fault.power_loss",
            sim_ns=crash_ns,
            policy=persistence.policy.value,
            accesses=wrapper.accesses,
            completed_trace=completed,
        )

    injector = CellFaultInjector(
        seed=plan.seed,
        faults=plan.cell_faults,
        mode=plan.cell_fault_mode,
        bits=plan.cell_fault_bits,
    )
    cell_faults = injector.inject(controller.nvm, line_limit=wrapper.adapter.data_lines())
    if tracer.enabled:
        for fault in cell_faults:
            tracer.event(
                "fault.cell",
                sim_ns=crash_ns,
                line=fault.line,
                mode=fault.mode,
                bits=list(fault.bits),
                changed=fault.changed,
            )

    flush_faults = FlushFaultModel(
        persistence, drop_probability=plan.flush_drop_probability, seed=plan.seed
    )
    manager = RecoveryManager(wrapper.adapter, persistence, flush_faults)
    recovery = manager.recover(wrapper.journal.events(), crash_ns)
    if tracer.enabled and recovery.dropped_events:
        tracer.event(
            "fault.flush_drop",
            sim_ns=crash_ns,
            dropped=recovery.dropped_events,
            policy=persistence.policy.value,
        )

    auditor = ConsistencyAuditor(wrapper.oracle, wrapper.adapter)
    report = auditor.audit(recovery.durable)
    return CrashScenarioResult(
        plan=plan,
        policy=persistence.policy.value,
        completed_trace=completed,
        crash_ns=crash_ns,
        accesses_before_crash=wrapper.accesses - (0 if completed else 1),
        recovery=recovery,
        report=report,
        cell_faults=tuple(cell_faults),
    )
