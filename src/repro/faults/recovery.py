"""Post-crash metadata recovery over the durable journal image.

After power loss the volatile controller is gone; what remains is the NVM
array plus whatever metadata the configured
:class:`~repro.core.persistence.MetadataPersistencePolicy` made durable.
The :class:`RecoveryManager` models the reboot-time scan that rebuilds the
dedup index / counter table from that durable image:

1. compute the durability horizon for the crash instant
   (:meth:`~repro.core.persistence.MetadataPersistenceConfig.durable_horizon_ns`);
2. run the journal's durable prefix through the
   :class:`~repro.faults.injectors.FlushFaultModel` (torn persists);
3. replay the surviving events into a durable
   :class:`~repro.faults.journal.DurableState`, and the *full* journal
   into the at-crash state the run actually reached;
4. diff the two images into the damage metrics: lines whose encryption
   counter advanced past its durable value (rendered undecryptable —
   counter-mode pads are counter-specific) and logical lines whose dedup
   reference points at content that changed after the horizon.

The scan cost is charged as one sequential read + metadata-block decrypt
per metadata line — the price the paper's §V survey attributes to
recovery-based schemes versus battery-backed ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.persistence import MetadataPersistenceConfig
from repro.faults.adapters import ControllerFaultAdapter
from repro.faults.injectors import FlushFaultModel
from repro.faults.journal import DurableState, MetadataUpdate, replay


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of one reboot-time metadata recovery."""

    crash_ns: float
    horizon_ns: float
    policy: str
    total_events: int
    durable_events: int
    dropped_events: int
    recovered_mappings: int
    recovered_counters: int
    lost_counter_lines: tuple[int, ...]
    broken_references: tuple[int, ...]
    recovery_time_ns: float
    durable: DurableState = field(compare=False, repr=False)
    at_crash: DurableState = field(compare=False, repr=False)

    def to_dict(self) -> dict[str, Any]:
        """JSON-shaped metrics (the two state images stay in-process)."""
        return {
            "crash_ns": self.crash_ns,
            "horizon_ns": self.horizon_ns,
            "policy": self.policy,
            "total_events": self.total_events,
            "durable_events": self.durable_events,
            "dropped_events": self.dropped_events,
            "recovered_mappings": self.recovered_mappings,
            "recovered_counters": self.recovered_counters,
            "lost_counter_lines": list(self.lost_counter_lines),
            "broken_references": list(self.broken_references),
            "recovery_time_ns": self.recovery_time_ns,
        }


class RecoveryManager:
    """Rebuilds the durable metadata image and quantifies the damage."""

    def __init__(
        self,
        adapter: ControllerFaultAdapter,
        persistence: MetadataPersistenceConfig,
        flush_faults: FlushFaultModel | None = None,
    ) -> None:
        self.adapter = adapter
        self.persistence = persistence
        self.flush_faults = flush_faults

    def recover(
        self, events: tuple[MetadataUpdate, ...], crash_ns: float
    ) -> RecoveryResult:
        """Run the recovery scan for a crash at ``crash_ns``."""
        horizon = self.persistence.durable_horizon_ns(crash_ns)
        if self.flush_faults is not None:
            kept, dropped = self.flush_faults.retained(events, horizon)
        else:
            kept = [event for event in events if event.ns <= horizon]
            dropped = []
        durable = replay(kept)
        at_crash = replay(events)

        lost_counters = tuple(
            sorted(
                phys
                for phys in set(durable.mapping.values())
                if at_crash.counters.get(phys, 0) > durable.counters.get(phys, 0)
            )
        )
        broken = tuple(
            sorted(
                logical
                for logical, phys in durable.mapping.items()
                if durable.stored.get(phys) != at_crash.stored.get(phys)
            )
        )
        nvm = self.adapter.controller.nvm
        scan_lines = self.adapter.metadata_lines()
        recovery_time = scan_lines * (
            nvm.config.timing.read_ns + self.adapter.metadata_decrypt_ns()
        )
        return RecoveryResult(
            crash_ns=crash_ns,
            horizon_ns=horizon,
            policy=self.persistence.policy.value,
            total_events=len(events),
            durable_events=len(kept),
            dropped_events=len(dropped),
            recovered_mappings=len(durable.mapping),
            recovered_counters=len(durable.counters),
            lost_counter_lines=lost_counters,
            broken_references=broken,
            recovery_time_ns=recovery_time,
            durable=durable,
            at_crash=at_crash,
        )
