"""repro.faults: deterministic fault injection, crash recovery, auditing.

The crash-consistency counterpart of the performance stack.  Where the
rest of the repo measures how fast each secure-NVM controller runs, this
package measures what each controller *loses* when the power fails:

- :mod:`repro.faults.plan`      — seeded, sim-time-driven fault plans;
- :mod:`repro.faults.journal`   — semantic metadata-durability journal;
- :mod:`repro.faults.adapters`  — per-controller-family journal bridges;
- :mod:`repro.faults.injectors` — wear-correlated cell faults and
  policy-aware torn metadata flushes;
- :mod:`repro.faults.crash`     — the power-loss wrapper and the
  simulate → crash → recover → audit orchestration;
- :mod:`repro.faults.recovery`  — reboot-time metadata reconstruction;
- :mod:`repro.faults.audit`     — oracle-backed intact/stale/lost verdicts;
- :mod:`repro.faults.campaign`  — runner-integrated fault campaigns and
  the §V vulnerability-window table.

See docs/architecture.md §13 for the design rationale.
"""

from repro.faults.adapters import (
    ControllerFaultAdapter,
    UnsupportedControllerError,
    adapter_for,
)
from repro.faults.audit import ConsistencyAuditor, ConsistencyReport
from repro.faults.campaign import campaign_specs, crash_recovery_spec, vulnerability_table
from repro.faults.crash import (
    CrashScenarioResult,
    CrashSimulator,
    PowerLossError,
    run_crash_scenario,
)
from repro.faults.injectors import CellFault, CellFaultInjector, FlushFaultModel
from repro.faults.journal import DurabilityJournal, DurableState, MetadataUpdate, replay
from repro.faults.plan import CELL_FAULT_MODES, FaultPlan
from repro.faults.recovery import RecoveryManager, RecoveryResult

__all__ = [
    "CELL_FAULT_MODES",
    "CellFault",
    "CellFaultInjector",
    "ConsistencyAuditor",
    "ConsistencyReport",
    "ControllerFaultAdapter",
    "CrashScenarioResult",
    "CrashSimulator",
    "DurabilityJournal",
    "DurableState",
    "FaultPlan",
    "FlushFaultModel",
    "MetadataUpdate",
    "PowerLossError",
    "RecoveryManager",
    "RecoveryResult",
    "UnsupportedControllerError",
    "adapter_for",
    "campaign_specs",
    "crash_recovery_spec",
    "replay",
    "run_crash_scenario",
    "vulnerability_table",
]
