"""Declarative experiment registry: one :class:`ExperimentSpec` per figure.

The CLI's ``list``/``figure``/``run`` subcommands and the parallel engine
all read from this registry instead of hard-coded dispatch tables, so
adding a paper figure is one :func:`register_experiment` call supplying:

- ``id``      — the CLI name (``fig12``, ``system``, ...);
- ``anchor``  — where in the paper the artifact lives (``"Fig. 12"``);
- ``description`` — one line for ``python -m repro list``;
- ``render``  — ``ExperimentSettings -> Table`` (the functions in
  :mod:`repro.analysis.experiments`);
- ``plan``    — ``ExperimentSettings -> list[JobSpec]``: the simulation
  jobs the render will request, which the parallel engine expands,
  deduplicates across figures and fans out ahead of rendering.

Figures whose renderers only replay traces through oracles (no system
simulation) plan zero jobs and simply render inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis import experiments as ex
from repro.analysis.reporting import Table
from repro.runner.jobs import JobSpec

PlanFn = Callable[[ex.ExperimentSettings], list[JobSpec]]
RenderFn = Callable[[ex.ExperimentSettings], Table]


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered evaluation artifact (figure/table of the paper)."""

    id: str
    anchor: str
    description: str
    render: RenderFn
    plan: PlanFn

    def jobs(self, settings: ex.ExperimentSettings) -> list[JobSpec]:
        """The simulation jobs this figure's render will request."""
        return self.plan(settings)


_REGISTRY: dict[str, ExperimentSpec] = {}

#: Paper figure numbers that are rendered as part of a combined artifact.
#: ``fig14`` is a valid CLI name everywhere a figure id is accepted; it
#: resolves to the ``system`` table that carries Figs. 14/16/17/19.
FIGURE_ALIASES: dict[str, str] = {
    "fig14": "system",
    "fig16": "system",
    "fig17": "system",
    "fig19": "system",
    "fig15": "modes",
    "fig20": "modes",
}


class UnknownExperimentError(KeyError):
    """Raised when a figure id is not registered."""


def register_experiment(spec: ExperimentSpec, *, replace: bool = False) -> None:
    """Add one spec to the registry (the figure id must be unique)."""
    if not replace and spec.id in _REGISTRY:
        raise ValueError(f"experiment {spec.id!r} is already registered")
    _REGISTRY[spec.id] = spec


def experiment(spec_id: str) -> ExperimentSpec:
    """Look one spec up by id."""
    try:
        return _REGISTRY[spec_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownExperimentError(
            f"unknown experiment {spec_id!r}; registered: {known}"
        ) from None


def resolve_id(spec_id: str) -> str:
    """Canonical registry id for ``spec_id`` (alias-aware)."""
    return FIGURE_ALIASES.get(spec_id, spec_id)


def resolve_experiment(spec_id: str) -> ExperimentSpec:
    """Look one spec up by id or paper-figure alias (``fig14`` → ``system``)."""
    return experiment(resolve_id(spec_id))


def all_experiments() -> list[ExperimentSpec]:
    """Every registered spec, in id order."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def experiment_ids() -> list[str]:
    """All registered figure ids, sorted."""
    return sorted(_REGISTRY)


def plan_for(spec_ids: list[str], settings: ex.ExperimentSettings) -> list[JobSpec]:
    """Planned jobs for a set of figures, deduplicated by job identity.

    Order is preserved (first figure's jobs first) so progress output
    follows the figure order; figures sharing a comparison share the job.
    """
    seen: set[tuple[str, str]] = set()
    jobs: list[JobSpec] = []
    for spec_id in spec_ids:
        for job in experiment(spec_id).jobs(settings):
            if job.identity in seen:
                continue
            seen.add(job.identity)
            jobs.append(job)
    return jobs


def _no_jobs(settings: ex.ExperimentSettings) -> list[JobSpec]:
    return []


_COMPARISON_FIGURES = (
    ("fig6", "Fig. 6", "CRC-32 collision rate", ex.collision_survey),
    ("fig7", "Fig. 7", "reference counts", ex.reference_count_survey),
    ("fig12", "Fig. 12", "write reduction", ex.write_reduction_survey),
    (
        "system",
        "Figs. 14/16/17/19",
        "write/read speedup, IPC, energy (Figs. 14/16/17/19)",
        ex.system_comparison_table,
    ),
)

for _id, _anchor, _description, _render in _COMPARISON_FIGURES:
    register_experiment(
        ExperimentSpec(
            id=_id,
            anchor=_anchor,
            description=_description,
            render=_render,
            plan=ex.comparison_jobs,
        )
    )

register_experiment(
    ExperimentSpec(
        id="fig2",
        anchor="Fig. 2",
        description="duplicate lines written to memory",
        render=ex.duplication_survey,
        plan=_no_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="fig4",
        anchor="Fig. 4",
        description="prediction accuracy",
        render=ex.prediction_accuracy_survey,
        plan=_no_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="table1",
        anchor="Table I",
        description="detection latency model",
        render=ex.table1_detection_latency,
        plan=_no_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="fig13",
        anchor="Fig. 13",
        description="bit flips under DCW/FNW/DEUCE",
        render=ex.bit_flip_comparison,
        plan=ex.bitflip_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="modes",
        anchor="Figs. 15/20",
        description="direct vs parallel vs DeWrite (Figs. 15/20)",
        render=ex.integration_mode_comparison,
        plan=ex.integration_mode_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="fig18",
        anchor="Fig. 18",
        description="worst case, no duplicates",
        render=ex.worst_case_comparison,
        plan=ex.worst_case_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="fig21",
        anchor="Fig. 21",
        description="metadata cache sizing",
        render=ex.metadata_cache_sweep,
        plan=ex.metadata_sweep_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="storage",
        anchor="SIV-E1",
        description="metadata storage overhead (SIV-E1)",
        render=ex.storage_overhead_table,
        plan=_no_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="related",
        anchor="SV",
        description="related-work comparison (SV)",
        render=ex.related_work_comparison,
        plan=ex.related_work_jobs,
    )
)
register_experiment(
    ExperimentSpec(
        id="tradedup",
        anchor="Table I(b)",
        description="traditional SHA-1 dedup vs DeWrite latency",
        render=ex.traditional_dedup_comparison,
        plan=ex.traditional_dedup_jobs,
    )
)
