"""JSON export of experiment tables and simulation reports.

Downstream tooling (plotting scripts, regression trackers) consumes these
instead of parsing rendered text.  Everything emitted is plain JSON types.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any

from repro.analysis.reporting import Table
from repro.system.metrics import SimulationReport


def table_to_dict(table: Table) -> dict[str, Any]:
    """A table as ``{title, headers, rows, notes}`` with listified rows."""
    return {
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def report_to_dict(report: SimulationReport) -> dict[str, Any]:
    """A simulation report flattened to JSON types."""
    return {
        "workload": report.workload,
        "controller": report.controller,
        "instructions": report.instructions,
        "total_cycles": report.total_cycles,
        "ipc": report.ipc,
        "makespan_ns": report.makespan_ns,
        "mean_write_latency_ns": report.mean_write_latency_ns,
        "mean_read_latency_ns": report.mean_read_latency_ns,
        "energy_nj": report.energy_nj,
        "energy_breakdown": dict(report.energy_breakdown),
        "mean_bank_wait_ns": report.mean_bank_wait_ns,
        "wear": dataclasses.asdict(report.wear),
        "stats": report.stats.as_dict(),
    }


def dump_json(payload: Any, path: str | pathlib.Path) -> None:
    """Write any exported structure as pretty-printed JSON."""
    pathlib.Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_json(path: str | pathlib.Path) -> Any:
    """Read back a previously dumped structure."""
    return json.loads(pathlib.Path(path).read_text())
