"""Plain-text table rendering for experiment results.

Each experiment returns a :class:`Table`; benchmarks print it, tests assert
on its rows, and EXPERIMENTS.md embeds the rendered output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return f"{value:,.0f}"
        if magnitude >= 10:
            return f"{value:.1f}"
        if magnitude >= 0.01:
            return f"{value:.3f}"
        return f"{value:.2e}"
    return str(value)


@dataclass
class Table:
    """A titled, aligned, plain-text table of experiment rows."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the header arity)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        """Attach a free-text annotation rendered under the table."""
        self.notes.append(note)

    def column(self, name: str) -> list[Any]:
        """All values of one column, by header name."""
        try:
            index = list(self.headers).index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {list(self.headers)}") from None
        return [row[index] for row in self.rows]

    def row_for(self, key: Any) -> Sequence[Any]:
        """First row whose first cell equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(f"no row keyed {key!r}")

    def render(self) -> str:
        """Monospace rendering with aligned columns."""
        cells = [[str(h) for h in self.headers]]
        cells.extend([_format_cell(v) for v in row] for row in self.rows)
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.headers))]
        lines = [self.title, "-" * len(self.title)]
        for i, row in enumerate(cells):
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
