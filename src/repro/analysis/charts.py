"""ASCII bar charts for experiment tables.

The paper presents per-application results as bar charts; this renders a
:class:`~repro.analysis.reporting.Table` column the same way in plain
text, so ``python -m repro figure system --chart write_speedup`` visually
mirrors Fig. 14 in a terminal.
"""

from __future__ import annotations

from repro.analysis.reporting import Table

_BAR = "█"
_HALF = "▌"

#: Intensity ramp for heatmaps, darkest last; index 0 renders truly-zero cells.
_SHADES = " .:-=+*#%@"


def render_bar_chart(
    table: Table,
    value_column: str,
    label_column: str | None = None,
    width: int = 50,
    reference: float | None = None,
) -> str:
    """Render one numeric column of a table as horizontal bars.

    Args:
        table: the experiment table.
        value_column: header of the numeric column to plot.
        label_column: header of the label column (default: first column).
        width: bar width in characters at the maximum value.
        reference: optional value marked with ``|`` on each row (e.g. 1.0
            for speedup charts, separating winners from losers).
    """
    labels = table.column(label_column) if label_column else [row[0] for row in table.rows]
    values = table.column(value_column)
    numeric = [(str(l), float(v)) for l, v in zip(labels, values)]
    if not numeric:
        return f"{table.title}\n(no rows)"

    peak = max(abs(v) for _, v in numeric) or 1.0
    label_width = max(len(l) for l, _ in numeric)
    scale = width / peak
    reference_position = int(reference * scale) if reference is not None else None

    lines = [f"{table.title} — {value_column}", ""]
    for label, value in numeric:
        filled = value * scale
        whole = int(filled)
        bar = _BAR * whole + (_HALF if filled - whole >= 0.5 else "")
        if reference_position is not None and 0 <= reference_position <= width:
            padded = list(bar.ljust(width + 1))
            if reference_position < len(padded) and padded[reference_position] == " ":
                padded[reference_position] = "|"
            elif reference_position >= len(padded):
                padded.extend(" " * (reference_position - len(padded)) + "|")
            bar = "".join(padded).rstrip()
        lines.append(f"{label.rjust(label_width)}  {bar} {value:.3g}")
    if reference is not None:
        lines.append(f"{' ' * label_width}  (| marks {reference:g})")
    return "\n".join(lines)


def render_heatmap(
    grid: list[list[int]] | list[list[float]],
    *,
    title: str = "",
    cell_label: str = "value",
) -> str:
    """Render a 2-D intensity grid (e.g. a wear heatmap) as shaded ASCII.

    Each cell maps its value linearly onto a ten-step shade ramp scaled
    to the grid maximum; zero cells stay blank so cold regions read as
    empty space.  A legend line states the scale so the picture carries
    its own units.
    """
    if not grid or not grid[0]:
        return f"{title}\n(empty grid)" if title else "(empty grid)"
    peak = max(max(row) for row in grid)
    lines = [title] if title else []
    top = len(_SHADES) - 1
    for row in grid:
        cells = []
        for value in row:
            if peak <= 0 or value <= 0:
                cells.append(_SHADES[0])
            else:
                cells.append(_SHADES[max(1, round(value / peak * top))])
        lines.append("".join(cells))
    lines.append(
        f"scale: ' '=0  '{_SHADES[1]}'≈{peak / top:.3g}  '{_SHADES[-1]}'={peak:.3g} "
        f"{cell_label}/cell"
    )
    return "\n".join(lines)


def heatmap_csv(grid: list[list[int]] | list[list[float]]) -> str:
    """The raw heatmap grid as CSV (one row per line, no header)."""
    return "\n".join(",".join(repr(value) for value in row) for row in grid) + "\n"
