"""Evaluation harness: one runner per table/figure of the paper.

:mod:`repro.analysis.experiments` exposes a function per evaluation
artifact (Fig. 2 through Fig. 21, Table I, §IV-E1) returning a
:class:`repro.analysis.reporting.Table` whose rows mirror what the paper
plots; the benchmark suite calls these and prints them.
:class:`ExperimentSettings` scales everything (trace length, app subset)
so smoke tests and full runs share one code path.
"""

from repro.analysis.experiments import (
    ComparisonResult,
    ExperimentSettings,
    bit_flip_comparison,
    collision_survey,
    duplication_survey,
    evaluate_all,
    integration_mode_comparison,
    metadata_cache_sweep,
    prediction_accuracy_survey,
    reference_count_survey,
    related_work_comparison,
    run_app_comparison,
    storage_overhead_table,
    system_comparison_table,
    table1_detection_latency,
    traditional_dedup_comparison,
    worst_case_comparison,
    write_reduction_survey,
)
from repro.analysis.charts import render_bar_chart
from repro.analysis.export import dump_json, load_json, report_to_dict, table_to_dict
from repro.analysis.registry import (
    ExperimentSpec,
    all_experiments,
    experiment,
    experiment_ids,
    plan_for,
    register_experiment,
)
from repro.analysis.regression import RegressionReport, compare_tables
from repro.analysis.reporting import Table

__all__ = [
    "ExperimentSettings",
    "ComparisonResult",
    "Table",
    "duplication_survey",
    "prediction_accuracy_survey",
    "table1_detection_latency",
    "collision_survey",
    "reference_count_survey",
    "evaluate_all",
    "run_app_comparison",
    "system_comparison_table",
    "bit_flip_comparison",
    "integration_mode_comparison",
    "worst_case_comparison",
    "metadata_cache_sweep",
    "storage_overhead_table",
    "write_reduction_survey",
    "traditional_dedup_comparison",
    "related_work_comparison",
    "ExperimentSpec",
    "register_experiment",
    "experiment",
    "experiment_ids",
    "all_experiments",
    "plan_for",
    "render_bar_chart",
    "table_to_dict",
    "report_to_dict",
    "dump_json",
    "load_json",
    "compare_tables",
    "RegressionReport",
]
