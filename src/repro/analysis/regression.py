"""Result-regression comparison: did a code change move the numbers?

A reproduction repo lives or dies by knowing when its figures drift.
:func:`compare_tables` diffs two exported tables (current run vs a
committed reference JSON) cell by cell with a relative tolerance and
reports every drift; `python -m repro figure <id> --json new.json`
produces the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Drift:
    """One cell whose value moved beyond tolerance."""

    row_key: Any
    column: str
    reference: float
    current: float

    @property
    def relative_change(self) -> float:
        """Signed relative change vs the reference."""
        if self.reference == 0:
            return float("inf") if self.current else 0.0
        return (self.current - self.reference) / abs(self.reference)

    def __str__(self) -> str:
        return (
            f"{self.row_key}/{self.column}: {self.reference:g} -> {self.current:g} "
            f"({self.relative_change:+.1%})"
        )


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of comparing two exported tables."""

    drifts: list[Drift]
    missing_rows: list[Any]
    extra_rows: list[Any]
    cells_compared: int

    @property
    def clean(self) -> bool:
        """True when nothing drifted and the row sets match."""
        return not self.drifts and not self.missing_rows and not self.extra_rows

    def summary(self) -> str:
        """One-paragraph human description."""
        if self.clean:
            return f"clean: {self.cells_compared} cells within tolerance"
        lines = [
            f"{len(self.drifts)} drifted cells, {len(self.missing_rows)} missing rows, "
            f"{len(self.extra_rows)} extra rows (of {self.cells_compared} cells compared)"
        ]
        lines.extend(str(d) for d in self.drifts[:20])
        if len(self.drifts) > 20:
            lines.append(f"... and {len(self.drifts) - 20} more")
        return "\n".join(lines)


def compare_tables(
    reference: dict[str, Any],
    current: dict[str, Any],
    relative_tolerance: float = 0.05,
    absolute_tolerance: float = 1e-9,
) -> RegressionReport:
    """Compare two ``table_to_dict`` exports keyed on their first column.

    Non-numeric cells must match exactly; numeric cells may move within
    ``relative_tolerance`` (or ``absolute_tolerance`` near zero).
    """
    if reference["headers"] != current["headers"]:
        raise ValueError(
            f"header mismatch: {reference['headers']} vs {current['headers']}"
        )
    headers = reference["headers"]
    reference_rows = {row[0]: row for row in reference["rows"]}
    current_rows = {row[0]: row for row in current["rows"]}

    drifts: list[Drift] = []
    compared = 0
    for key, ref_row in reference_rows.items():
        cur_row = current_rows.get(key)
        if cur_row is None:
            continue
        for column, ref_value, cur_value in zip(headers[1:], ref_row[1:], cur_row[1:]):
            compared += 1
            if isinstance(ref_value, (int, float)) and isinstance(cur_value, (int, float)):
                delta = abs(cur_value - ref_value)
                limit = max(absolute_tolerance, relative_tolerance * abs(ref_value))
                if delta > limit:
                    drifts.append(Drift(key, column, float(ref_value), float(cur_value)))
            elif ref_value != cur_value:
                drifts.append(Drift(key, column, float("nan"), float("nan")))

    return RegressionReport(
        drifts=drifts,
        missing_rows=[k for k in reference_rows if k not in current_rows],
        extra_rows=[k for k in current_rows if k not in reference_rows],
        cells_compared=compared,
    )
