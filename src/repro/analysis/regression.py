"""Result-regression comparison: did a code change move the numbers?

A reproduction repo lives or dies by knowing when its figures drift.
:func:`compare_tables` diffs two exported tables (current run vs a
committed reference JSON) cell by cell with a relative tolerance and
reports every drift; `python -m repro figure <id> --json new.json`
produces the inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Drift:
    """One cell whose value moved beyond tolerance."""

    row_key: Any
    column: str
    reference: float
    current: float

    @property
    def category(self) -> str:
        """``"appeared"`` (0 → x), ``"vanished"`` (x → 0) or ``"changed"``.

        A zero reference makes a relative percentage meaningless, so those
        cells report as a distinct category instead of a ±inf change.
        """
        if self.reference == 0 and self.current != 0:
            return "appeared"
        if self.reference != 0 and self.current == 0:
            return "vanished"
        return "changed"

    @property
    def relative_change(self) -> float:
        """Signed relative change vs the reference.

        Only meaningful for category ``"changed"`` (and ``"vanished"``,
        where it is exactly -100 %); an ``"appeared"`` cell has no
        reference to be relative to and reports ``nan``, never ``inf``.
        """
        if self.reference == 0:
            return 0.0 if self.current == 0 else float("nan")
        return (self.current - self.reference) / abs(self.reference)

    def __str__(self) -> str:
        if self.category == "appeared":
            return (
                f"{self.row_key}/{self.column}: appeared "
                f"(0 -> {self.current:g})"
            )
        if self.category == "vanished":
            return (
                f"{self.row_key}/{self.column}: vanished "
                f"({self.reference:g} -> 0)"
            )
        return (
            f"{self.row_key}/{self.column}: {self.reference:g} -> {self.current:g} "
            f"({self.relative_change:+.1%})"
        )


@dataclass(frozen=True)
class RegressionReport:
    """Outcome of comparing two exported tables.

    ``drifts`` holds value changes between two nonzero cells;
    ``appeared`` / ``vanished`` hold cells whose reference (respectively
    current) value is zero, where a relative percentage would be
    meaningless.
    """

    drifts: list[Drift]
    missing_rows: list[Any]
    extra_rows: list[Any]
    cells_compared: int
    appeared: list[Drift] = field(default_factory=list)
    vanished: list[Drift] = field(default_factory=list)

    @property
    def all_drifts(self) -> list[Drift]:
        """Every out-of-tolerance cell across the three categories."""
        return [*self.drifts, *self.appeared, *self.vanished]

    @property
    def clean(self) -> bool:
        """True when nothing drifted (any category) and the row sets match."""
        return not (
            self.drifts
            or self.appeared
            or self.vanished
            or self.missing_rows
            or self.extra_rows
        )

    def summary(self) -> str:
        """One-paragraph human description."""
        if self.clean:
            return f"clean: {self.cells_compared} cells within tolerance"
        lines = [
            f"{len(self.drifts)} drifted cells, {len(self.appeared)} appeared, "
            f"{len(self.vanished)} vanished, {len(self.missing_rows)} missing rows, "
            f"{len(self.extra_rows)} extra rows (of {self.cells_compared} cells compared)"
        ]
        shown = self.all_drifts
        lines.extend(str(d) for d in shown[:20])
        if len(shown) > 20:
            lines.append(f"... and {len(shown) - 20} more")
        return "\n".join(lines)


def compare_tables(
    reference: dict[str, Any],
    current: dict[str, Any],
    relative_tolerance: float = 0.05,
    absolute_tolerance: float = 1e-9,
) -> RegressionReport:
    """Compare two ``table_to_dict`` exports keyed on their first column.

    Non-numeric cells must match exactly; numeric cells may move within
    ``relative_tolerance`` (or ``absolute_tolerance`` near zero).
    """
    if reference["headers"] != current["headers"]:
        raise ValueError(
            f"header mismatch: {reference['headers']} vs {current['headers']}"
        )
    headers = reference["headers"]
    reference_rows = {row[0]: row for row in reference["rows"]}
    current_rows = {row[0]: row for row in current["rows"]}

    drifts: list[Drift] = []
    appeared: list[Drift] = []
    vanished: list[Drift] = []
    compared = 0
    for key, ref_row in reference_rows.items():
        cur_row = current_rows.get(key)
        if cur_row is None:
            continue
        for column, ref_value, cur_value in zip(headers[1:], ref_row[1:], cur_row[1:]):
            compared += 1
            if isinstance(ref_value, (int, float)) and isinstance(cur_value, (int, float)):
                delta = abs(cur_value - ref_value)
                limit = max(absolute_tolerance, relative_tolerance * abs(ref_value))
                if delta > limit:
                    drift = Drift(key, column, float(ref_value), float(cur_value))
                    {"appeared": appeared, "vanished": vanished, "changed": drifts}[
                        drift.category
                    ].append(drift)
            elif ref_value != cur_value:
                drifts.append(Drift(key, column, float("nan"), float("nan")))

    return RegressionReport(
        drifts=drifts,
        missing_rows=[k for k in reference_rows if k not in current_rows],
        extra_rows=[k for k in current_rows if k not in reference_rows],
        cells_compared=compared,
        appeared=appeared,
        vanished=vanished,
    )
