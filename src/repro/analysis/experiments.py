"""Experiment runners — one per table/figure in the paper's evaluation.

Every runner takes an :class:`ExperimentSettings` (trace length, seed,
application subset) so the same code serves quick smoke tests and the full
reproduction.  Simulation work is *never* run inline: each runner asks the
active :mod:`repro.runner.provider` for content-keyed job payloads
(memo → on-disk cache → compute), so repeated calls, concurrent processes
and the ``python -m repro run`` parallel engine all share one result per
(workload × controller config × settings) and figures rendered from cached
payloads are byte-identical to fresh runs.

Each figure also exposes a ``*_jobs`` planner returning the
:class:`~repro.runner.jobs.JobSpec` list it will request, which is what the
parallel engine expands and fans out ahead of rendering (see
:mod:`repro.analysis.registry`).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.analysis.reporting import Table
from repro.core.config import DeWriteConfig
from repro.hashes.latency import CRC32_MODEL, MD5_MODEL, SHA1_MODEL
from repro.runner import provider as _provider
from repro.runner.jobs import (
    WORST_CASE_WORKLOAD,
    JobSpec,
    bitflip_spec,
    metadata_sweep_spec,
    simulate_spec,
)
from repro.system.cpu import CoreModelConfig
from repro.system.metrics import SimulationReport
from repro.workloads.oracle import DedupOracle
from repro.workloads.profiles import ALL_PROFILES, ApplicationProfile


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs of every experiment run."""

    accesses: int = 30_000
    seed: int = 1
    applications: tuple[str, ...] = tuple(p.name for p in ALL_PROFILES)
    core_config: CoreModelConfig = field(default_factory=CoreModelConfig)

    def profiles(self) -> list[ApplicationProfile]:
        """Resolve the selected application profiles, in declared order."""
        by_name = {p.name: p for p in ALL_PROFILES}
        return [by_name[name] for name in self.applications]

    def trace_for(self, profile: ApplicationProfile):
        """Generate this run's trace for one application."""
        from repro.workloads.generator import generate_trace

        return generate_trace(profile, self.accesses, seed=self.seed)


@dataclass(frozen=True)
class ComparisonResult:
    """Baseline vs DeWrite on one application's trace.

    Carries the dedup-index reference histogram captured at the end of the
    DeWrite run (Fig. 7's input) instead of the live controller, so the
    whole result is cacheable and worker-transportable.
    """

    profile: ApplicationProfile
    baseline: SimulationReport
    dewrite: SimulationReport
    reference_histogram: tuple[tuple[int, int], ...]
    reference_cap: int

    @property
    def speedups(self) -> dict[str, float]:
        """Write/read/IPC/energy ratios (Figs. 14/16/17/19 metrics)."""
        return self.dewrite.speedup_vs(self.baseline)


# ---------------------------------------------------------------------------
# Provider plumbing shared by every runner
# ---------------------------------------------------------------------------


def _sim_spec(
    settings: ExperimentSettings,
    workload: str,
    controller: str,
    opts: dict | None = None,
    experiment: str = "",
) -> JobSpec:
    return simulate_spec(
        workload=workload,
        controller=controller,
        opts=opts,
        accesses=settings.accesses,
        seed=settings.seed,
        core=settings.core_config,
        experiment=experiment,
    )


def _sim(
    settings: ExperimentSettings,
    workload: str,
    controller: str,
    opts: dict | None = None,
    experiment: str = "",
) -> tuple[SimulationReport, dict]:
    """One simulation payload via the active provider."""
    payload = _provider.active().get(
        _sim_spec(settings, workload, controller, opts, experiment)
    )
    return SimulationReport.from_dict(payload["report"]), payload.get("extras", {})


def comparison_jobs(settings: ExperimentSettings, experiment: str = "") -> list[JobSpec]:
    """The shared baseline+DeWrite pair per application (Figs. 6/7/12/14-19)."""
    jobs: list[JobSpec] = []
    for profile in settings.profiles():
        jobs.append(_sim_spec(settings, profile.name, "secure-nvm", experiment=experiment))
        jobs.append(_sim_spec(settings, profile.name, "dewrite", experiment=experiment))
    return jobs


def run_app_comparison(
    profile: ApplicationProfile, settings: ExperimentSettings
) -> ComparisonResult:
    """Simulate one application under the baseline and under DeWrite."""
    baseline, _ = _sim(settings, profile.name, "secure-nvm", experiment="comparison")
    dewrite, extras = _sim(settings, profile.name, "dewrite", experiment="comparison")
    return ComparisonResult(
        profile=profile,
        baseline=baseline,
        dewrite=dewrite,
        reference_histogram=tuple(
            (int(ref), int(count)) for ref, count in extras.get("reference_histogram", [])
        ),
        reference_cap=int(extras.get("reference_cap", 255)),
    )


def evaluate_all(settings: ExperimentSettings) -> dict[str, ComparisonResult]:
    """Run (or fetch cached) comparisons for every selected application."""
    return {p.name: run_app_comparison(p, settings) for p in settings.profiles()}


def _mean(values: list[float]) -> float:
    return statistics.fmean(values) if values else 0.0


# ---------------------------------------------------------------------------
# Fig. 2 — duplicate lines written to memory
# ---------------------------------------------------------------------------


def duplication_survey(settings: ExperimentSettings) -> Table:
    """Fig. 2: % duplicate lines per application, split zero / non-zero."""
    table = Table(
        "Fig. 2 — duplicate lines written to memory",
        ["application", "duplicate_ratio", "zero_line_ratio", "nonzero_duplicates"],
    )
    for profile in settings.profiles():
        oracle = DedupOracle()
        oracle.observe_batch(settings.trace_for(profile).as_batch())
        table.add_row(
            profile.name,
            oracle.duplicate_ratio,
            oracle.zero_ratio,
            oracle.duplicate_ratio - oracle.zero_duplicates / max(oracle.writes, 1),
        )
    table.add_row(
        "AVERAGE",
        _mean([r[1] for r in table.rows]),
        _mean([r[2] for r in table.rows]),
        _mean([r[3] for r in table.rows]),
    )
    table.add_note("paper: 58 % duplicates on average (range 18.6–98.4 %), 16 % zero lines")
    return table


# ---------------------------------------------------------------------------
# Fig. 4 — duplication-state prediction accuracy
# ---------------------------------------------------------------------------


def prediction_accuracy_survey(
    settings: ExperimentSettings, windows: tuple[int, ...] = (1, 3)
) -> Table:
    """Fig. 4: history-window predictor accuracy per window length.

    Replays each application's ground-truth duplication-state sequence
    through offline predictors, exactly as §III-A evaluates them.
    """
    from repro.core.predictor import HistoryWindowPredictor

    table = Table(
        "Fig. 4 — duplication-state prediction accuracy",
        ["application"] + [f"window={w}" for w in windows],
    )
    for profile in settings.profiles():
        oracle = DedupOracle()
        states = oracle.observe_batch(settings.trace_for(profile).as_batch())
        accuracies = []
        for window in windows:
            predictor = HistoryWindowPredictor(window=window)
            for state in states:
                predictor.observe(state)
            accuracies.append(predictor.accuracy)
        table.add_row(profile.name, *accuracies)
    averages = [
        _mean([row[1 + i] for row in table.rows]) for i in range(len(windows))
    ]
    table.add_row("AVERAGE", *averages)
    table.add_note("paper: 92.1 % with window=1, 93.6 % with window=3")
    return table


# ---------------------------------------------------------------------------
# Table I — hash engines and detection latency
# ---------------------------------------------------------------------------


def table1_detection_latency(settings: ExperimentSettings | None = None) -> Table:
    """Table I: hash-engine constants and per-line detection latency.

    Part (a) is the hardware model; part (b) compares the *detection
    component* of traditional dedup (cryptographic fingerprint, no verify
    read) against DeWrite (CRC-32 + verify read for duplicates only),
    excluding queueing (t_Q) as the paper's table does.
    """
    table = Table(
        "Table I — duplication-detection latency model",
        ["scheme", "hash", "hash_ns", "digest_bits", "dup_line_ns", "nondup_line_ns"],
    )
    cfg = DeWriteConfig()
    nvm_read = 75.0
    compare = cfg.compare_latency_ns
    for model in (SHA1_MODEL, MD5_MODEL):
        table.add_row(
            "traditional dedup",
            model.name,
            model.latency_ns,
            model.digest_bits,
            model.latency_ns,
            model.latency_ns,
        )
    table.add_row(
        "DeWrite",
        CRC32_MODEL.name,
        CRC32_MODEL.latency_ns,
        CRC32_MODEL.digest_bits,
        CRC32_MODEL.latency_ns + nvm_read + compare,
        CRC32_MODEL.latency_ns,
    )
    table.add_note("paper: 91 ns + t_Q' per duplicate, 15 ns + t_Q' per non-duplicate")
    table.add_note("traditional detection exceeds the 300 ns NVM write itself")
    return table


# ---------------------------------------------------------------------------
# Fig. 6 / Fig. 7 — collisions and reference counts
# ---------------------------------------------------------------------------


def collision_survey(settings: ExperimentSettings) -> Table:
    """Fig. 6: CRC-32 collision probability per application."""
    table = Table(
        "Fig. 6 — CRC-32 collision probability",
        ["application", "writes", "collisions", "collision_rate"],
    )
    for name, result in evaluate_all(settings).items():
        stats = result.dewrite.stats
        table.add_row(name, stats.writes_requested, stats.crc_collisions, stats.collision_rate)
    table.add_row(
        "AVERAGE",
        sum(r[1] for r in table.rows),
        sum(r[2] for r in table.rows),
        _mean([r[3] for r in table.rows]),
    )
    table.add_note("paper: below 0.01 % on average")
    return table


def reference_count_survey(settings: ExperimentSettings) -> Table:
    """Fig. 7: distribution of line reference counts (8-bit sufficiency)."""
    table = Table(
        "Fig. 7 — line reference counts",
        ["application", "live_lines", "max_reference", "fraction_below_cap"],
    )
    for name, result in evaluate_all(settings).items():
        histogram = dict(result.reference_histogram)
        total = sum(histogram.values())
        cap = result.reference_cap
        below = sum(count for ref, count in histogram.items() if ref < cap)
        table.add_row(
            name,
            total,
            max(histogram, default=0),
            below / total if total else 1.0,
        )
    table.add_note("paper: >99.999 % of lines keep a reference below 255")
    return table


# ---------------------------------------------------------------------------
# Fig. 12 — write reduction
# ---------------------------------------------------------------------------

#: The 64x-constrained metadata-cache sizing used by
#: ``write_reduction_survey(constrained_caches=True)``.
CONSTRAINED_CACHE_OPTS = {
    "metadata_cache": {
        "hash_cache_bytes": 8 * 1024,
        "address_map_cache_bytes": 8 * 1024,
        "inverted_hash_cache_bytes": 8 * 1024,
        "fsm_cache_bytes": 2 * 1024,
        "prefetch_entries": 64,
    }
}


def write_reduction_survey(
    settings: ExperimentSettings, constrained_caches: bool = False
) -> Table:
    """Fig. 12: % of line writes eliminated vs available duplication,
    including the PNA/cap misses and metadata writes of §IV-B.

    At full (4-billion-instruction) scale the paper's 1.5 % PNA misses and
    2.6 % metadata writes come from metadata-cache pressure that short
    traces never build against 512 KB caches; ``constrained_caches=True``
    shrinks the caches 64x so the same loss mechanisms become measurable.
    """
    title = "Fig. 12 — memory write reduction"
    if constrained_caches:
        title += " (64x-constrained metadata caches)"
    table = Table(
        title,
        [
            "application",
            "available_duplicates",
            "write_reduction",
            "missed_pna",
            "capped_skips_per_write",  # saturated entries skipped per scan
            "metadata_write_fraction",
        ],
    )
    for profile in settings.profiles():
        if constrained_caches:
            report, _ = _sim(
                settings,
                profile.name,
                "dewrite",
                opts=CONSTRAINED_CACHE_OPTS,
                experiment="fig12-constrained",
            )
            stats = report.stats
        else:
            stats = run_app_comparison(profile, settings).dewrite.stats
        oracle = DedupOracle()
        oracle.observe_batch(settings.trace_for(profile).as_batch())
        requested = max(stats.writes_requested, 1)
        table.add_row(
            profile.name,
            oracle.duplicate_ratio,
            stats.write_reduction,
            stats.missed_duplicates_pna / requested,
            stats.capped_reference_rejects / requested,
            stats.metadata_writebacks / requested,
        )
    table.add_row(
        "AVERAGE",
        _mean([r[1] for r in table.rows]),
        _mean([r[2] for r in table.rows]),
        _mean([r[3] for r in table.rows]),
        _mean([r[4] for r in table.rows]),
        _mean([r[5] for r in table.rows]),
    )
    table.add_note("paper: 54 % reduction of 58 % available; 1.5 % missed, 2.6 % metadata writes")
    return table


# ---------------------------------------------------------------------------
# Fig. 13 — bit flips under bit-level techniques
# ---------------------------------------------------------------------------


def bitflip_jobs(settings: ExperimentSettings, experiment: str = "fig13") -> list[JobSpec]:
    """One bit-flip analysis job per application (Fig. 13)."""
    return [
        bitflip_spec(
            workload=profile.name,
            accesses=settings.accesses,
            seed=settings.seed,
            experiment=experiment,
        )
        for profile in settings.profiles()
    ]


def bit_flip_comparison(settings: ExperimentSettings) -> Table:
    """Fig. 13: average bit-flip fraction per write for DCW/FNW/DEUCE,
    alone, with Silent Shredder, and with DeWrite in front."""
    table = Table(
        "Fig. 13 — average bit flips per write (fraction of line)",
        [
            "application",
            "dcw", "fnw", "deuce",
            "shredder+dcw", "shredder+fnw", "shredder+deuce",
            "dewrite+dcw", "dewrite+fnw", "dewrite+deuce",
        ],
    )
    columns = [
        "plain_dcw", "plain_fnw", "plain_deuce",
        "shredder_dcw", "shredder_fnw", "shredder_deuce",
        "dewrite_dcw", "dewrite_fnw", "dewrite_deuce",
    ]
    for spec in bitflip_jobs(settings):
        fractions = _provider.active().get(spec)["fractions"]
        table.add_row(spec.params["workload"], *(fractions[c] for c in columns))
    averages = [_mean([row[i] for row in table.rows]) for i in range(1, 10)]
    table.add_row("AVERAGE", *averages)
    table.add_note(
        "paper: DCW 50->22 %, FNW 43->19 %, DEUCE 24->11 % when combined with DeWrite"
    )
    return table


# ---------------------------------------------------------------------------
# Figs. 14/16/17/19 — system comparison
# ---------------------------------------------------------------------------


def system_comparison_table(settings: ExperimentSettings) -> Table:
    """Figs. 14, 16, 17, 19 in one table: write/read speedups, relative IPC
    and relative energy of DeWrite vs the traditional secure NVM."""
    table = Table(
        "Figs. 14/16/17/19 — DeWrite vs traditional secure NVM",
        [
            "application",
            "write_reduction",
            "write_speedup",
            "read_speedup",
            "ipc_ratio",
            "energy_ratio",
        ],
    )
    for name, result in evaluate_all(settings).items():
        speedups = result.speedups
        table.add_row(
            name,
            result.dewrite.write_reduction,
            speedups["write_speedup"],
            speedups["read_speedup"],
            speedups["ipc_ratio"],
            speedups["energy_ratio"],
        )
    table.add_row(
        "AVERAGE",
        _mean([r[1] for r in table.rows]),
        _mean([r[2] for r in table.rows]),
        _mean([r[3] for r in table.rows]),
        _mean([r[4] for r in table.rows]),
        _mean([r[5] for r in table.rows]),
    )
    table.add_note("paper: 54 % reduction, 4.2x writes, 3.1x reads, +82 % IPC, -40 % energy")
    table.add_note(
        "this model's closed-loop cores self-throttle, compressing latency ratios; "
        "orderings and crossovers are the reproduction target (see EXPERIMENTS.md)"
    )
    return table


# ---------------------------------------------------------------------------
# Figs. 15/20 — integration-mode comparison
# ---------------------------------------------------------------------------

_INTEGRATION_MODES = ("direct", "parallel", "dewrite")


def integration_mode_jobs(
    settings: ExperimentSettings, experiment: str = "modes"
) -> list[JobSpec]:
    """Three integration-mode simulations per application (Figs. 15/20)."""
    return [
        _sim_spec(settings, profile.name, mode, experiment=experiment)
        for profile in settings.profiles()
        for mode in _INTEGRATION_MODES
    ]


def integration_mode_comparison(settings: ExperimentSettings) -> Table:
    """Figs. 15 and 20: direct way vs parallel way vs DeWrite — write
    latency normalised to the direct way, energy normalised to the
    parallel way."""
    table = Table(
        "Figs. 15/20 — integration modes (latency norm. to direct, energy norm. to parallel)",
        [
            "application",
            "direct_latency", "parallel_latency", "dewrite_latency",
            "direct_energy", "parallel_energy", "dewrite_energy",
        ],
    )
    for profile in settings.profiles():
        reports = {}
        for mode in _INTEGRATION_MODES:
            reports[mode], _ = _sim(settings, profile.name, mode, experiment="modes")
        latency_base = reports["direct"].mean_write_latency_ns or 1.0
        energy_base = reports["parallel"].energy_nj or 1.0
        table.add_row(
            profile.name,
            1.0,
            reports["parallel"].mean_write_latency_ns / latency_base,
            reports["dewrite"].mean_write_latency_ns / latency_base,
            reports["direct"].energy_nj / energy_base,
            1.0,
            reports["dewrite"].energy_nj / energy_base,
        )
    averages = [_mean([row[i] for row in table.rows]) for i in range(1, 7)]
    table.add_row("AVERAGE", *averages)
    table.add_note("paper: DeWrite ~= parallel way latency (-27 % vs direct), "
                   "~= direct way energy (-32 % vs parallel)")
    return table


# ---------------------------------------------------------------------------
# Fig. 18 — worst case
# ---------------------------------------------------------------------------


def worst_case_jobs(settings: ExperimentSettings, experiment: str = "fig18") -> list[JobSpec]:
    """Baseline + DeWrite on the zero-duplicate adversarial trace."""
    return [
        _sim_spec(settings, WORST_CASE_WORKLOAD, "secure-nvm", experiment=experiment),
        _sim_spec(settings, WORST_CASE_WORKLOAD, "dewrite", experiment=experiment),
    ]


def worst_case_comparison(settings: ExperimentSettings) -> Table:
    """Fig. 18: zero-duplicate workload — DeWrite vs baseline, normalised."""
    baseline, _ = _sim(settings, WORST_CASE_WORKLOAD, "secure-nvm", experiment="fig18")
    dewrite, _ = _sim(settings, WORST_CASE_WORKLOAD, "dewrite", experiment="fig18")
    table = Table(
        "Fig. 18 — worst case (no duplicate writes), normalised to baseline",
        ["metric", "baseline", "dewrite", "relative"],
    )
    rows = [
        ("write_latency_ns", baseline.mean_write_latency_ns, dewrite.mean_write_latency_ns),
        ("read_latency_ns", baseline.mean_read_latency_ns, dewrite.mean_read_latency_ns),
        ("ipc", baseline.ipc, dewrite.ipc),
    ]
    for metric, base, ours in rows:
        table.add_row(metric, base, ours, ours / base if base else float("inf"))
    table.add_row(
        "write_reduction", 0.0, dewrite.write_reduction, dewrite.write_reduction
    )
    table.add_note("paper: <3 % IPC degradation in the worst case")
    return table


# ---------------------------------------------------------------------------
# Fig. 21 — metadata cache sizing
# ---------------------------------------------------------------------------

_SWEEP_CACHE_SIZES_KB = (64, 128, 256, 512, 1024)
_SWEEP_PREFETCHES = (64, 256, 1024)


def metadata_sweep_jobs(
    settings: ExperimentSettings,
    cache_sizes_kb: tuple[int, ...] = _SWEEP_CACHE_SIZES_KB,
    prefetch_entries: tuple[int, ...] = _SWEEP_PREFETCHES,
    experiment: str = "fig21",
) -> list[JobSpec]:
    """One warm-then-measure sizing job per (app × size × prefetch)."""
    return [
        metadata_sweep_spec(
            workload=profile.name,
            accesses=settings.accesses,
            seed=settings.seed,
            size_kb=size_kb,
            prefetch=prefetch,
            core=settings.core_config,
            experiment=experiment,
        )
        for size_kb in cache_sizes_kb
        for prefetch in prefetch_entries
        for profile in settings.profiles()
    ]


def metadata_cache_sweep(
    settings: ExperimentSettings,
    cache_sizes_kb: tuple[int, ...] = _SWEEP_CACHE_SIZES_KB,
    prefetch_entries: tuple[int, ...] = _SWEEP_PREFETCHES,
) -> Table:
    """Fig. 21: per-table metadata cache hit rate vs cache size (and
    prefetch granularity for the sequential tables)."""
    table = Table(
        "Fig. 21 — metadata cache hit rates (post-warmup)",
        ["cache_kb", "prefetch", "hash", "address_map", "inverted_hash", "fsm"],
    )
    profiles = settings.profiles()
    for size_kb in cache_sizes_kb:
        for prefetch in prefetch_entries:
            # Aggregate hits/accesses across apps (access-weighted): heavy
            # deduplicators touch some tables only a handful of times, and
            # an unweighted mean would let their cold misses swamp the rate.
            hits: dict[str, int] = {
                "hash_table": 0, "address_map": 0, "inverted_hash": 0, "fsm": 0
            }
            accesses: dict[str, int] = dict(hits)
            for profile in profiles:
                payload = _provider.active().get(
                    metadata_sweep_spec(
                        workload=profile.name,
                        accesses=settings.accesses,
                        seed=settings.seed,
                        size_kb=size_kb,
                        prefetch=prefetch,
                        core=settings.core_config,
                        experiment="fig21",
                    )
                )
                for name in hits:
                    hits[name] += int(payload["hits"][name])
                    accesses[name] += int(payload["accesses"][name])

            def rate(name: str) -> float:
                return hits[name] / accesses[name] if accesses[name] else 1.0

            table.add_row(
                size_kb,
                prefetch,
                rate("hash_table"),
                rate("address_map"),
                rate("inverted_hash"),
                rate("fsm"),
            )
    table.add_note("paper: 512 KB per table (128 KB FSM), prefetch 256 -> >98 % hit rates")
    return table


# ---------------------------------------------------------------------------
# §IV-E1 — metadata storage overhead
# ---------------------------------------------------------------------------


def storage_overhead_table(settings: ExperimentSettings | None = None) -> Table:
    """§IV-E1: metadata storage overhead of DeWrite vs DEUCE vs plain CME."""
    from repro.core.colocation import counter_mode_overhead, deuce_overhead, dewrite_overhead

    table = Table(
        "SIV-E1 — metadata storage overhead",
        ["scheme", "bits_per_line", "fraction_of_capacity"],
    )
    for overhead in (
        dewrite_overhead(DeWriteConfig()),
        dewrite_overhead(DeWriteConfig(enable_colocation=False)),
        deuce_overhead(),
        counter_mode_overhead(),
    ):
        table.add_row(overhead.scheme, overhead.bits_per_line, overhead.fraction)
    table.add_note("paper: ~6.25 % for DeWrite, counters riding free via colocation")
    return table


# ---------------------------------------------------------------------------
# §V — related-work comparison
# ---------------------------------------------------------------------------

#: Display name → controller-registry name, in the table's row order.
RELATED_WORK_SCHEMES = (
    ("traditional secure NVM", "secure-nvm"),
    ("out-of-line page dedup", "out-of-line"),
    ("Silent Shredder", "silent-shredder"),
    ("i-NVMM", "i-nvmm"),
    ("DeWrite", "dewrite"),
)


def related_work_jobs(settings: ExperimentSettings, experiment: str = "related") -> list[JobSpec]:
    """Five scheme simulations per application (§V)."""
    return [
        _sim_spec(settings, profile.name, registry_name, experiment=experiment)
        for profile in settings.profiles()
        for _, registry_name in RELATED_WORK_SCHEMES
    ]


def related_work_comparison(settings: ExperimentSettings) -> Table:
    """§V in one table: what each related scheme actually buys.

    Out-of-line page dedup saves capacity but zero writes; Silent Shredder
    eliminates only zero lines; i-NVMM trades bus-snooping protection for
    hot-path speed; DeWrite eliminates all duplicates with full encryption.
    """
    table = Table(
        "SV — related-work comparison (averaged over selected applications)",
        [
            "scheme",
            "write_reduction",
            "capacity_saved_lines",
            "plaintext_bus_transfers",
            "energy_vs_baseline",
        ],
    )
    sums = {
        name: {"reduction": 0.0, "capacity": 0.0, "plaintext": 0.0, "energy": 0.0}
        for name, _ in RELATED_WORK_SCHEMES
    }
    profiles = settings.profiles()
    for profile in profiles:
        baseline_energy = None
        for name, registry_name in RELATED_WORK_SCHEMES:
            report, extras = _sim(
                settings, profile.name, registry_name, experiment="related"
            )
            if name == "traditional secure NVM":
                baseline_energy = report.energy_nj
            bucket = sums[name]
            bucket["reduction"] += report.write_reduction
            bucket["capacity"] += extras.get("capacity_saved_lines", 0)
            bucket["plaintext"] += extras.get("plaintext_bus_transfers", 0)
            bucket["energy"] += report.energy_nj / baseline_energy
    n = len(profiles)
    for name, _ in RELATED_WORK_SCHEMES:
        bucket = sums[name]
        table.add_row(
            name,
            bucket["reduction"] / n,
            bucket["capacity"] / n,
            bucket["plaintext"] / n,
            bucket["energy"] / n,
        )
    table.add_note("out-of-line dedup: capacity without endurance; i-NVMM: speed "
                   "without bus-snooping protection; DeWrite: both, encrypted")
    return table


# ---------------------------------------------------------------------------
# Traditional dedup end-to-end comparison (supports Table I's argument)
# ---------------------------------------------------------------------------


def traditional_dedup_jobs(
    settings: ExperimentSettings, experiment: str = "tradedup"
) -> list[JobSpec]:
    """SHA-1 traditional dedup + DeWrite per application (Table I support)."""
    jobs: list[JobSpec] = []
    for profile in settings.profiles():
        jobs.append(
            _sim_spec(settings, profile.name, "traditional-dedup", experiment=experiment)
        )
        jobs.append(_sim_spec(settings, profile.name, "dewrite", experiment=experiment))
    return jobs


def traditional_dedup_comparison(settings: ExperimentSettings) -> Table:
    """End-to-end: SHA-1 traditional in-line dedup vs DeWrite write latency."""
    table = Table(
        "Traditional dedup (SHA-1, serial) vs DeWrite — mean write latency (ns)",
        ["application", "traditional_ns", "dewrite_ns", "dewrite_advantage"],
    )
    for profile in settings.profiles():
        traditional, _ = _sim(
            settings, profile.name, "traditional-dedup", experiment="tradedup"
        )
        dewrite, _ = _sim(settings, profile.name, "dewrite", experiment="tradedup")
        table.add_row(
            profile.name,
            traditional.mean_write_latency_ns,
            dewrite.mean_write_latency_ns,
            traditional.mean_write_latency_ns / max(dewrite.mean_write_latency_ns, 1e-9),
        )
    return table
