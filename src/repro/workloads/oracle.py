"""Ground-truth duplication oracle (the measurement behind Fig. 2).

A line write is *duplicate* when an identical line already resides in
(logical) main memory at the moment of the write — the definition §II-C
uses when reporting that 58 % of written lines are duplicates and 16 % are
zero lines.  The oracle maintains the logical memory image with content
reference counts, so the check is exact and O(1) per write.
"""

from __future__ import annotations

from collections import Counter


def is_zero_line(data: bytes) -> bool:
    """Whether the line is all zeroes (Silent Shredder's target)."""
    return not any(data)


class DedupOracle:
    """Exact duplicate-line detector over the logical memory image."""

    def __init__(self) -> None:
        self._memory: dict[int, bytes] = {}
        self._refcounts: Counter[bytes] = Counter()
        self.writes = 0
        self.duplicates = 0
        self.zero_writes = 0
        self.zero_duplicates = 0

    def observe_write(self, address: int, data: bytes) -> bool:
        """Record one line write; returns whether it was a duplicate.

        A rewrite of a line with its own current content (a silent store)
        counts as duplicate — the content is resident.
        """
        self.writes += 1
        duplicate = self._refcounts[data] > 0
        zero = is_zero_line(data)
        if duplicate:
            self.duplicates += 1
            if zero:
                self.zero_duplicates += 1
        if zero:
            self.zero_writes += 1

        old = self._memory.get(address)
        if old is not None:
            remaining = self._refcounts[old] - 1
            if remaining:
                self._refcounts[old] = remaining
            else:
                del self._refcounts[old]
        self._memory[address] = data
        self._refcounts[data] += 1
        return duplicate

    @property
    def duplicate_ratio(self) -> float:
        """Fraction of observed writes that were duplicates (Fig. 2)."""
        return self.duplicates / self.writes if self.writes else 0.0

    @property
    def zero_ratio(self) -> float:
        """Fraction of observed writes that were zero lines (Fig. 2)."""
        return self.zero_writes / self.writes if self.writes else 0.0

    def resident_content(self, data: bytes) -> bool:
        """Whether identical content currently resides in memory."""
        return self._refcounts[data] > 0
