"""Ground-truth duplication oracle (the measurement behind Fig. 2).

A line write is *duplicate* when an identical line already resides in
(logical) main memory at the moment of the write — the definition §II-C
uses when reporting that 58 % of written lines are duplicates and 16 % are
zero lines.  The oracle maintains the logical memory image with content
reference counts, so the check is exact and O(1) per write.
"""

from __future__ import annotations

import hashlib
from collections import Counter


def is_zero_line(data: bytes) -> bool:
    """Whether the line is all zeroes (Silent Shredder's target)."""
    return not any(data)


class DedupOracle:
    """Exact duplicate-line detector over the logical memory image."""

    def __init__(self) -> None:
        self._memory: dict[int, bytes] = {}
        self._refcounts: Counter[bytes] = Counter()
        self.writes = 0
        self.duplicates = 0
        self.zero_writes = 0
        self.zero_duplicates = 0

    def observe_write(self, address: int, data: bytes) -> bool:
        """Record one line write; returns whether it was a duplicate.

        A rewrite of a line with its own current content (a silent store)
        counts as duplicate — the content is resident.
        """
        self.writes += 1
        duplicate = self._refcounts[data] > 0
        zero = is_zero_line(data)
        if duplicate:
            self.duplicates += 1
            if zero:
                self.zero_duplicates += 1
        if zero:
            self.zero_writes += 1

        old = self._memory.get(address)
        if old is not None:
            remaining = self._refcounts[old] - 1
            if remaining:
                self._refcounts[old] = remaining
            else:
                del self._refcounts[old]
        self._memory[address] = data
        self._refcounts[data] += 1
        return duplicate

    def observe_batch(self, batch) -> list[bool]:
        """Record every write in a columnar batch, in access order.

        Returns the per-write duplicate verdicts (the ground-truth state
        sequence the Fig. 4 predictors replay).  Dispatches through
        ``observe_write`` so subclasses that hook single writes (e.g.
        :class:`ReplayOracle`'s history capture) see every access.
        """
        observe = self.observe_write
        return [observe(address, data) for address, data in batch.write_pairs()]

    @property
    def duplicate_ratio(self) -> float:
        """Fraction of observed writes that were duplicates (Fig. 2)."""
        return self.duplicates / self.writes if self.writes else 0.0

    @property
    def zero_ratio(self) -> float:
        """Fraction of observed writes that were zero lines (Fig. 2)."""
        return self.zero_writes / self.writes if self.writes else 0.0

    def resident_content(self, data: bytes) -> bool:
        """Whether identical content currently resides in memory."""
        return self._refcounts[data] > 0


def _digest(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


class ReplayOracle(DedupOracle):
    """Logical image plus per-address content *history* for crash auditing.

    The fault-injection auditor (:mod:`repro.faults.audit`) replays a trace
    up to a crash point through this oracle, then asks, for every line the
    recovered controller serves, which of three states it is in:

    - ``"intact"``  — the bytes equal the line's latest pre-crash content;
    - ``"stale"``   — the bytes equal some *earlier* content of that line
      (an old version resurfaced because the newer mapping/counter update
      was not yet durable): decryptable, but rolled back;
    - ``"lost"``    — neither: the line decrypts to garbage (lost counter,
      broken dedup reference, or an injected cell fault).

    History is kept as content digests, so memory stays O(versions) hashes
    rather than O(versions) full lines.
    """

    def __init__(self) -> None:
        super().__init__()
        self._history: dict[int, set[bytes]] = {}

    def observe_write(self, address: int, data: bytes) -> bool:
        old = self._memory.get(address)
        if old is not None and old != data:
            self._history.setdefault(address, set()).add(_digest(old))
        return super().observe_write(address, data)

    def written_addresses(self) -> tuple[int, ...]:
        """Every logical line ever written, sorted (the audit universe)."""
        return tuple(sorted(self._memory))

    def expected(self, address: int) -> bytes | None:
        """Latest pre-crash content of a line (None if never written)."""
        return self._memory.get(address)

    def classify(self, address: int, recovered: bytes) -> str:
        """Post-recovery verdict for one line: intact / stale / lost."""
        expected = self._memory.get(address)
        if expected is None:
            raise KeyError(f"line {address} was never written; nothing to classify")
        if recovered == expected:
            return "intact"
        if _digest(recovered) in self._history.get(address, ()):
            return "stale"
        return "lost"
