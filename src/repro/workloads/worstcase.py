"""The worst-case benchmark of §IV-C4 (Fig. 18).

"We generate a benchmark by inserting the randomized values into a
two-dimensional array and then traversing the array" — every line written
is unique (randomised values carry a nonce), so DeWrite can eliminate
nothing and any overhead it adds becomes visible.
"""

from __future__ import annotations

import random

from repro.workloads.batch import BatchBuilder
from repro.workloads.trace import Trace


def worst_case_trace(
    num_accesses: int = 20_000,
    rows: int = 128,
    cols: int = 128,
    seed: int = 0,
    line_size_bytes: int = 256,
    persist_fraction: float = 0.25,
    mean_gap_instructions: int = 120,
) -> Trace:
    """Random-fill then traverse a 2-D array; zero duplicate writes.

    The fill phase writes each (row, col) line with unique random content
    in row-major bursts; the traversal phase reads the array back.  The
    access count splits roughly evenly between the two phases, repeating
    passes until ``num_accesses`` is reached.  Accesses are appended
    straight into the columnar batch — no intermediate ``MemoryAccess``
    objects.
    """
    if num_accesses <= 0:
        raise ValueError("num_accesses must be positive")
    rng = random.Random(seed)
    # Shrink the array when the access budget cannot cover a full
    # fill + traverse pass, so both phases always execute.
    lines = min(rows * cols, max(16, num_accesses // 3))
    cols = min(cols, lines)
    builder = BatchBuilder(line_size=line_size_bytes)
    nonce = 0

    while len(builder) < num_accesses:
        # Fill phase: unique random values, write bursts along each row.
        for index in range(lines):
            if len(builder) >= num_accesses:
                break
            nonce += 1
            data = bytearray(rng.randbytes(line_size_bytes))
            data[0:8] = nonce.to_bytes(8, "little")
            first_in_row = index % cols == 0
            gap = (
                max(1, int(rng.expovariate(1.0 / mean_gap_instructions)))
                if first_in_row
                else rng.randint(1, 4)
            )
            builder.append_write(
                0,
                index,
                bytes(data),
                gap_instructions=gap,
                persistent=rng.random() < persist_fraction,
            )
        # Traversal phase: read the array back in order.
        for index in range(lines):
            if len(builder) >= num_accesses:
                break
            builder.append_read(0, index, gap_instructions=rng.randint(2, 8))

    return Trace.from_batch("worstcase", builder.build(), threads=1)
