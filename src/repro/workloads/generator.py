"""Synthetic post-LLC memory-trace generator.

Produces traces whose measurable statistics match an
:class:`~repro.workloads.profiles.ApplicationProfile`:

- **Duplication process**: a two-state Markov chain (duplicate /
  non-duplicate) whose stationary distribution equals the profile's
  ``dup_ratio`` and whose persistence reproduces the ``state_locality``
  of Fig. 4.  A duplicate write copies a line currently resident in the
  logical memory image (guaranteed duplicate under the Fig. 2 oracle);
  a non-duplicate write embeds a fresh 8-byte nonce (guaranteed unique).
- **Zero lines**: a ``zero_line_fraction`` slice of duplicate writes is
  the all-zero line (seeded resident at start), reproducing the Silent
  Shredder comparison.
- **Rewrites**: non-duplicate writes to previously written lines modify a
  Binomial(``rewrite_dirtiness``) fraction of 16-bit words — the knob that
  drives DEUCE/DCW/FNW bit-flip behaviour (Fig. 13).
- **Bursts**: accesses cluster into write-biased bursts (LLC writeback
  trains) separated by exponential compute gaps, creating the bank
  pressure behind the queueing speedups of Figs. 14/16.
- **Persistence**: a ``persist_fraction`` of writes is flush+fence ordered
  (the §III persistent-memory model), stalling the issuing core.
"""

from __future__ import annotations

import random
import zlib

from repro.workloads.profiles import ApplicationProfile
from repro.workloads.trace import MemoryAccess, Trace

_WORD_BYTES = 2  # DEUCE word size
_NONCE_WORDS = 4  # 8-byte nonce guaranteeing non-duplicate content
_BURST_GAP_INSTRUCTIONS = 4  # near-back-to-back accesses inside a burst


class TraceGenerator:
    """Deterministic (seeded) trace generator for one application profile."""

    def __init__(
        self, profile: ApplicationProfile, seed: int = 0, line_size_bytes: int = 256
    ) -> None:
        if line_size_bytes % _WORD_BYTES:
            raise ValueError("line size must be a whole number of 16-bit words")
        self.profile = profile
        self.line_size = line_size_bytes
        self._words_per_line = line_size_bytes // _WORD_BYTES
        self._rng = random.Random((seed << 32) ^ zlib.crc32(profile.name.encode()))
        self._memory: dict[int, bytes] = {}
        self._written: list[int] = []  # insertion-ordered written addresses
        self._nonce = 0
        self._zero_line = bytes(line_size_bytes)
        # Duplication-state process: a persistent two-state Markov chain
        # plus isolated single-write "blips" (one opposite-state write that
        # does not move the chain).  Real traces have both: long runs from
        # phase behaviour, blips from stray allocations mid-copy.  The
        # split matters for Fig. 4 — a 1-bit predictor pays 2 errors per
        # blip but only 1 per genuine transition, a 3-bit majority pays the
        # reverse, so blips are why the wider window wins in the paper.
        # Budget: transitions get 20 % of the (1 - locality) error budget,
        # blips 40 % (each blip produces 2 prev-state mismatches).
        d_target = profile.dup_ratio
        unlocality = 1.0 - profile.state_locality
        self._blip_probability = 0.4 * unlocality
        transition_rate = 0.2 * unlocality
        # Blips skew the emitted ratio; aim the chain so emissions hit d.
        b = self._blip_probability
        d_chain = (d_target - b) / (1.0 - 2.0 * b) if b < 0.5 else d_target
        d_chain = min(1.0, max(0.0, d_chain))
        if 0.0 < d_chain < 1.0:
            churn = min(1.0, transition_rate / (2.0 * d_chain * (1.0 - d_chain)))
        else:
            churn = 1.0
        self._p_leave_dup = (1.0 - d_chain) * churn
        self._p_leave_nondup = d_chain * churn
        self._state_dup = self._rng.random() < d_chain
        # Per-core burst state.  Duplicate writes inside one burst copy from
        # a small set of source lines (a memcpy or pattern fill duplicates
        # one contiguous source region), so their verify reads exhibit the
        # row-buffer locality real copy traffic has.
        self._burst_left = [0] * profile.threads
        self._burst_sources: list[list[bytes]] = [[] for _ in range(profile.threads)]

    def generate(self, num_accesses: int) -> Trace:
        """Generate a trace of ``num_accesses`` memory requests."""
        if num_accesses <= 0:
            raise ValueError("num_accesses must be positive")
        profile = self.profile
        rng = self._rng
        accesses: list[MemoryAccess] = []

        # Seed the zero line as resident so zero writes are duplicates from
        # the start (memory initialisation, §II-C).
        first_zero = rng.randrange(profile.working_set_lines)
        accesses.append(
            MemoryAccess(
                core=0,
                op="write",
                address=first_zero,
                data=self._zero_line,
                gap_instructions=profile.mean_gap_instructions,
                persistent=True,
            )
        )
        self._remember(first_zero, self._zero_line)

        while len(accesses) < num_accesses:
            core = rng.randrange(profile.threads)
            in_burst = self._burst_left[core] > 0
            if in_burst:
                self._burst_left[core] -= 1
                gap = rng.randint(1, _BURST_GAP_INSTRUCTIONS)
                write_probability = min(0.9, profile.write_fraction * 2.0)
            else:
                self._burst_left[core] = max(
                    0, int(rng.expovariate(1.0 / profile.burst_length_mean))
                )
                self._burst_sources[core] = []
                gap = max(1, int(rng.expovariate(1.0 / profile.mean_gap_instructions)))
                write_probability = profile.write_fraction

            if rng.random() < write_probability:
                accesses.append(self._make_write(core, gap))
            else:
                accesses.append(self._make_read(core, gap))

        return Trace(name=profile.name, accesses=accesses, threads=profile.threads)

    # -- write synthesis -------------------------------------------------------

    def _make_write(self, core: int, gap: int) -> MemoryAccess:
        profile = self.profile
        rng = self._rng
        duplicate = self._advance_duplication_state()
        address = rng.randrange(profile.working_set_lines)

        if duplicate and self._written:
            zero_share = (
                profile.zero_line_fraction / profile.dup_ratio if profile.dup_ratio else 0.0
            )
            if rng.random() < zero_share:
                data = self._zero_line
            else:
                sources = self._burst_sources[core]
                if sources and rng.random() < 0.8:
                    data = sources[rng.randrange(len(sources))]
                else:
                    data = self._sample_nonzero_resident()
                    if len(sources) < 2:
                        sources.append(data)
        else:
            data = self._fresh_content(address)

        self._remember(address, data)
        return MemoryAccess(
            core=core,
            op="write",
            address=address,
            data=data,
            gap_instructions=gap,
            persistent=rng.random() < profile.persist_fraction,
        )

    def _sample_nonzero_resident(self) -> bytes:
        """Copy a resident non-zero line (a genuine non-zero duplicate).

        Sampling must avoid the zero line, otherwise zero content — which
        explicit zero writes keep spreading across addresses — snowballs
        until nearly every "duplicate" is zero and the zero-line fraction
        blows past its target.  Falls back to zero when the image holds
        nothing else (only possible at the very start).
        """
        rng = self._rng
        for _ in range(8):
            source = self._written[rng.randrange(len(self._written))]
            data = self._memory[source]
            if data != self._zero_line:
                return data
        return self._zero_line

    def _random_sparse_line(self) -> bytearray:
        """A fresh line with ~half its 16-bit words zero.

        Real cache lines are word-sparse (small integers, short pointers,
        padding), which is precisely why DEUCE's modified-word encryption
        beats whole-line re-encryption (Fig. 13); dense random content
        would erase that effect.
        """
        rng = self._rng
        line = bytearray(rng.randbytes(self.line_size))
        zero_mask = rng.getrandbits(self._words_per_line)
        for word in range(self._words_per_line):
            if (zero_mask >> word) & 1:
                offset = word * _WORD_BYTES
                line[offset : offset + _WORD_BYTES] = b"\x00\x00"
        return line

    def _fresh_content(self, address: int) -> bytes:
        """Unique line content: a rewrite of the resident line (dirtying a
        ``rewrite_dirtiness`` fraction of words) or a brand-new line, always
        carrying a fresh nonce so it cannot be a duplicate."""
        rng = self._rng
        old = self._memory.get(address)
        if old is None:
            line = self._random_sparse_line()
            start_word = rng.randrange(self._words_per_line - _NONCE_WORDS + 1)
        else:
            line = bytearray(old)
            words = self._words_per_line
            dirty_words = max(
                _NONCE_WORDS,
                sum(1 for _ in range(words) if rng.random() < self.profile.rewrite_dirtiness),
            )
            # Dirty a contiguous region plus scattered words: contiguous for
            # the nonce, scattered to spread DEUCE's word flips.
            start_word = rng.randrange(words - _NONCE_WORDS + 1)
            scattered = rng.sample(range(words), k=min(words, dirty_words))
            for w in scattered:
                offset = w * _WORD_BYTES
                new_word = b"\x00\x00" if rng.random() < 0.5 else rng.randbytes(_WORD_BYTES)
                line[offset : offset + _WORD_BYTES] = new_word
        nonce_offset = start_word * _WORD_BYTES
        self._nonce += 1
        line[nonce_offset : nonce_offset + 8] = self._nonce.to_bytes(8, "little")
        return bytes(line)

    def _advance_duplication_state(self) -> bool:
        state = self._state_dup
        leave = self._p_leave_dup if state else self._p_leave_nondup
        if self._rng.random() < leave:
            self._state_dup = not state
            state = self._state_dup
        elif self._rng.random() < self._blip_probability:
            return not state  # isolated blip; the chain stays put
        return state

    def _remember(self, address: int, data: bytes) -> None:
        if address not in self._memory:
            self._written.append(address)
        self._memory[address] = data

    # -- read synthesis -------------------------------------------------------

    def _make_read(self, core: int, gap: int) -> MemoryAccess:
        rng = self._rng
        if self._written and rng.random() < 0.9:
            address = self._written[rng.randrange(len(self._written))]
        else:
            address = rng.randrange(self.profile.working_set_lines)
        return MemoryAccess(core=core, op="read", address=address, gap_instructions=gap)


def generate_trace(
    profile: ApplicationProfile,
    num_accesses: int,
    seed: int = 0,
    line_size_bytes: int = 256,
) -> Trace:
    """One-shot convenience wrapper around :class:`TraceGenerator`."""
    return TraceGenerator(profile, seed=seed, line_size_bytes=line_size_bytes).generate(
        num_accesses
    )
