"""Workload substrate: synthetic equivalents of SPEC CPU2006 + PARSEC 2.1.

The paper's evaluation never depends on what its 20 applications compute —
only on the statistical structure of the post-LLC memory access stream each
one generates: how many line writes are duplicates (Fig. 2), how strongly
duplication states cluster in time (Fig. 4), how many lines are zero, the
read/write mix, the burstiness that creates bank pressure, and how many
words change when a line is rewritten (which drives the DEUCE/DCW/FNW
comparison of Fig. 13).  This package encodes those statistics per
application (:mod:`profiles`), generates traces that provably exhibit them
(:mod:`generator` — the test suite checks each trace against its profile),
and provides the ground-truth duplication oracle (:mod:`oracle`) used by
Fig. 2 and the bit-flip analyzer.
"""

from repro.workloads.generator import TraceGenerator, generate_trace
from repro.workloads.io import load_trace, save_trace
from repro.workloads.oracle import DedupOracle, is_zero_line
from repro.workloads.profiles import (
    ALL_PROFILES,
    PARSEC_PROFILES,
    SPEC_PROFILES,
    ApplicationProfile,
    profile_by_name,
)
from repro.workloads.trace import MemoryAccess, Trace
from repro.workloads.worstcase import worst_case_trace

__all__ = [
    "ApplicationProfile",
    "ALL_PROFILES",
    "SPEC_PROFILES",
    "PARSEC_PROFILES",
    "profile_by_name",
    "MemoryAccess",
    "Trace",
    "TraceGenerator",
    "generate_trace",
    "DedupOracle",
    "is_zero_line",
    "worst_case_trace",
    "save_trace",
    "load_trace",
]
