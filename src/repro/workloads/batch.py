"""Columnar access batches — the hot-path representation of a trace.

The scalar pipeline hands one :class:`~repro.workloads.trace.MemoryAccess`
object per request to the controller; at millions of simulated accesses the
object churn (allocation, attribute lookups, per-access validation)
dominates the run.  :class:`AccessBatch` stores the same stream as parallel
``array``/``bytes`` columns so the simulator, the controllers' batched
kernels and the analysis tools can iterate integers instead of objects.

Layout (all columns are parallel, indexed by access position):

- ``ops`` — one byte per access, ``OP_READ`` (0) or ``OP_WRITE`` (1);
- ``cores`` — issuing core id (``array('i')``);
- ``addresses`` — line index (``array('q')``);
- ``gaps`` — instruction gap before the access (``array('q')``);
- ``persistent`` — one byte per access, 1 when the write is ordered by a
  flush+fence (meaningless for reads, always 0 there);
- ``payload`` — the concatenation of every write's line data, in access
  order;
- ``slots`` — byte offset of access *i*'s line inside ``payload``
  (``-1`` for reads).

Every write in a batch carries the same line size (the device's), so a
write's data is ``payload[slots[i] : slots[i] + line_size]``.  Batches are
immutable once built; build them with :class:`BatchBuilder` or via
:meth:`AccessBatch.from_accesses` / :meth:`Trace.as_batch
<repro.workloads.trace.Trace.as_batch>`.

Fingerprint columns are computed lazily and cached per scheme (see
:meth:`AccessBatch.fingerprints`), so a batch replayed through several
dedup controllers hashes each line once.
"""

from __future__ import annotations

import hashlib
import zlib
from array import array
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (trace imports us)
    from repro.workloads.trace import MemoryAccess

OP_READ = 0
OP_WRITE = 1


class AccessBatch:
    """An immutable columnar view of an ordered memory-access stream."""

    __slots__ = (
        "ops",
        "cores",
        "addresses",
        "gaps",
        "persistent",
        "payload",
        "slots",
        "line_size",
        "_fingerprint_cache",
    )

    def __init__(
        self,
        ops: bytes,
        cores: array,
        addresses: array,
        gaps: array,
        persistent: bytes,
        payload: bytes,
        slots: array,
        line_size: int,
    ) -> None:
        n = len(ops)
        if not (len(cores) == len(addresses) == len(gaps) == len(persistent) == len(slots) == n):
            raise ValueError("batch columns must be parallel (equal length)")
        self.ops = ops
        self.cores = cores
        self.addresses = addresses
        self.gaps = gaps
        self.persistent = persistent
        self.payload = payload
        self.slots = slots
        self.line_size = line_size
        self._fingerprint_cache: dict[str, list[int | bytes | None]] = {}

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def write_count(self) -> int:
        """Number of write accesses in the batch."""
        return self.ops.count(OP_WRITE)

    @property
    def read_count(self) -> int:
        """Number of read accesses in the batch."""
        return self.ops.count(OP_READ)

    def payload_of(self, index: int) -> bytes:
        """Line data of the write at ``index`` (raises for reads)."""
        slot = self.slots[index]
        if slot < 0:
            raise ValueError(f"access {index} is a read; reads carry no data")
        return self.payload[slot : slot + self.line_size]

    def write_pairs(self) -> Iterator[tuple[int, bytes]]:
        """Yield (address, data) for every write, in access order."""
        payload = self.payload
        line = self.line_size
        addresses = self.addresses
        for index, slot in enumerate(self.slots):
            if slot >= 0:
                yield addresses[index], payload[slot : slot + line]

    def fingerprints(self, scheme: str) -> list[int | bytes | None]:
        """Per-access fingerprint column for ``scheme`` (None at reads).

        ``"crc32"`` yields ints (the hardware CRC circuit's output); any
        other scheme name is treated as a :mod:`hashlib` algorithm and
        yields digests.  The column is computed once per scheme and cached
        on the batch, so several controllers replaying the same batch share
        the work.
        """
        cached = self._fingerprint_cache.get(scheme)
        if cached is not None:
            return cached
        column: list[int | bytes | None] = [None] * len(self.ops)
        view = memoryview(self.payload)
        line = self.line_size
        if scheme == "crc32":
            crc = zlib.crc32
            for index, slot in enumerate(self.slots):
                if slot >= 0:
                    column[index] = crc(view[slot : slot + line])
        else:
            new = hashlib.new
            for index, slot in enumerate(self.slots):
                if slot >= 0:
                    column[index] = new(scheme, view[slot : slot + line]).digest()
        self._fingerprint_cache[scheme] = column
        return column

    @classmethod
    def from_accesses(cls, accesses: list[MemoryAccess], line_size: int | None = None) -> AccessBatch:
        """Build a batch from scalar :class:`MemoryAccess` objects."""
        builder = BatchBuilder(line_size=line_size)
        for access in accesses:
            if access.op == "write":
                builder.append_write(
                    access.core,
                    access.address,
                    access.data,  # type: ignore[arg-type]
                    gap_instructions=access.gap_instructions,
                    persistent=access.persistent,
                )
            else:
                builder.append_read(
                    access.core, access.address, gap_instructions=access.gap_instructions
                )
        return builder.build()

    def to_accesses(self) -> list[MemoryAccess]:
        """Materialise scalar :class:`MemoryAccess` objects (compat path)."""
        from repro.workloads.trace import MemoryAccess

        payload = self.payload
        line = self.line_size
        out: list[MemoryAccess] = []
        for index, op in enumerate(self.ops):
            if op == OP_WRITE:
                slot = self.slots[index]
                out.append(
                    MemoryAccess(
                        core=self.cores[index],
                        op="write",
                        address=self.addresses[index],
                        data=payload[slot : slot + line],
                        gap_instructions=self.gaps[index],
                        persistent=bool(self.persistent[index]),
                    )
                )
            else:
                out.append(
                    MemoryAccess(
                        core=self.cores[index],
                        op="read",
                        address=self.addresses[index],
                        gap_instructions=self.gaps[index],
                    )
                )
        return out


class BatchBuilder:
    """Append-only builder producing an :class:`AccessBatch`.

    The workload generators append directly into the columns — no
    intermediate ``MemoryAccess`` objects — then call :meth:`build`.
    """

    def __init__(self, line_size: int | None = None) -> None:
        self._ops = bytearray()
        self._cores = array("i")
        self._addresses = array("q")
        self._gaps = array("q")
        self._persistent = bytearray()
        self._payload = bytearray()
        self._slots = array("q")
        self._line_size = line_size

    def __len__(self) -> int:
        return len(self._ops)

    def append_read(self, core: int, address: int, gap_instructions: int = 0) -> None:
        """Append one read access."""
        if gap_instructions < 0:
            raise ValueError("gap_instructions must be non-negative")
        self._ops.append(OP_READ)
        self._cores.append(core)
        self._addresses.append(address)
        self._gaps.append(gap_instructions)
        self._persistent.append(0)
        self._slots.append(-1)

    def append_write(
        self,
        core: int,
        address: int,
        data: bytes,
        gap_instructions: int = 0,
        persistent: bool = False,
    ) -> None:
        """Append one write access carrying ``data``."""
        if gap_instructions < 0:
            raise ValueError("gap_instructions must be non-negative")
        if self._line_size is None:
            self._line_size = len(data)
        elif len(data) != self._line_size:
            raise ValueError(
                f"write data must be {self._line_size} bytes, got {len(data)}"
            )
        self._ops.append(OP_WRITE)
        self._cores.append(core)
        self._addresses.append(address)
        self._gaps.append(gap_instructions)
        self._persistent.append(1 if persistent else 0)
        self._slots.append(len(self._payload))
        self._payload.extend(data)

    def build(self) -> AccessBatch:
        """Freeze the columns into an immutable :class:`AccessBatch`."""
        return AccessBatch(
            ops=bytes(self._ops),
            cores=self._cores,
            addresses=self._addresses,
            gaps=self._gaps,
            persistent=bytes(self._persistent),
            payload=bytes(self._payload),
            slots=self._slots,
            line_size=self._line_size if self._line_size is not None else 0,
        )
