"""Multi-tenant traffic synthesis for the serve data plane.

``repro serve`` drives one encrypted NVM pool on behalf of up to millions
of simulated tenants; this module synthesizes each shard's access stream
directly into the columnar :class:`~repro.workloads.batch.AccessBatch`
the fused ``service_batch`` kernels consume.  Three properties are
load-bearing:

- **Counter-based determinism.**  Every decision (which tenant issues
  global access *i*, read vs write, address offset, line content, gap)
  is a pure function of ``(seed, i)`` through the splitmix64-style
  :func:`mix64` finaliser — there is no sequential RNG state.  A shard
  worker therefore reconstructs exactly its slice of the global
  interleaved stream with one cheap pass over the access counter,
  skipping accesses owned by other shards, and the traffic is identical
  whatever the shard count, worker count or execution order.

- **Controlled cross-tenant overlap.**  Each write draws its line either
  from a small shared content pool (probability ``content_overlap``) or
  from tenant-private content, so the cross-tenant dedup ratio the
  service reports is a *controlled variable* of the experiment, not an
  accident of the generator.

- **Fused-path shape.**  Every access issues from core 0: the batched
  kernels bail to the scalar loop on multi-stream cursors, and a serve
  shard must stay on the fused path (zero ``batch.fallback.*``).

Tenant popularity is zipfian via the continuous inverse-CDF
approximation (rank ``~ u^(-1/(s-1))`` shape), the standard choice when
the population is too large to materialise a CDF table.

The synthesizer is deliberately decoupled from the control plane: the
shard-routing function and the slot registry are passed in as plain
callables/objects (see :mod:`repro.serve.tenants`), so the workloads
layer never imports the serve subsystem.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.workloads.batch import AccessBatch, BatchBuilder

_MASK64 = (1 << 64) - 1

# Domain-separation salts: one per decision stream, so e.g. the op choice
# of access i is independent of its gap draw.
_SALT_TENANT = 0x01
_SALT_OP = 0x02
_SALT_ADDRESS = 0x03
_SALT_GAP = 0x04
_SALT_PERSIST = 0x05
_SALT_POOL = 0x06
_SALT_POOL_PICK = 0x07


def mix64(*parts: int) -> int:
    """Stateless 64-bit mixer (splitmix64 finaliser folded over ``parts``).

    The serve subsystem derives *all* of its randomness from this: tenant
    draws, shard routing, address offsets and content choices.  Unlike a
    sequential ``random.Random``, any single decision is addressable in
    O(1), which is what lets a shard worker skip foreign accesses without
    replaying their draws.
    """
    value = 0x9E3779B97F4A7C15
    for part in parts:
        value = (value + (part & _MASK64)) & _MASK64
        value ^= value >> 30
        value = (value * 0xBF58476D1CE4E5B9) & _MASK64
        value ^= value >> 27
        value = (value * 0x94D049BB133111EB) & _MASK64
        value ^= value >> 31
    return value


def mix01(*parts: int) -> float:
    """Uniform float in [0, 1) derived from :func:`mix64`."""
    return mix64(*parts) / 2.0**64


def zipf_rank(u: float, population: int, s: float) -> int:
    """Map a uniform draw to a zipf(s)-distributed rank in [0, population).

    Continuous inverse-CDF approximation over ranks ``[1, population+1)``;
    exact enough for traffic shaping (rank 0 is the hottest tenant), and
    O(1) per draw for populations of millions where a CDF table would be
    prohibitive.  ``s == 1`` uses the logarithmic closed form.
    """
    if population < 1:
        raise ValueError(f"population must be positive, got {population}")
    if population == 1:
        return 0
    top = float(population + 1)
    if abs(s - 1.0) < 1e-9:
        rank = int(top**u)
    else:
        exponent = 1.0 - s
        rank = int((1.0 + u * (top**exponent - 1.0)) ** (1.0 / exponent))
    return min(max(rank - 1, 0), population - 1)


class SlotRegistry(Protocol):
    """What the synthesizer needs from a tenant registry.

    :class:`repro.serve.tenants.TenantRegistry` is the real implementation;
    the protocol keeps the workloads layer import-free of the serve
    control plane.
    """

    def slot_of(self, tenant: int) -> int | None:
        """Slot for ``tenant`` (assigned on first use), or ``None`` when full."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class TenantTrafficConfig:
    """Knobs of the seeded multi-tenant traffic model.

    ``accesses`` is the *global* interleaved budget across every tenant
    and shard; ``tenants`` is the addressable population the zipfian
    draws range over (most of a million-tenant population never appears
    in a bounded budget — that is the point of the popularity skew).
    """

    tenants: int = 1_000_000
    accesses: int = 250_000
    seed: int = 7
    zipf_s: float = 1.1
    content_overlap: float = 0.35
    shared_pool_lines: int = 4096
    lines_per_tenant: int = 64
    read_fraction: float = 0.3
    persistent_fraction: float = 0.05
    max_gap: int = 64
    line_size: int = 256

    def __post_init__(self) -> None:
        if self.tenants < 1:
            raise ValueError(f"tenants must be positive, got {self.tenants}")
        if self.accesses < 0:
            raise ValueError(f"accesses must be non-negative, got {self.accesses}")
        if self.zipf_s <= 0:
            raise ValueError(f"zipf_s must be positive, got {self.zipf_s}")
        for name in ("content_overlap", "read_fraction", "persistent_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.shared_pool_lines < 1:
            raise ValueError(
                f"shared_pool_lines must be positive, got {self.shared_pool_lines}"
            )
        if self.lines_per_tenant < 1:
            raise ValueError(
                f"lines_per_tenant must be positive, got {self.lines_per_tenant}"
            )
        if self.max_gap < 0:
            raise ValueError(f"max_gap must be non-negative, got {self.max_gap}")
        if self.line_size < 16 or self.line_size % 16:
            raise ValueError(
                f"line_size must be a positive multiple of 16, got {self.line_size}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-shaped snapshot (job params / service config)."""
        return {
            "tenants": self.tenants,
            "accesses": self.accesses,
            "seed": self.seed,
            "zipf_s": self.zipf_s,
            "content_overlap": self.content_overlap,
            "shared_pool_lines": self.shared_pool_lines,
            "lines_per_tenant": self.lines_per_tenant,
            "read_fraction": self.read_fraction,
            "persistent_fraction": self.persistent_fraction,
            "max_gap": self.max_gap,
            "line_size": self.line_size,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "TenantTrafficConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        return cls(
            tenants=int(payload["tenants"]),
            accesses=int(payload["accesses"]),
            seed=int(payload["seed"]),
            zipf_s=float(payload["zipf_s"]),
            content_overlap=float(payload["content_overlap"]),
            shared_pool_lines=int(payload["shared_pool_lines"]),
            lines_per_tenant=int(payload["lines_per_tenant"]),
            read_fraction=float(payload["read_fraction"]),
            persistent_fraction=float(payload["persistent_fraction"]),
            max_gap=int(payload["max_gap"]),
            line_size=int(payload["line_size"]),
        )


@dataclass(frozen=True)
class ShardStream:
    """One shard's synthesized stream plus its admission accounting.

    ``offered`` counts the global accesses routed to this shard;
    ``admitted`` made it into the batch; ``deferred`` hit a per-tenant
    quota; ``rejected`` belonged to tenants the shard had no address
    slot left for.  ``offered == admitted + deferred + rejected`` always.
    """

    shard: int
    batch: AccessBatch
    tenants_seen: int
    offered: int
    admitted: int
    deferred: int
    rejected: int


def tenant_line(seed: int, *key: int, line_size: int = 256) -> bytes:
    """Deterministic line content for one ``(seed, *key)`` identity.

    One SHA-256 over the packed key, tiled to the line size — enough
    entropy that distinct keys never collide in practice, cheap enough
    to run once per synthesized write.
    """
    packed = struct.pack(f"<{len(key) + 1}q", seed, *key)
    digest = hashlib.sha256(packed).digest()
    repeats = (line_size + len(digest) - 1) // len(digest)
    return (digest * repeats)[:line_size]


def synthesize_shard_stream(
    config: TenantTrafficConfig,
    *,
    shard: int,
    shard_of: Callable[[int], int],
    registry: SlotRegistry,
    tenant_quota: int = 0,
) -> ShardStream:
    """Synthesize shard ``shard``'s slice of the global tenant stream.

    Walks the global access counter ``0..accesses`` and keeps exactly the
    accesses whose tenant routes to ``shard`` under ``shard_of``, so the
    union of every shard's stream is the full interleaved trace and each
    access appears in exactly one shard whatever the shard count.

    ``registry`` carves the shard's address space: each admitted tenant
    gets a ``lines_per_tenant`` window at its slot, assigned in first-
    appearance order (deterministic, since the walk order is the global
    counter).  ``tenant_quota`` > 0 defers accesses beyond that many per
    tenant — the control plane's per-tenant backpressure, applied at
    synthesis time so it is a property of the plan, not of execution.

    A tenant's first admitted access is always a write (reads target the
    tenant's last written line, so there is always something to read).
    """
    if shard < 0:
        raise ValueError(f"shard must be non-negative, got {shard}")
    if tenant_quota < 0:
        raise ValueError(f"tenant_quota must be non-negative, got {tenant_quota}")

    seed = config.seed
    builder = BatchBuilder(line_size=config.line_size)
    pool_cache: dict[int, bytes] = {}
    last_written: dict[int, int] = {}
    admitted_per_tenant: dict[int, int] = {}
    offered = admitted = deferred = rejected = 0

    for index in range(config.accesses):
        tenant = zipf_rank(
            mix01(seed, _SALT_TENANT, index), config.tenants, config.zipf_s
        )
        if shard_of(tenant) != shard:
            continue
        offered += 1
        used = admitted_per_tenant.get(tenant, 0)
        if tenant_quota and used >= tenant_quota:
            deferred += 1
            continue
        slot = registry.slot_of(tenant)
        if slot is None:
            rejected += 1
            continue

        gap = mix64(seed, _SALT_GAP, index) % (config.max_gap + 1)
        first_line = slot * config.lines_per_tenant
        last = last_written.get(tenant)
        if last is None or mix01(seed, _SALT_OP, index) >= config.read_fraction:
            offset = mix64(seed, _SALT_ADDRESS, tenant, used) % config.lines_per_tenant
            address = first_line + offset
            if mix01(seed, _SALT_POOL, index) < config.content_overlap:
                pick = mix64(seed, _SALT_POOL_PICK, index) % config.shared_pool_lines
                data = pool_cache.get(pick)
                if data is None:
                    data = tenant_line(seed, pick, line_size=config.line_size)
                    pool_cache[pick] = data
            else:
                data = tenant_line(seed, tenant, used, line_size=config.line_size)
            persistent = mix01(seed, _SALT_PERSIST, index) < config.persistent_fraction
            builder.append_write(0, address, data, gap_instructions=gap,
                                 persistent=persistent)
            last_written[tenant] = address
        else:
            builder.append_read(0, last, gap_instructions=gap)
        admitted_per_tenant[tenant] = used + 1
        admitted += 1

    return ShardStream(
        shard=shard,
        batch=builder.build(),
        tenants_seen=len(admitted_per_tenant),
        offered=offered,
        admitted=admitted,
        deferred=deferred,
        rejected=rejected,
    )
