"""Per-application workload profiles for the paper's 20 benchmarks.

Each profile parameterises the synthetic trace generator with the memory-
stream statistics that drive every evaluation figure.  Values are anchored
to everything the paper states numerically:

- duplicate-line ratios average 58 %, range 18.6 %–98.4 % (Fig. 2);
  cactusADM, libquantum, lbm and blackscholes exceed 80 %; bzip2 and vips
  are non-duplicate-heavy; sjeng's duplicates are dominated by zero lines;
- zero-line writes average 16 % (Fig. 2 / Silent Shredder comparison);
- duplication states repeat their predecessor ~92 % of the time (Fig. 4);
- SPEC applications run single-threaded, the 8 PARSEC applications run
  with 4 threads (§IV-A).

Per-application values that the paper only shows graphically (exact bar
heights) are synthesized to be consistent with those anchors; DESIGN.md §1
records this substitution.  The remaining fields (write fraction, working
set, burstiness, rewrite dirtiness, persist fraction) shape the timing and
bit-flip behaviour and are chosen per application class (streaming,
pointer-chasing, compute-bound) so the relative orderings the paper reports
emerge rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical description of one application's memory write stream."""

    name: str
    suite: str  # "SPEC" or "PARSEC"
    threads: int
    dup_ratio: float  # target fraction of duplicate line writes (Fig. 2)
    zero_line_fraction: float  # fraction of writes that are all-zero lines
    state_locality: float  # P(next duplication state == previous) (Fig. 4)
    write_fraction: float  # writes / (reads + writes) reaching memory
    working_set_lines: int  # distinct 256 B lines the app touches
    mean_gap_instructions: int  # instructions between memory accesses
    burst_length_mean: float  # accesses per near-back-to-back burst
    persist_fraction: float  # writes ordered by clwb+fence (core stalls)
    rewrite_dirtiness: float  # mean fraction of 16-bit words modified on rewrite

    def __post_init__(self) -> None:
        if self.suite not in ("SPEC", "PARSEC"):
            raise ValueError(f"unknown suite {self.suite!r}")
        for field_name in (
            "dup_ratio",
            "zero_line_fraction",
            "state_locality",
            "write_fraction",
            "persist_fraction",
            "rewrite_dirtiness",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.zero_line_fraction > self.dup_ratio + 0.05:
            raise ValueError(
                f"{self.name}: zero lines ({self.zero_line_fraction}) cannot much "
                f"exceed the duplicate ratio ({self.dup_ratio})"
            )
        if self.threads < 1:
            raise ValueError("threads must be at least 1")
        if self.working_set_lines < 16:
            raise ValueError("working set unrealistically small")


def _spec(name: str, **kwargs) -> ApplicationProfile:
    return ApplicationProfile(name=name, suite="SPEC", threads=1, **kwargs)


def _parsec(name: str, **kwargs) -> ApplicationProfile:
    return ApplicationProfile(name=name, suite="PARSEC", threads=4, **kwargs)


SPEC_PROFILES: tuple[ApplicationProfile, ...] = (
    _spec(
        "bzip2",  # compression: churns unique data, few duplicates
        dup_ratio=0.20, zero_line_fraction=0.05, state_locality=0.89,
        write_fraction=0.42, working_set_lines=24_000,
        mean_gap_instructions=180, burst_length_mean=12.0,
        persist_fraction=0.10, rewrite_dirtiness=0.55,
    ),
    _spec(
        "gcc",  # compiler: mixed allocation/initialisation behaviour
        dup_ratio=0.45, zero_line_fraction=0.15, state_locality=0.91,
        write_fraction=0.38, working_set_lines=32_000,
        mean_gap_instructions=220, burst_length_mean=10.0,
        persist_fraction=0.12, rewrite_dirtiness=0.45,
    ),
    _spec(
        "mcf",  # pointer-chasing, memory bound, small gaps
        dup_ratio=0.50, zero_line_fraction=0.10, state_locality=0.90,
        write_fraction=0.30, working_set_lines=48_000,
        mean_gap_instructions=90, burst_length_mean=8.0,
        persist_fraction=0.07, rewrite_dirtiness=0.35,
    ),
    _spec(
        "milc",  # lattice QCD: strided numeric kernels
        dup_ratio=0.55, zero_line_fraction=0.12, state_locality=0.92,
        write_fraction=0.35, working_set_lines=40_000,
        mean_gap_instructions=140, burst_length_mean=16.0,
        persist_fraction=0.10, rewrite_dirtiness=0.40,
    ),
    _spec(
        "zeusmp",  # CFD stencils
        dup_ratio=0.60, zero_line_fraction=0.15, state_locality=0.93,
        write_fraction=0.40, working_set_lines=36_000,
        mean_gap_instructions=150, burst_length_mean=16.0,
        persist_fraction=0.10, rewrite_dirtiness=0.42,
    ),
    _spec(
        "cactusADM",  # relativity solver: highly duplicated grid updates
        dup_ratio=0.93, zero_line_fraction=0.20, state_locality=0.96,
        write_fraction=0.45, working_set_lines=30_000,
        mean_gap_instructions=110, burst_length_mean=24.0,
        persist_fraction=0.12, rewrite_dirtiness=0.40,
    ),
    _spec(
        "gobmk",  # game tree search: modest duplication
        dup_ratio=0.40, zero_line_fraction=0.10, state_locality=0.90,
        write_fraction=0.33, working_set_lines=20_000,
        mean_gap_instructions=260, burst_length_mean=8.0,
        persist_fraction=0.10, rewrite_dirtiness=0.48,
    ),
    _spec(
        "hmmer",  # profile HMM search: compute bound
        dup_ratio=0.35, zero_line_fraction=0.08, state_locality=0.90,
        write_fraction=0.36, working_set_lines=16_000,
        mean_gap_instructions=300, burst_length_mean=10.0,
        persist_fraction=0.09, rewrite_dirtiness=0.50,
    ),
    _spec(
        "sjeng",  # chess: duplicates dominated by zero (shredded) lines
        dup_ratio=0.55, zero_line_fraction=0.50, state_locality=0.92,
        write_fraction=0.34, working_set_lines=22_000,
        mean_gap_instructions=240, burst_length_mean=10.0,
        persist_fraction=0.10, rewrite_dirtiness=0.45,
    ),
    _spec(
        "libquantum",  # quantum simulation: streaming, hugely duplicated
        dup_ratio=0.88, zero_line_fraction=0.25, state_locality=0.95,
        write_fraction=0.48, working_set_lines=28_000,
        mean_gap_instructions=100, burst_length_mean=28.0,
        persist_fraction=0.11, rewrite_dirtiness=0.35,
    ),
    _spec(
        "lbm",  # lattice Boltzmann: the paper's 98.4 % extreme
        dup_ratio=0.984, zero_line_fraction=0.20, state_locality=0.97,
        write_fraction=0.50, working_set_lines=34_000,
        mean_gap_instructions=90, burst_length_mean=32.0,
        persist_fraction=0.12, rewrite_dirtiness=0.30,
    ),
    _spec(
        "omnetpp",  # discrete-event simulation: allocator-heavy
        dup_ratio=0.50, zero_line_fraction=0.12, state_locality=0.91,
        write_fraction=0.37, working_set_lines=44_000,
        mean_gap_instructions=170, burst_length_mean=10.0,
        persist_fraction=0.11, rewrite_dirtiness=0.46,
    ),
)

PARSEC_PROFILES: tuple[ApplicationProfile, ...] = (
    _parsec(
        "blackscholes",  # option pricing: duplicated option batches (>80 %)
        dup_ratio=0.85, zero_line_fraction=0.18, state_locality=0.95,
        write_fraction=0.40, working_set_lines=26_000,
        mean_gap_instructions=130, burst_length_mean=20.0,
        persist_fraction=0.10, rewrite_dirtiness=0.38,
    ),
    _parsec(
        "bodytrack",  # vision: mixed
        dup_ratio=0.55, zero_line_fraction=0.12, state_locality=0.92,
        write_fraction=0.35, working_set_lines=30_000,
        mean_gap_instructions=180, burst_length_mean=12.0,
        persist_fraction=0.09, rewrite_dirtiness=0.45,
    ),
    _parsec(
        "canneal",  # simulated annealing: cache-hostile random access
        dup_ratio=0.60, zero_line_fraction=0.15, state_locality=0.91,
        write_fraction=0.30, working_set_lines=60_000,
        mean_gap_instructions=100, burst_length_mean=6.0,
        persist_fraction=0.07, rewrite_dirtiness=0.40,
    ),
    _parsec(
        "ferret",  # similarity search pipeline
        dup_ratio=0.50, zero_line_fraction=0.10, state_locality=0.91,
        write_fraction=0.33, working_set_lines=36_000,
        mean_gap_instructions=190, burst_length_mean=10.0,
        persist_fraction=0.09, rewrite_dirtiness=0.44,
    ),
    _parsec(
        "fluidanimate",  # particle simulation: stencil-like duplication
        dup_ratio=0.65, zero_line_fraction=0.18, state_locality=0.93,
        write_fraction=0.42, working_set_lines=32_000,
        mean_gap_instructions=140, burst_length_mean=18.0,
        persist_fraction=0.11, rewrite_dirtiness=0.40,
    ),
    _parsec(
        "streamcluster",  # streaming clustering: repetitive centroids
        dup_ratio=0.75, zero_line_fraction=0.22, state_locality=0.94,
        write_fraction=0.38, working_set_lines=28_000,
        mean_gap_instructions=120, burst_length_mean=20.0,
        persist_fraction=0.10, rewrite_dirtiness=0.36,
    ),
    _parsec(
        "swaptions",  # Monte-Carlo pricing: mostly fresh randomness
        dup_ratio=0.45, zero_line_fraction=0.10, state_locality=0.90,
        write_fraction=0.36, working_set_lines=18_000,
        mean_gap_instructions=230, burst_length_mean=10.0,
        persist_fraction=0.09, rewrite_dirtiness=0.50,
    ),
    _parsec(
        "vips",  # image pipeline: the paper's 18.6 % floor, non-dup heavy
        dup_ratio=0.186, zero_line_fraction=0.05, state_locality=0.88,
        write_fraction=0.44, working_set_lines=38_000,
        mean_gap_instructions=150, burst_length_mean=14.0,
        persist_fraction=0.10, rewrite_dirtiness=0.60,
    ),
)

ALL_PROFILES: tuple[ApplicationProfile, ...] = SPEC_PROFILES + PARSEC_PROFILES

_BY_NAME = {p.name: p for p in ALL_PROFILES}


def profile_by_name(name: str) -> ApplicationProfile:
    """Look up one of the 20 profiles by application name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
