"""Trace serialisation: save/load memory traces as compact binary files.

Traces drive every experiment, and regenerating a large one costs far more
than re-reading it.  The format is a small self-describing binary: a
header, then one fixed-width record per access with the line payloads of
writes appended in order.  Round-tripping is exact (a tested invariant),
so saved traces make experiments bit-reproducible across sessions.

Format (little-endian):

    magic  b"DWTR"           4 bytes
    version u16              currently 1
    line_size u16
    threads u16
    name_len u16, name utf-8
    count u32
    records: count x (core u16, flags u8, address u64, gap u32)
        flags bit0 = is write, bit1 = persistent
    payloads: line_size bytes per write record, in record order
"""

from __future__ import annotations

import io
import pathlib
import struct

from repro.workloads.trace import MemoryAccess, Trace

_MAGIC = b"DWTR"
_VERSION = 1
_HEADER = struct.Struct("<4sHHHH")
_RECORD = struct.Struct("<HBQI")

_FLAG_WRITE = 0x01
_FLAG_PERSISTENT = 0x02


def save_trace(trace: Trace, path: str | pathlib.Path, line_size_bytes: int = 256) -> None:
    """Write a trace to ``path`` in the DWTR binary format."""
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise ValueError("trace name too long")
    buffer = io.BytesIO()
    buffer.write(
        _HEADER.pack(_MAGIC, _VERSION, line_size_bytes, trace.threads, len(name_bytes))
    )
    buffer.write(name_bytes)
    buffer.write(struct.pack("<I", len(trace.accesses)))

    payloads = io.BytesIO()
    for access in trace.accesses:
        flags = 0
        if access.op == "write":
            flags |= _FLAG_WRITE
            if access.persistent:
                flags |= _FLAG_PERSISTENT
            if len(access.data) != line_size_bytes:
                raise ValueError(
                    f"access at line {access.address} has {len(access.data)}-byte "
                    f"payload, expected {line_size_bytes}"
                )
            payloads.write(access.data)
        buffer.write(_RECORD.pack(access.core, flags, access.address, access.gap_instructions))
    buffer.write(payloads.getvalue())
    pathlib.Path(path).write_bytes(buffer.getvalue())


def load_trace(path: str | pathlib.Path) -> Trace:
    """Read a trace previously written by :func:`save_trace`."""
    raw = pathlib.Path(path).read_bytes()
    view = memoryview(raw)
    magic, version, line_size, threads, name_len = _HEADER.unpack_from(view, 0)
    if magic != _MAGIC:
        raise ValueError(f"not a DWTR trace file: bad magic {magic!r}")
    if version != _VERSION:
        raise ValueError(f"unsupported trace version {version}")
    offset = _HEADER.size
    name = bytes(view[offset : offset + name_len]).decode("utf-8")
    offset += name_len
    (count,) = struct.unpack_from("<I", view, offset)
    offset += 4

    records = []
    for _ in range(count):
        records.append(_RECORD.unpack_from(view, offset))
        offset += _RECORD.size

    accesses: list[MemoryAccess] = []
    for core, flags, address, gap in records:
        if flags & _FLAG_WRITE:
            data = bytes(view[offset : offset + line_size])
            offset += line_size
            accesses.append(
                MemoryAccess(
                    core=core,
                    op="write",
                    address=address,
                    data=data,
                    gap_instructions=gap,
                    persistent=bool(flags & _FLAG_PERSISTENT),
                )
            )
        else:
            accesses.append(
                MemoryAccess(core=core, op="read", address=address, gap_instructions=gap)
            )
    return Trace(name=name, accesses=accesses, threads=threads)
