"""Memory-trace datatypes shared by the generator, simulator and analyses."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Iterator

from repro.workloads.batch import AccessBatch


@dataclass(frozen=True)
class MemoryAccess:
    """One post-LLC memory request.

    Attributes:
        core: issuing core (0-based).
        op: ``"read"`` or ``"write"``.
        address: line index.
        data: line contents for writes; None for reads.
        gap_instructions: instructions the core executes between its
            previous access and this one (compute time).
        persistent: for writes — whether the store is ordered by a cache
            flush + fence, stalling the core until it completes (§III's
            persistent-memory write model).  Non-persistent writes are LLC
            writebacks, posted to the bank without stalling.
    """

    core: int
    op: str
    address: int
    data: bytes | None = None
    gap_instructions: int = 0
    persistent: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"op must be 'read' or 'write', got {self.op!r}")
        if self.op == "write" and self.data is None:
            raise ValueError("writes must carry line data")
        if self.op == "read" and self.data is not None:
            raise ValueError("reads must not carry data")
        if self.gap_instructions < 0:
            raise ValueError("gap_instructions must be non-negative")


@dataclass
class Trace:
    """An ordered memory-access stream plus its provenance."""

    name: str
    accesses: list[MemoryAccess] = field(default_factory=list)
    threads: int = 1

    def __len__(self) -> int:
        return len(self.accesses)

    def __iter__(self) -> Iterator[MemoryAccess]:
        return iter(self.accesses)

    @property
    def writes(self) -> list[MemoryAccess]:
        """Write accesses only, in order."""
        return [a for a in self.accesses if a.op == "write"]

    @property
    def reads(self) -> list[MemoryAccess]:
        """Read accesses only, in order."""
        return [a for a in self.accesses if a.op == "read"]

    def write_pairs(self) -> list[tuple[int, bytes]]:
        """Deprecated: use ``as_batch().write_pairs()``.

        Kept as a thin wrapper over the columnar batch so old callers keep
        working; the batch path avoids re-touching one ``MemoryAccess``
        object per write.
        """
        warnings.warn(
            "Trace.write_pairs() is deprecated; use Trace.as_batch().write_pairs()",
            DeprecationWarning,
            stacklevel=2,
        )
        return list(self.as_batch().write_pairs())

    def as_batch(self) -> AccessBatch:
        """Columnar view of this trace (cached after the first call).

        The batch is the hot-path representation: the simulator, the
        controllers' batched kernels and the analysis tools all consume it.
        Traces built by the generators carry their batch from birth; traces
        assembled access-by-access convert (and cache) on first use.
        """
        cached = getattr(self, "_batch_cache", None)
        if cached is None:
            cached = AccessBatch.from_accesses(self.accesses)
            self._batch_cache = cached
        return cached

    @classmethod
    def from_batch(cls, name: str, batch: AccessBatch, threads: int = 1) -> "Trace":
        """Build a trace whose native representation is ``batch``.

        The scalar ``accesses`` list is materialised once for the legacy
        object API; ``as_batch()`` returns the original batch without a
        conversion pass.
        """
        trace = cls(name=name, accesses=batch.to_accesses(), threads=threads)
        trace._batch_cache = batch
        return trace

    @property
    def total_instructions(self) -> int:
        """Instructions executed across all accesses (for IPC)."""
        return sum(a.gap_instructions for a in self.accesses)
