"""From-scratch AES-128 block cipher (FIPS-197).

This is the functional model of the hardware AES engine every secure-NVM
design in the paper assumes (96 ns per 256 B line, 5.9 nJ per 128-bit
block — paper §IV-A).  It is used two ways:

- as the pad generator for counter-mode encryption when full cryptographic
  fidelity is wanted (:class:`repro.crypto.otp.AesPadGenerator`);
- as the direct block cipher for metadata lines
  (:class:`repro.crypto.direct.DirectEncryptionEngine`).

The implementation is the textbook byte-oriented one: S-box built from the
GF(2^8) inverse + affine map, key expansion, SubBytes / ShiftRows /
MixColumns / AddRoundKey, plus the inverse cipher.  Test vectors from
FIPS-197 Appendix B/C are asserted in the test suite.
"""

from __future__ import annotations


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (Russian-peasant with xtime)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Derive the AES S-box from first principles (GF inverse + affine)."""
    # Multiplicative inverses via exhaustive search is O(256^2) once at import.
    inverse = [0] * 256
    for a in range(1, 256):
        for b in range(1, 256):
            if _gmul(a, b) == 1:
                inverse[a] = b
                break
    sbox = [0] * 256
    for value in range(256):
        x = inverse[value]
        # Affine transformation: bit_i = x_i ^ x_{i+4} ^ x_{i+5} ^ x_{i+6} ^ x_{i+7} ^ c_i
        result = 0
        for bit in range(8):
            b = (
                (x >> bit)
                ^ (x >> ((bit + 4) % 8))
                ^ (x >> ((bit + 5) % 8))
                ^ (x >> ((bit + 6) % 8))
                ^ (x >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            result |= b << bit
        sbox[value] = result
    inv_sbox = [0] * 256
    for i, s in enumerate(sbox):
        inv_sbox[s] = i
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


class AES128:
    """AES with a 128-bit key: 10 rounds over a 16-byte state.

    The state is kept as a flat 16-byte list in column-major order, matching
    FIPS-197's ``in[4*c + r]`` layout, so ``encrypt_block``/``decrypt_block``
    operate directly on the wire format.
    """

    BLOCK_SIZE = 16
    ROUNDS = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list[bytes]:
        """FIPS-197 key schedule: 44 words -> 11 round keys of 16 bytes."""
        words = [list(key[i : i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]  # RotWord
                temp = [_SBOX[b] for b in temp]  # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        round_keys = []
        for r in range(11):
            flat = []
            for w in words[4 * r : 4 * r + 4]:
                flat.extend(w)
            round_keys.append(bytes(flat))
        return round_keys

    # -- forward cipher ----------------------------------------------------

    @staticmethod
    def _sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        # Row r (elements state[r], state[r+4], ...) rotates left by r.
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[r:] + row[:r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = _gmul(col[0], 2) ^ _gmul(col[1], 3) ^ col[2] ^ col[3]
            state[4 * c + 1] = col[0] ^ _gmul(col[1], 2) ^ _gmul(col[2], 3) ^ col[3]
            state[4 * c + 2] = col[0] ^ col[1] ^ _gmul(col[2], 2) ^ _gmul(col[3], 3)
            state[4 * c + 3] = _gmul(col[0], 3) ^ col[1] ^ col[2] ^ _gmul(col[3], 2)

    @staticmethod
    def _add_round_key(state: list[int], round_key: bytes) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(plaintext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(plaintext)}")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, 10):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    # -- inverse cipher ----------------------------------------------------

    @staticmethod
    def _inv_sub_bytes(state: list[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for r in range(1, 4):
            row = [state[r + 4 * c] for c in range(4)]
            row = row[-r:] + row[:-r]
            for c in range(4):
                state[r + 4 * c] = row[c]

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c : 4 * c + 4]
            state[4 * c + 0] = (
                _gmul(col[0], 14) ^ _gmul(col[1], 11) ^ _gmul(col[2], 13) ^ _gmul(col[3], 9)
            )
            state[4 * c + 1] = (
                _gmul(col[0], 9) ^ _gmul(col[1], 14) ^ _gmul(col[2], 11) ^ _gmul(col[3], 13)
            )
            state[4 * c + 2] = (
                _gmul(col[0], 13) ^ _gmul(col[1], 9) ^ _gmul(col[2], 14) ^ _gmul(col[3], 11)
            )
            state[4 * c + 3] = (
                _gmul(col[0], 11) ^ _gmul(col[1], 13) ^ _gmul(col[2], 9) ^ _gmul(col[3], 14)
            )

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt exactly one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(ciphertext)}")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[10])
        for rnd in range(9, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
