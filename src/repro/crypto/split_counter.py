"""Split counters with overflow-triggered page re-encryption.

The paper assumes 28-bit per-line counters (§III-C) and never discusses
what happens when one overflows — but counter-mode security forbids pad
reuse (§II-B), so a real controller must handle it.  The standard answer
(Yan et al.'s split counters, as used by DEUCE-class designs) pairs a
small per-line *minor* counter with a per-page *major* counter:

    pad = PRF(key, line address, major || minor)

When a line's minor counter is about to wrap, the page's major counter is
bumped, every minor counter in the page resets, and **every line of the
page is re-encrypted** under the new major — an expensive but rare burst
of reads and writes.

:class:`SplitCounterStore` is the bookkeeping state machine; the baseline
secure-NVM controller integrates it behind ``use_split_counters`` so the
re-encryption storm is measurable (tests shrink ``minor_bits`` to trigger
it quickly; at the realistic 28 bits it never fires in simulation, which
is itself the justification for the paper's silence).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PageReencryption:
    """An overflow event: these lines must be re-encrypted now.

    ``old_counters`` snapshots each line's combined counter *before* the
    major bump, which the caller needs to decrypt the stored ciphertexts.
    """

    page: int
    lines: tuple[int, ...]
    new_major: int
    old_counters: dict[int, int]


@dataclass
class SplitCounterStore:
    """Per-page major + per-line minor counters with overflow detection."""

    minor_bits: int = 28
    lines_per_page: int = 16  # 4 KB pages of 256 B lines

    _minor: dict[int, int] = field(default_factory=dict)
    _major: dict[int, int] = field(default_factory=dict)
    overflows: int = 0

    def __post_init__(self) -> None:
        if self.minor_bits < 1:
            raise ValueError("minor counter needs at least one bit")
        if self.lines_per_page < 1:
            raise ValueError("pages must contain at least one line")

    @property
    def minor_limit(self) -> int:
        """First value the minor counter cannot represent."""
        return 1 << self.minor_bits

    def page_of(self, line: int) -> int:
        """Page a line belongs to."""
        return line // self.lines_per_page

    def counter_of(self, line: int) -> int:
        """Current combined counter (major || minor) of a line."""
        page = self.page_of(line)
        return (self._major.get(page, 0) << self.minor_bits) | self._minor.get(line, 0)

    def advance(self, line: int) -> tuple[int, PageReencryption | None]:
        """Bump the line's counter for a new write.

        Returns ``(combined_counter, reencryption)`` where ``reencryption``
        is None in the common case, or the overflow event the caller must
        service (re-encrypt every listed line under its fresh counter,
        which :meth:`counter_of` already reflects).
        """
        page = self.page_of(line)
        minor = self._minor.get(line, 0) + 1
        if minor < self.minor_limit:
            self._minor[line] = minor
            return self.counter_of(line), None

        # Overflow: bump the major, reset the page's minors.
        self.overflows += 1
        first = page * self.lines_per_page
        page_lines = tuple(range(first, first + self.lines_per_page))
        old_counters = {member: self.counter_of(member) for member in page_lines}
        new_major = self._major.get(page, 0) + 1
        self._major[page] = new_major
        for member in page_lines:
            self._minor[member] = 0
        self._minor[line] = 1  # the triggering write itself
        return self.counter_of(line), PageReencryption(
            page=page, lines=page_lines, new_major=new_major, old_counters=old_counters
        )
