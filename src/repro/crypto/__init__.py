"""Memory-encryption substrate for DeWrite.

Secure NVMM encrypts every line on the CPU side to defeat stolen-DIMM and
bus-snooping attacks (paper §II-A/B).  DeWrite builds on *counter-mode
encryption* (CME): a one-time pad is derived from (secret key, line address,
per-line counter) through an AES engine and XORed with the data, so
decryption overlaps the memory read.  Metadata lines use *direct* (block)
encryption instead, avoiding counters for the counter store itself
(paper §III-B1).

Modules:

- :mod:`repro.crypto.aes` — from-scratch AES-128 (FIPS-197), the reference
  pad generator and the direct block cipher.
- :mod:`repro.crypto.otp` — fast splitmix64-based keyed PRF pads for large
  simulations (same security-relevant property for the simulator: each
  (key, address, counter) yields an independent pad → full diffusion).
- :mod:`repro.crypto.counter_mode` — the CME engine with per-line counters
  and OTP-uniqueness bookkeeping.
- :mod:`repro.crypto.direct` — direct line encryption used for metadata and
  as the §II-B direct-encryption baseline.
"""

from repro.crypto.aes import AES128
from repro.crypto.counter_mode import CounterModeEngine, OtpReuseError
from repro.crypto.direct import DirectEncryptionEngine
from repro.crypto.otp import (
    AesPadGenerator,
    PadGenerator,
    ShakePadGenerator,
    SplitmixPadGenerator,
)

__all__ = [
    "AES128",
    "CounterModeEngine",
    "OtpReuseError",
    "DirectEncryptionEngine",
    "PadGenerator",
    "SplitmixPadGenerator",
    "ShakePadGenerator",
    "AesPadGenerator",
]
