"""Direct (block-cipher) line encryption.

Two roles in the paper:

- §II-B's *direct encryption* baseline — every line AES-encrypted on write
  and decrypted on read, putting the full AES latency on the read critical
  path (which is why CME is preferred for data).
- §III-B1's *metadata encryption* — DeWrite encrypts its metadata region
  with direct encryption so the metadata needs no counters of its own.

The construction is an address-tweaked ECB: each 16-byte block is XORed
with a per-(address, block) tweak before and after AES, so identical
metadata blocks at different addresses produce different ciphertexts (an
ECB-penguin fix) while staying a pure block cipher with no counter state.
"""

from __future__ import annotations

import struct

from repro.crypto.aes import AES128
from repro.crypto.otp import SplitmixPadGenerator


class DirectEncryptionEngine:
    """Tweaked block encryption of whole lines, counter-free.

    By default the block transform is modelled with the fast keyed PRF
    (sufficient for the simulator: deterministic, invertible, diffusing);
    pass ``use_aes=True`` for the real AES-128 data path.
    """

    def __init__(self, key: bytes = b"\x01" * 16, use_aes: bool = False) -> None:
        if len(key) != 16:
            raise ValueError(f"key must be 16 bytes, got {len(key)}")
        self._use_aes = use_aes
        self._aes = AES128(key) if use_aes else None
        # The tweak stream and the (non-AES) mask stream use independent
        # derived keys so the two PRFs never collide.
        self._tweaks = SplitmixPadGenerator(bytes(b ^ 0x5C for b in key))
        self._masks = SplitmixPadGenerator(bytes(b ^ 0x36 for b in key))

    def encrypt(self, plaintext: bytes, address: int) -> bytes:
        """Encrypt a line stored at ``address``."""
        if self._use_aes:
            return self._aes_transform(plaintext, address, encrypt=True)
        return self._mask_transform(plaintext, address)

    def decrypt(self, ciphertext: bytes, address: int) -> bytes:
        """Decrypt a line stored at ``address``."""
        if self._use_aes:
            return self._aes_transform(ciphertext, address, encrypt=False)
        return self._mask_transform(ciphertext, address)

    # -- real AES path -------------------------------------------------------

    def _aes_transform(self, data: bytes, address: int, encrypt: bool) -> bytes:
        if len(data) % 16:
            raise ValueError(f"line length must be a multiple of 16, got {len(data)}")
        out = bytearray()
        for i in range(0, len(data), 16):
            tweak = self._tweaks.pad(address, i // 16, 16)
            block = data[i : i + 16]
            if encrypt:
                block = bytes(a ^ b for a, b in zip(block, tweak))
                block = self._aes.encrypt_block(block)
                block = bytes(a ^ b for a, b in zip(block, tweak))
            else:
                block = bytes(a ^ b for a, b in zip(block, tweak))
                block = self._aes.decrypt_block(block)
                block = bytes(a ^ b for a, b in zip(block, tweak))
            out.extend(block)
        return bytes(out)

    # -- fast simulator path ---------------------------------------------------

    def _mask_transform(self, data: bytes, address: int) -> bytes:
        # An XOR mask keyed by address models a deterministic, diffusing,
        # involutive cipher; adequate because the simulator never relies on
        # direct-encryption ciphertexts being non-malleable, only on their
        # being address-dependent and invertible.
        mask = self._masks.pad(address, 0, len(data))
        n = len(data)
        return (int.from_bytes(data, "little") ^ int.from_bytes(mask, "little")).to_bytes(
            n, "little"
        )
