"""Counter-mode encryption (CME) engine for data lines.

The engine owns no counter *storage* — in DeWrite the per-line counters live
co-located inside the dedup metadata tables (paper §III-C), and in the
traditional secure NVM baseline they live in a dedicated counter table.  The
caller therefore passes the counter explicitly; this module only guarantees
the cryptographic contract:

- ``encrypt(line, address, counter)`` XORs the line with
  ``pad(key, address, counter)``;
- ``decrypt`` is the same XOR (counter mode is an involution), so decryption
  overlaps the NVM read once the counter is cached;
- an optional OTP-reuse detector raises :class:`OtpReuseError` when a
  (address, counter) pair is used to *encrypt* twice — the security
  invariant of §II-B that the test suite exercises.
"""

from __future__ import annotations

from repro.crypto.otp import PadGenerator, ShakePadGenerator


class OtpReuseError(RuntimeError):
    """A one-time pad was about to be reused for encryption.

    Counter-mode security collapses if two plaintexts are XORed with the
    same pad; the engine raises rather than silently producing a broken
    ciphertext.
    """


class CounterModeEngine:
    """Encrypt/decrypt 256 B lines with per-line-counter one-time pads."""

    def __init__(
        self,
        pad_generator: PadGenerator | None = None,
        key: bytes = b"\x00" * 16,
        track_otp_reuse: bool = False,
    ) -> None:
        """Create an engine.

        Args:
            pad_generator: pad source; defaults to the fast SHAKE-128 XOF.
            key: 128-bit key used only if ``pad_generator`` is None.
            track_otp_reuse: when True, remember every (address, counter)
                used for encryption and raise :class:`OtpReuseError` on
                reuse.  Costs memory; intended for tests and small runs.
        """
        self._pads = pad_generator if pad_generator is not None else ShakePadGenerator(key)
        self._track = track_otp_reuse
        self._used: set[tuple[int, int]] = set()
        # Pads are pure functions of (address, counter, length), so repeated
        # XORs against the same triple — dedup verify reads decrypt the same
        # stored lines over and over — can reuse the pad.  Cached as ints
        # (the XOR operand), saving one bytes->int conversion per call.
        # Bounded so a multi-million-line run cannot hold every pad ever
        # generated.
        self._pad_cache: dict[tuple[int, int, int], int] = {}
        self._pad_cache_cap = 8192

    def encrypt(self, plaintext: bytes, address: int, counter: int) -> bytes:
        """Encrypt one line stored at ``address`` under its ``counter``."""
        if self._track:
            token = (address, counter)
            if token in self._used:
                raise OtpReuseError(
                    f"OTP reuse: address {address:#x} counter {counter} already used"
                )
            self._used.add(token)
        return self._xor_pad(plaintext, address, counter)

    def decrypt(self, ciphertext: bytes, address: int, counter: int) -> bytes:
        """Decrypt one line; identical XOR with the same pad."""
        return self._xor_pad(ciphertext, address, counter)

    def pad_int_for(self, address: int, counter: int, nbytes: int) -> int:
        """The one-time pad as a little-endian integer (the XOR operand).

        For callers that compare lines in the integer domain — e.g. the
        dedup verify read, which only needs ``decrypt(stored) == candidate``
        — this skips the two bytes<->int conversions of a full
        :meth:`decrypt`.  Shares the bounded pad cache.
        """
        token = (address, counter, nbytes)
        cache = self._pad_cache
        pad_int = cache.get(token)
        if pad_int is None:
            if len(cache) >= self._pad_cache_cap:
                cache.clear()
            pad_int = int.from_bytes(self._pads.pad(address, counter, nbytes), "little")
            cache[token] = pad_int
        return pad_int

    def _xor_pad(self, data: bytes, address: int, counter: int) -> bytes:
        n = len(data)
        token = (address, counter, n)
        cache = self._pad_cache
        pad_int = cache.get(token)
        if pad_int is None:
            if len(cache) >= self._pad_cache_cap:
                cache.clear()
            pad_int = int.from_bytes(self._pads.pad(address, counter, n), "little")
            cache[token] = pad_int
        return (int.from_bytes(data, "little") ^ pad_int).to_bytes(n, "little")
