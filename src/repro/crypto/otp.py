"""One-time-pad generators for counter-mode encryption.

Counter-mode security requires that each (key, line address, counter) triple
yields a pad that is never reused and looks independent of every other pad
(paper §II-B, Fig. 1).  Two interchangeable generators implement that
contract:

- :class:`AesPadGenerator` — the reference model: AES-128 in counter mode,
  one block per 16 bytes of line, seed = address || counter || block index.
- :class:`SplitmixPadGenerator` — a fast keyed PRF built on splitmix64,
  used by default for multi-million-line simulations.  It preserves the two
  properties the simulator depends on: pad uniqueness per (address, counter)
  and full diffusion (a counter bump rerandomises the whole ciphertext,
  which is exactly what defeats DCW/FNW in Fig. 13).

Both produce pads of any requested length and are deterministic in the key,
so ciphertexts written by one engine instance decrypt in another with the
same key — a tested invariant.
"""

from __future__ import annotations

import struct
from typing import Protocol

from repro.crypto.aes import AES128

_MASK64 = 0xFFFFFFFFFFFFFFFF


class PadGenerator(Protocol):
    """A keyed function (address, counter) -> pad bytes."""

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Return ``length`` pad bytes for the line at ``address`` on its
        ``counter``-th encryption."""
        ...


def _splitmix64(state: int) -> tuple[int, int]:
    """One step of the splitmix64 sequence; returns (new_state, output)."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return state, z


class SplitmixPadGenerator:
    """Fast keyed PRF pad: splitmix64 seeded by (key, address, counter).

    The seed folds the 128-bit key into two 64-bit lanes and mixes in the
    address and counter through one splitmix step each, so nearby addresses
    and consecutive counters land in unrelated stream positions.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"key must be 16 bytes, got {len(key)}")
        self._k0, self._k1 = struct.unpack("<QQ", key)

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Generate ``length`` pseudo-random pad bytes."""
        # Two mixing rounds bind key, address and counter into the seed.
        _, a = _splitmix64((self._k0 ^ address) & _MASK64)
        _, b = _splitmix64((self._k1 ^ counter) & _MASK64)
        state = (a ^ (b * 0x9E3779B97F4A7C15)) & _MASK64
        words = []
        for _ in range((length + 7) // 8):
            state, out = _splitmix64(state)
            words.append(out)
        return struct.pack(f"<{len(words)}Q", *words)[:length]


class AesPadGenerator:
    """Reference pad generator: AES-128 over (address, counter, block index).

    This is the literal Fig. 1 construction — the pad for each 16-byte block
    of a line is the AES encryption of a unique nonce, so pads are provably
    never reused while counters increase monotonically per line.
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Generate ``length`` pad bytes, one AES block per 16 bytes."""
        blocks = []
        for block_index in range((length + 15) // 16):
            nonce = struct.pack("<QQ", address & _MASK64, ((counter << 8) | block_index) & _MASK64)
            blocks.append(self._aes.encrypt_block(nonce))
        return b"".join(blocks)[:length]
