"""One-time-pad generators for counter-mode encryption.

Counter-mode security requires that each (key, line address, counter) triple
yields a pad that is never reused and looks independent of every other pad
(paper §II-B, Fig. 1).  Three interchangeable generators implement that
contract:

- :class:`AesPadGenerator` — the reference model: AES-128 in counter mode,
  one block per 16 bytes of line, seed = address || counter || block index.
- :class:`SplitmixPadGenerator` — a keyed PRF built on splitmix64 with a
  SWAR big-integer kernel, the pure-Python fast path.
- :class:`ShakePadGenerator` — a keyed SHAKE-128 XOF (``hashlib``), the
  default for multi-million-line simulations: the permutation runs in C,
  so a 256 B pad costs ~4x less than the interpreted splitmix kernel.

All preserve the two properties the simulator depends on: pad uniqueness
per (address, counter) and full diffusion (a counter bump rerandomises the
whole ciphertext, which is exactly what defeats DCW/FNW in Fig. 13).  All
produce pads of any requested length and are deterministic in the key, so
ciphertexts written by one engine instance decrypt in another with the
same key — a tested invariant.
"""

from __future__ import annotations

import struct
from hashlib import shake_128
from typing import Protocol

from repro.crypto.aes import AES128

_MASK64 = 0xFFFFFFFFFFFFFFFF


class PadGenerator(Protocol):
    """A keyed function (address, counter) -> pad bytes."""

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Return ``length`` pad bytes for the line at ``address`` on its
        ``counter``-th encryption."""
        ...


_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(state: int) -> tuple[int, int]:
    """One step of the splitmix64 sequence; returns (new_state, output)."""
    state = (state + _GAMMA) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    z ^= z >> 31
    return state, z


# --- SWAR (SIMD-within-a-register) splitmix64 over big-integer lanes ------
#
# A 256 B pad needs 32 consecutive splitmix64 outputs.  The states form an
# arithmetic progression (state_j = seed + (j+1)*gamma mod 2^64), so all 32
# can be packed into 128-bit lanes of ONE Python integer and mixed together:
# multiplying the packed integer by a 64-bit constant multiplies every lane
# (each product < 2^128 stays inside its lane), and the xor-shift steps stay
# lane-local when the shifted value is masked back to the low 64 bits of
# each lane before use.  This turns ~32 interpreted mix steps into 4 big-int
# operations, each executed in C.  The output is bit-identical to the
# scalar loop — a tested invariant.
#
# Per lane count k we precompute:
#   U  — 1 in every lane            (seed * U broadcasts the seed)
#   G  — ((j+1)*gamma) mod 2^64    (the per-lane state increments)
#   LM — the low-64-bit mask of every lane
_LANE_BYTES = 16
_SWAR_MIN_WORDS = 4
_swar_constants_cache: dict[int, tuple[int, int, int]] = {}


def _swar_constants(k: int) -> tuple[int, int, int]:
    constants = _swar_constants_cache.get(k)
    if constants is None:
        unit = 0
        increments = 0
        lane_mask = 0
        for j in range(k):
            shift = 128 * j
            unit |= 1 << shift
            increments |= (((j + 1) * _GAMMA) & _MASK64) << shift
            lane_mask |= _MASK64 << shift
        constants = (unit, increments, lane_mask)
        _swar_constants_cache[k] = constants
    return constants


def _splitmix64_block(state: int, k: int) -> bytes:
    """``k`` consecutive splitmix64 outputs of ``state``, packed little-endian.

    Exactly equivalent to calling :func:`_splitmix64` ``k`` times and packing
    the outputs with ``struct.pack("<kQ", ...)``.
    """
    unit, increments, lane_mask = _swar_constants(k)
    x = (state * unit + increments) & lane_mask
    x = ((x ^ ((x >> 30) & lane_mask)) * _MIX1) & lane_mask
    x = ((x ^ ((x >> 27) & lane_mask)) * _MIX2) & lane_mask
    x ^= (x >> 31) & lane_mask
    # Each lane's low 8 bytes hold one output word; view the buffer as
    # 8-byte cells and take every other cell.  The cast is a raw 8-byte
    # chunking (no integer interpretation), so this is endian-agnostic.
    raw = x.to_bytes(_LANE_BYTES * k, "little")
    return memoryview(raw).cast("Q")[::2].tobytes()


class SplitmixPadGenerator:
    """Fast keyed PRF pad: splitmix64 seeded by (key, address, counter).

    The seed folds the 128-bit key into two 64-bit lanes and mixes in the
    address and counter through one splitmix step each, so nearby addresses
    and consecutive counters land in unrelated stream positions.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"key must be 16 bytes, got {len(key)}")
        self._k0, self._k1 = struct.unpack("<QQ", key)

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Generate ``length`` pseudo-random pad bytes."""
        # Two mixing rounds bind key, address and counter into the seed.
        _, a = _splitmix64((self._k0 ^ address) & _MASK64)
        _, b = _splitmix64((self._k1 ^ counter) & _MASK64)
        state = (a ^ (b * _GAMMA)) & _MASK64
        k = (length + 7) // 8
        if k >= _SWAR_MIN_WORDS:
            block = _splitmix64_block(state, k)
            return block if len(block) == length else block[:length]
        words = []
        for _ in range(k):
            state, out = _splitmix64(state)
            words.append(out)
        return struct.pack(f"<{k}Q", *words)[:length]


class ShakePadGenerator:
    """Keyed SHAKE-128 pad: one XOF call per (address, counter) pair.

    The seed is ``key || address || counter`` (fixed-width little-endian),
    so distinct triples never collide as hash inputs and a one-bit change
    anywhere rerandomises the whole output stream.  Being an XOF, prefixes
    are stable: ``pad(a, c, 16)`` is the first 16 bytes of ``pad(a, c, n)``
    for any larger ``n`` — the same property the splitmix stream has.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError(f"key must be 16 bytes, got {len(key)}")
        self._key = key

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Generate ``length`` pseudo-random pad bytes."""
        seed = self._key + struct.pack("<QQ", address & _MASK64, counter & _MASK64)
        return shake_128(seed).digest(length)


class AesPadGenerator:
    """Reference pad generator: AES-128 over (address, counter, block index).

    This is the literal Fig. 1 construction — the pad for each 16-byte block
    of a line is the AES encryption of a unique nonce, so pads are provably
    never reused while counters increase monotonically per line.
    """

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)

    def pad(self, address: int, counter: int, length: int) -> bytes:
        """Generate ``length`` pad bytes, one AES block per 16 bytes."""
        blocks = []
        for block_index in range((length + 15) // 16):
            nonce = struct.pack("<QQ", address & _MASK64, ((counter << 8) | block_index) & _MASK64)
            blocks.append(self._aes.encrypt_block(nonce))
        return b"".join(blocks)[:length]
