"""Configuration of the DeWrite memory controller.

Groups every knob of §III plus the latency constants of §III-B/IV-A.  The
ablation benchmarks flip the ``enable_*`` switches; everything else defaults
to the paper's configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.persistence import MetadataPersistenceConfig
from repro.hashes.latency import CRC32_MODEL


@dataclass(frozen=True)
class MetadataCacheConfig:
    """Sizing of the on-chip metadata cache (§IV-E2, Fig. 21).

    The paper settles on 512 KB for each of the hash, address-mapping and
    inverted-hash caches plus 128 KB for the FSM cache (1664 KB < the 2 MB
    budget).  Prefetch granularity applies to the three sequentially stored
    tables; the hash table has no locality so its cache holds single entries.
    """

    hash_cache_bytes: int = 512 * 1024
    address_map_cache_bytes: int = 512 * 1024
    inverted_hash_cache_bytes: int = 512 * 1024
    fsm_cache_bytes: int = 128 * 1024
    prefetch_entries: int = 256

    # Per-entry storage costs (paper §IV-E1): 4 B + 1 flag bit for
    # address-map and inverted-hash entries, 9 B per hash entry, 1 bit per
    # FSM entry.
    address_map_entry_bits: int = 33
    inverted_hash_entry_bits: int = 33
    hash_entry_bits: int = 72
    fsm_entry_bits: int = 1

    def __post_init__(self) -> None:
        if self.prefetch_entries <= 0:
            raise ValueError("prefetch granularity must be positive")

    @property
    def hash_cache_entries(self) -> int:
        """Single hash entries the hash cache can hold."""
        return self.hash_cache_bytes * 8 // self.hash_entry_bits

    @property
    def address_map_cache_blocks(self) -> int:
        """Prefetch blocks the address-mapping cache can hold."""
        return self.address_map_cache_bytes * 8 // (
            self.address_map_entry_bits * self.prefetch_entries
        )

    @property
    def inverted_hash_cache_blocks(self) -> int:
        """Prefetch blocks the inverted-hash cache can hold."""
        return self.inverted_hash_cache_bytes * 8 // (
            self.inverted_hash_entry_bits * self.prefetch_entries
        )

    @property
    def fsm_cache_blocks(self) -> int:
        """Prefetch blocks the FSM cache can hold."""
        return self.fsm_cache_bytes * 8 // (self.fsm_entry_bits * self.prefetch_entries)


@dataclass(frozen=True)
class DeWriteConfig:
    """Full controller configuration (paper defaults)."""

    line_size_bytes: int = 256
    counter_bits: int = 28
    reference_cap: int = 255
    history_window: int = 3

    # Fingerprinting scheme.  DeWrite uses CRC-32 plus a verifying read
    # (§III-B1); the traditional-dedup baseline of Table I uses a trusted
    # cryptographic fingerprint (``"sha1"``/``"md5"``, no verify read).
    fingerprint: str = "crc32"
    trust_fingerprint: bool = False
    # Hardware bound on verify reads per detection (collision chains are
    # practically length 1 — Fig. 6 — so 2 covers them with margin).
    max_verify_reads: int = 2

    # Latency constants (ns).
    crc_latency_ns: float = CRC32_MODEL.latency_ns
    aes_latency_ns: float = 96.0
    compare_latency_ns: float = 0.5
    xor_latency_ns: float = 0.5
    # Metadata lines are direct-encrypted, so a metadata-cache miss pays the
    # block-decrypt latency on top of the NVM read (§III-B1).
    metadata_decrypt_ns: float = 96.0

    # Feature switches (ablations).
    enable_prediction: bool = True
    enable_pna: bool = True
    enable_parallel_encryption: bool = True
    enable_colocation: bool = True

    metadata_cache: MetadataCacheConfig = field(default_factory=MetadataCacheConfig)
    # Crash-consistency policy for dirty metadata (paper §V survey).
    persistence: MetadataPersistenceConfig = field(default_factory=MetadataPersistenceConfig)

    def __post_init__(self) -> None:
        if self.history_window < 1:
            raise ValueError("history window must hold at least one outcome")
        if not 1 <= self.reference_cap <= 255:
            raise ValueError("reference cap must fit the 8-bit reference field")
        if self.line_size_bytes <= 0 or self.line_size_bytes % 16:
            raise ValueError("line size must be a positive multiple of 16")
        if self.fingerprint not in ("crc32", "sha1", "md5"):
            raise ValueError(f"unknown fingerprint scheme {self.fingerprint!r}")
        if self.trust_fingerprint and self.fingerprint == "crc32":
            raise ValueError("CRC-32 fingerprints collide and must not be trusted")

    @property
    def fingerprint_latency_ns(self) -> float:
        """Hardware latency of the configured fingerprint engine (Table Ia)."""
        if self.fingerprint == "crc32":
            return self.crc_latency_ns
        from repro.hashes.latency import model_for

        return model_for(self.fingerprint).latency_ns

    def metadata_bits_per_line(self) -> float:
        """Dedup metadata footprint per data line, in bits (§IV-E1).

        Address-map entry + inverted-hash entry + (up to) one hash entry +
        one FSM bit.  With colocation the encryption counters ride in the
        null slots for free; without it they add ``counter_bits`` per line.
        """
        mc = self.metadata_cache
        bits = (
            mc.address_map_entry_bits
            + mc.inverted_hash_entry_bits
            + mc.hash_entry_bits
            + mc.fsm_entry_bits
        )
        if not self.enable_colocation:
            bits += self.counter_bits
        return float(bits)

    def metadata_overhead_fraction(self) -> float:
        """Metadata storage as a fraction of data capacity (≈6.25 %)."""
        return self.metadata_bits_per_line() / (self.line_size_bytes * 8)
