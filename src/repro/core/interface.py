"""Common interface of all memory controllers (DeWrite and baselines).

Every controller in this repository — DeWrite, the traditional secure NVM,
the direct/parallel integration modes, traditional SHA-1 dedup, Silent
Shredder — services the same two requests against the same
:class:`repro.nvm.NvmMainMemory` device, so the system simulator and all
experiments are controller-agnostic.

Controllers are addressed either one request at a time (:meth:`write` /
:meth:`read`) or a batch at a time (:meth:`service_batch`), the latter being
the hot path: the simulator hands the controller an
:class:`~repro.workloads.batch.AccessBatch` plus a
:class:`~repro.core.batching.BatchCursor` and the controller owns the issue
loop, which lets subclasses fuse crypto/hash/dedup work across requests.
The default implementation drives the scalar ``write``/``read`` methods, so
every controller is batch-addressable without opting in.
"""

from __future__ import annotations

import abc
import warnings
from typing import TYPE_CHECKING, NamedTuple

from repro.core.batching import BatchCursor, BatchOutcome
from repro.nvm.memory import NvmMainMemory
from repro.obs.metrics import registry
from repro.obs.stages import NULL_STAGES, StagesLike
from repro.obs.timeline import NULL_TIMELINE, TimelineLike
from repro.obs.trace import NULL_TRACER, TracerLike

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.batch import AccessBatch


class WriteOutcome(NamedTuple):
    """Result of one line-write request as the CPU observes it.

    ``latency_ns`` is arrival-to-persistence: in persistent memory the core
    stalls until the write (or its elimination) completes (§I/§III).

    A NamedTuple rather than a dataclass: one is allocated per request on
    the hot path, and tuple allocation is several times cheaper.
    """

    latency_ns: float
    deduplicated: bool
    complete_ns: float


class ReadOutcome(NamedTuple):
    """Result of one line-read request."""

    latency_ns: float
    data: bytes
    complete_ns: float


class MemoryController(abc.ABC):
    """A secure-NVM memory controller servicing 256 B line requests."""

    def __init__(self, nvm: NvmMainMemory) -> None:
        self.nvm = nvm
        self.line_size = nvm.config.organization.line_size_bytes
        self.tracer: TracerLike = NULL_TRACER
        self.timeline: TimelineLike = NULL_TIMELINE
        self.stages: StagesLike = NULL_STAGES

    # -- observability ----------------------------------------------------------

    def attach_observers(
        self,
        tracer: TracerLike | None = None,
        timeline: TimelineLike | None = None,
        stages: StagesLike | None = None,
    ) -> None:
        """Route this controller's (and its device's) observability streams.

        Any argument may be omitted to leave that stream unchanged.  The
        defaults are the shared no-op :data:`~repro.obs.trace.NULL_TRACER` /
        :data:`~repro.obs.timeline.NULL_TIMELINE` /
        :data:`~repro.obs.stages.NULL_STAGES`, so instrumented paths cost
        one ``enabled`` check until a real observer is attached.
        Subclasses with instrumented internals override
        :meth:`_propagate_observers` to forward the observers to them.

        Observability modes and the batch path: attaching a *tracer* or
        *timeline* records per-request detail, which forces the fused
        ``service_batch`` kernels back onto the scalar loop (counted in
        ``batch.fallback.*``).  Attaching only a *stages* accumulator is
        **summary mode** — the fused kernels feed it with columnar
        per-batch flushes and stay fused.
        """
        if tracer is not None:
            self.tracer = tracer
            self.nvm.tracer = tracer
        if timeline is not None:
            self.timeline = timeline
            self.nvm.timeline = timeline
        if stages is not None:
            self.stages = stages
        self._propagate_observers(self.tracer, self.timeline)

    def _propagate_observers(self, tracer: TracerLike, timeline: TimelineLike) -> None:
        """Hook for subclasses to hand the observers to internal components."""

    def attach_tracer(self, tracer: TracerLike) -> None:
        """Deprecated: use :meth:`attach_observers`."""
        warnings.warn(
            "attach_tracer() is deprecated; use attach_observers(tracer=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.attach_observers(tracer=tracer)

    def attach_timeline(self, timeline: TimelineLike) -> None:
        """Deprecated: use :meth:`attach_observers`."""
        warnings.warn(
            "attach_timeline() is deprecated; use attach_observers(timeline=...)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.attach_observers(timeline=timeline)

    # -- scalar request interface ----------------------------------------------

    @abc.abstractmethod
    def write(self, address: int, data: bytes, arrival_ns: float) -> WriteOutcome:
        """Service a line write arriving at ``arrival_ns``."""

    @abc.abstractmethod
    def read(self, address: int, arrival_ns: float) -> ReadOutcome:
        """Service a line read arriving at ``arrival_ns``."""

    # -- batched request interface ---------------------------------------------

    def service_batch(
        self,
        batch: AccessBatch,
        cursor: BatchCursor,
        max_requests: int | None = None,
    ) -> BatchOutcome:
        """Service up to ``max_requests`` accesses of ``batch`` through ``cursor``.

        Requests are issued in global arrival order (the per-core streams
        are merged by next arrival time, ties broken as the scalar
        simulator loop breaks them), and the cursor's clocks and cycle
        accumulators advance exactly as that loop advances them — this
        equivalence is the contract subclassed kernels must preserve and
        the property suite enforces.

        The base implementation simply drives the scalar :meth:`write` /
        :meth:`read` methods, so tracing, timelines and subclass overrides
        all behave identically to scalar servicing.
        """
        if cursor.active and type(self).service_batch is not MemoryController.service_batch:
            # A fused kernel bailed out to this scalar-driving loop.  The
            # fallback is correct but silent; count why it happened so
            # `repro stats` and the overhead gate can see it.
            if self.tracer.enabled:
                reason = "tracer"
            elif self.timeline.enabled:
                reason = "timeline"
            elif len(cursor.active) > 1:
                reason = "multi_stream"
            else:
                reason = "overridden_scalar"
            registry().counter(f"batch.fallback.{reason}").inc()
        ops = batch.ops
        addresses = batch.addresses
        gaps = batch.gaps
        persistent = batch.persistent
        slots = batch.slots
        payload = batch.payload
        line_size = batch.line_size
        streams = cursor.streams
        positions = cursor.positions
        core_time = cursor.core_time
        active = cursor.active
        npi = cursor.ns_per_instruction
        exposure = cursor.read_stall_exposure
        clock = cursor.clock_ghz
        base_cpi = cursor.base_cpi
        write = self.write
        read = self.read

        instructions = cursor.instructions
        stall_cycles = cursor.stall_cycles
        compute_cycles = cursor.compute_cycles
        issued = reads = writes = deduplicated = 0

        def next_arrival(core: int) -> float:
            return core_time[core] + gaps[streams[core][positions[core]]] * npi

        while active and issued != max_requests:
            if len(active) == 1:
                # Single-stream fast path: with one active core there is
                # nothing to merge, so the per-iteration min()/dict traffic
                # collapses to sequential replay over plain locals.  Every
                # arithmetic operation matches the general path exactly.
                core = next(iter(active))
                stream = streams[core]
                position = positions[core]
                length = len(stream)
                now = core_time[core]
                while position < length and issued != max_requests:
                    index = stream[position]
                    gap = gaps[index]
                    arrival = now + gap * npi
                    instructions += gap
                    compute_cycles += gap * base_cpi
                    if ops[index]:
                        slot = slots[index]
                        outcome = write(
                            addresses[index], payload[slot : slot + line_size], arrival
                        )
                        writes += 1
                        if outcome.deduplicated:
                            deduplicated += 1
                        if persistent[index]:
                            now = outcome.complete_ns
                            stall_cycles += outcome.latency_ns * clock
                        else:
                            now = arrival
                    else:
                        outcome = read(addresses[index], arrival)
                        exposed = outcome.latency_ns * exposure
                        now = arrival + exposed
                        stall_cycles += exposed * clock
                        reads += 1
                    issued += 1
                    position += 1
                positions[core] = position
                core_time[core] = now
                if position >= length:
                    active.discard(core)
                continue
            core = min(active, key=next_arrival)
            stream = streams[core]
            position = positions[core]
            index = stream[position]
            gap = gaps[index]
            arrival = core_time[core] + gap * npi
            instructions += gap
            compute_cycles += gap * base_cpi
            if ops[index]:
                slot = slots[index]
                outcome = write(addresses[index], payload[slot : slot + line_size], arrival)
                writes += 1
                if outcome.deduplicated:
                    deduplicated += 1
                if persistent[index]:
                    core_time[core] = outcome.complete_ns
                    stall_cycles += outcome.latency_ns * clock
                else:
                    core_time[core] = arrival
            else:
                outcome = read(addresses[index], arrival)
                exposed = outcome.latency_ns * exposure
                core_time[core] = arrival + exposed
                stall_cycles += exposed * clock
                reads += 1
            issued += 1
            position += 1
            positions[core] = position
            if position >= len(stream):
                active.discard(core)

        cursor.instructions = instructions
        cursor.stall_cycles = stall_cycles
        cursor.compute_cycles = compute_cycles
        return BatchOutcome(issued, reads, writes, deduplicated)

    # -- helpers ----------------------------------------------------------------

    def _check_line(self, data: bytes) -> None:
        if len(data) != self.line_size:
            raise ValueError(f"line must be {self.line_size} bytes, got {len(data)}")
