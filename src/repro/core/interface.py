"""Common interface of all memory controllers (DeWrite and baselines).

Every controller in this repository — DeWrite, the traditional secure NVM,
the direct/parallel integration modes, traditional SHA-1 dedup, Silent
Shredder — services the same two requests against the same
:class:`repro.nvm.NvmMainMemory` device, so the system simulator and all
experiments are controller-agnostic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.nvm.memory import NvmMainMemory
from repro.obs.timeline import NULL_TIMELINE, TimelineLike
from repro.obs.trace import NULL_TRACER, TracerLike


@dataclass(frozen=True)
class WriteOutcome:
    """Result of one line-write request as the CPU observes it.

    ``latency_ns`` is arrival-to-persistence: in persistent memory the core
    stalls until the write (or its elimination) completes (§I/§III).
    """

    latency_ns: float
    deduplicated: bool
    complete_ns: float


@dataclass(frozen=True)
class ReadOutcome:
    """Result of one line-read request."""

    latency_ns: float
    data: bytes
    complete_ns: float


class MemoryController(abc.ABC):
    """A secure-NVM memory controller servicing 256 B line requests."""

    def __init__(self, nvm: NvmMainMemory) -> None:
        self.nvm = nvm
        self.line_size = nvm.config.organization.line_size_bytes
        self.tracer: TracerLike = NULL_TRACER
        self.timeline: TimelineLike = NULL_TIMELINE

    def attach_tracer(self, tracer: TracerLike) -> None:
        """Route this controller's (and its device's) trace records to ``tracer``.

        The default is the shared no-op :data:`~repro.obs.trace.NULL_TRACER`,
        so instrumented paths cost one ``tracer.enabled`` check until a real
        tracer is attached.  Subclasses with instrumented internals override
        :meth:`_propagate_tracer` to forward the tracer to them.
        """
        self.tracer = tracer
        self.nvm.tracer = tracer
        self._propagate_tracer(tracer)

    def _propagate_tracer(self, tracer: TracerLike) -> None:
        """Hook for subclasses to hand the tracer to internal components."""

    def attach_timeline(self, timeline: TimelineLike) -> None:
        """Route this controller's (and its device's) windowed samples.

        Same null-object economics as :meth:`attach_tracer`: the default
        is the shared :data:`~repro.obs.timeline.NULL_TIMELINE`, so the
        instrumented request paths cost one ``timeline.enabled`` check
        until a real :class:`~repro.obs.timeline.TimelineCollector` is
        attached.
        """
        self.timeline = timeline
        self.nvm.timeline = timeline
        self._propagate_timeline(timeline)

    def _propagate_timeline(self, timeline: TimelineLike) -> None:
        """Hook for subclasses to hand the collector to internal components."""

    @abc.abstractmethod
    def write(self, address: int, data: bytes, arrival_ns: float) -> WriteOutcome:
        """Service a line write arriving at ``arrival_ns``."""

    @abc.abstractmethod
    def read(self, address: int, arrival_ns: float) -> ReadOutcome:
        """Service a line read arriving at ``arrival_ns``."""

    def _check_line(self, data: bytes) -> None:
        if len(data) != self.line_size:
            raise ValueError(f"line must be {self.line_size} bytes, got {len(data)}")
