"""Controller registry: build any memory controller from a string name.

Every evaluation site used to hand-construct its controllers, which meant
the experiment runners, the CLI and the baselines each grew their own
copy of the wiring and no generic machinery (job planner, cache keys,
sweeps) could name a configuration.  This registry is the single factory:

    >>> from repro.core.registry import build_controller
    >>> controller = build_controller("dewrite", nvm, mode="direct")

Registered names (see :func:`available_controllers`):

- ``"dewrite"``            — the paper's predictive controller (§III);
- ``"direct"``             — DeWrite machinery, serial detection → AES (Fig. 3a);
- ``"parallel"``           — DeWrite machinery, always-speculative AES (Fig. 3b);
- ``"secure-nvm"``         — the CME-only baseline (§IV-A);
- ``"traditional-dedup"``  — trusted SHA-1/MD5 in-line dedup (Table I);
- ``"silent-shredder"``    — zero-line elimination only (§V);
- ``"out-of-line"``        — background page dedup, capacity only (§V);
- ``"i-nvmm"``             — hot-data-in-plaintext optimisation (§V).

Builders accept either ready config objects (``config=DeWriteConfig(...)``)
for in-process callers, or plain JSON-shaped keyword options (for example
``metadata_cache={"hash_cache_bytes": 8192, ...}``) so a controller spec
can travel inside a serialised :class:`repro.runner.jobs.JobSpec` to a
worker process or a cache key.

Builders import their controller classes lazily so registering the whole
catalogue does not import every baseline at ``repro.core`` import time
(and cannot create import cycles with :mod:`repro.baselines`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:
    from repro.core.interface import MemoryController
    from repro.nvm.memory import NvmMainMemory

ControllerBuilder = Callable[..., "MemoryController"]

_BUILDERS: dict[str, tuple[ControllerBuilder, str]] = {}


class UnknownControllerError(KeyError):
    """Raised when a controller name is not registered."""


def register_controller(
    name: str,
    builder: ControllerBuilder,
    *,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register ``builder`` under ``name``.

    Args:
        name: the public string name (kebab-case by convention).
        builder: callable ``(nvm, **opts) -> MemoryController``.
        description: one-line summary shown by ``python -m repro list``.
        replace: allow overwriting an existing registration.
    """
    if not replace and name in _BUILDERS:
        raise ValueError(f"controller {name!r} is already registered")
    _BUILDERS[name] = (builder, description)


def available_controllers() -> dict[str, str]:
    """Registered names mapped to their one-line descriptions."""
    return {name: description for name, (_, description) in sorted(_BUILDERS.items())}


def build_controller(name: str, nvm: "NvmMainMemory", **opts: Any) -> "MemoryController":
    """Construct the controller registered under ``name`` on ``nvm``.

    ``tracer=...``, ``timeline=...`` and ``stages=...`` are handled here
    for every registered controller: each is popped before the builder
    runs and attached via
    :meth:`~repro.core.interface.MemoryController.attach_observers`, so any
    caller (the ``trace``/``timeline``/``profile`` CLI verbs, the overhead
    gate, tests) can observe any controller without per-builder wiring.
    All three are in-process objects — they never travel inside serialised
    job specs (the ``simulate`` job kind carries a ``timeline_window_ns``
    parameter instead and builds the collector worker-side).
    """
    tracer = opts.pop("tracer", None)
    timeline = opts.pop("timeline", None)
    stages = opts.pop("stages", None)
    try:
        builder, _ = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise UnknownControllerError(
            f"unknown controller {name!r}; registered: {known}"
        ) from None
    controller = builder(nvm, **opts)
    if tracer is not None or timeline is not None or stages is not None:
        controller.attach_observers(tracer=tracer, timeline=timeline, stages=stages)
    return controller


# ---------------------------------------------------------------------------
# Default catalogue
# ---------------------------------------------------------------------------


def _dewrite_config_from(opts: dict[str, Any]) -> Any:
    """Build a :class:`DeWriteConfig` from JSON-shaped keyword options.

    ``metadata_cache`` may be a plain dict of :class:`MetadataCacheConfig`
    fields and ``persistence`` a plain dict of
    :class:`~repro.core.persistence.MetadataPersistenceConfig` fields (with
    the policy as its string value, e.g. ``{"policy": "periodic_writeback",
    "writeback_interval_ns": 50000.0}``), so both can travel inside a
    serialised job spec; every other key is passed to ``DeWriteConfig``
    directly.  Returns ``None`` when no options are given (controller
    default).
    """
    from repro.core.config import DeWriteConfig, MetadataCacheConfig
    from repro.core.persistence import (
        MetadataPersistenceConfig,
        MetadataPersistencePolicy,
    )

    if not opts:
        return None
    kwargs = dict(opts)
    metadata_cache = kwargs.pop("metadata_cache", None)
    if isinstance(metadata_cache, dict):
        metadata_cache = MetadataCacheConfig(**metadata_cache)
    if metadata_cache is not None:
        kwargs["metadata_cache"] = metadata_cache
    persistence = kwargs.pop("persistence", None)
    if isinstance(persistence, dict):
        fields = dict(persistence)
        policy = fields.pop("policy", None)
        if policy is not None:
            fields["policy"] = MetadataPersistencePolicy(policy)
        persistence = MetadataPersistenceConfig(**fields)
    if persistence is not None:
        kwargs["persistence"] = persistence
    return DeWriteConfig(**kwargs)


def _build_dewrite(
    nvm: "NvmMainMemory",
    mode: str = "predictive",
    config: Any = None,
    cme: Any = None,
    **overrides: Any,
) -> "MemoryController":
    from repro.core.dewrite import DeWriteController

    if config is not None and overrides:
        raise ValueError("pass either a config object or field overrides, not both")
    if config is None:
        config = _dewrite_config_from(overrides)
    return DeWriteController(nvm, config=config, mode=mode, cme=cme)


def _build_direct(nvm: "NvmMainMemory", **opts: Any) -> "MemoryController":
    if "mode" in opts:
        raise ValueError('the "direct" controller fixes mode="direct"')
    return _build_dewrite(nvm, mode="direct", **opts)


def _build_parallel(nvm: "NvmMainMemory", **opts: Any) -> "MemoryController":
    if "mode" in opts:
        raise ValueError('the "parallel" controller fixes mode="parallel"')
    return _build_dewrite(nvm, mode="parallel", **opts)


def _secure_config_from(opts: dict[str, Any]) -> Any:
    from repro.baselines.secure_nvm import SecureNvmConfig

    if not opts:
        return None
    return SecureNvmConfig(**opts)


def _build_secure_nvm(
    nvm: "NvmMainMemory", config: Any = None, cme: Any = None, **overrides: Any
) -> "MemoryController":
    from repro.baselines.secure_nvm import TraditionalSecureNvmController

    if config is not None and overrides:
        raise ValueError("pass either a config object or field overrides, not both")
    if config is None:
        config = _secure_config_from(overrides)
    return TraditionalSecureNvmController(nvm, config=config, cme=cme)


def _build_traditional_dedup(nvm: "NvmMainMemory", **opts: Any) -> "MemoryController":
    from repro.baselines.traditional_dedup import traditional_dedup_controller

    return traditional_dedup_controller(nvm, **opts)


def _build_silent_shredder(
    nvm: "NvmMainMemory", config: Any = None, cme: Any = None, **overrides: Any
) -> "MemoryController":
    from repro.baselines.silent_shredder import SilentShredderController

    if config is not None and overrides:
        raise ValueError("pass either a config object or field overrides, not both")
    if config is None:
        config = _secure_config_from(overrides)
    return SilentShredderController(nvm, config=config, cme=cme)


def _build_out_of_line(
    nvm: "NvmMainMemory",
    config: Any = None,
    cme: Any = None,
    lines_per_page: int = 16,
    scan_interval_writes: int = 256,
    **overrides: Any,
) -> "MemoryController":
    from repro.baselines.out_of_line import OutOfLinePageDedupController

    if config is not None and overrides:
        raise ValueError("pass either a config object or field overrides, not both")
    if config is None:
        config = _secure_config_from(overrides)
    return OutOfLinePageDedupController(
        nvm,
        config=config,
        cme=cme,
        lines_per_page=lines_per_page,
        scan_interval_writes=scan_interval_writes,
    )


def _build_i_nvmm(
    nvm: "NvmMainMemory",
    config: Any = None,
    cme: Any = None,
    hot_set_lines: int = 4096,
    **overrides: Any,
) -> "MemoryController":
    from repro.baselines.i_nvmm import INvmmController

    if config is not None and overrides:
        raise ValueError("pass either a config object or field overrides, not both")
    if config is None:
        config = _secure_config_from(overrides)
    return INvmmController(nvm, config=config, cme=cme, hot_set_lines=hot_set_lines)


register_controller(
    "dewrite", _build_dewrite, description="DeWrite predictive controller (paper SIII)"
)
register_controller(
    "direct", _build_direct, description="direct way: serial detection then AES (Fig. 3a)"
)
register_controller(
    "parallel", _build_parallel, description="parallel way: always-speculative AES (Fig. 3b)"
)
register_controller(
    "secure-nvm", _build_secure_nvm, description="CME-only baseline secure NVM (SIV-A)"
)
register_controller(
    "traditional-dedup",
    _build_traditional_dedup,
    description="trusted SHA-1/MD5 in-line dedup (Table I)",
)
register_controller(
    "silent-shredder",
    _build_silent_shredder,
    description="zero-line write elimination only (SV)",
)
register_controller(
    "out-of-line",
    _build_out_of_line,
    description="background page dedup: capacity, not endurance (SV)",
)
register_controller(
    "i-nvmm", _build_i_nvmm, description="hot data kept plaintext, cold encrypted (SV)"
)
