"""History-window duplication predictor (paper §III-A, Fig. 4).

DeWrite keeps one tiny on-chip window holding the duplication states of the
most recent memory writes — 3 bits in the paper's configuration.  The next
write is predicted duplicate iff the majority of recorded states are
duplicate.  The paper measures ~92.1 % accuracy with a 1-bit window and
~93.6 % with 3 bits, exploiting the strong temporal locality of duplication
states (duplicate and non-duplicate writes arrive in runs).

The prediction steers two mechanisms:

- §III-A parallelism — predicted *non-duplicates* start AES encryption in
  parallel with detection; predicted *duplicates* skip encryption to save
  energy;
- §III-B2 PNA — on a hash-cache miss, only predicted *duplicates* pay the
  in-NVM hash-table query.
"""

from __future__ import annotations

from collections import deque


class HistoryWindowPredictor:
    """Majority vote over the last ``window`` duplication outcomes."""

    def __init__(self, window: int = 3, initial: bool = False) -> None:
        """Create a predictor.

        Args:
            window: number of recent outcomes recorded (3 bits in the paper;
                1 gives the last-outcome predictor of Fig. 4's first series).
            initial: state the window is pre-filled with — ``False``
                (non-duplicate) matches a cold system where nothing is in
                memory to be duplicate of.
        """
        if window < 1:
            raise ValueError("window must hold at least one outcome")
        self._history: deque[bool] = deque([initial] * window, maxlen=window)
        self.predictions = 0
        self.correct = 0

    @property
    def window(self) -> int:
        """Window length in bits."""
        return self._history.maxlen or 0

    def predict(self) -> bool:
        """Predict whether the next write is duplicate (majority vote).

        Ties (possible only with even windows) resolve to the most recent
        outcome, degenerating to the 1-bit predictor.
        """
        dup_votes = sum(self._history)
        total = len(self._history)
        if dup_votes * 2 == total:
            return self._history[-1]
        return dup_votes * 2 > total

    def record(self, was_duplicate: bool) -> None:
        """Push the true outcome of the write that was just serviced."""
        self._history.append(was_duplicate)

    def observe(self, was_duplicate: bool) -> bool:
        """Predict, score the prediction, then record the truth.

        Returns the prediction.  This is the controller's one-call-per-write
        entry point; accuracy statistics accumulate on the instance.
        """
        prediction = self.predict()
        self.predictions += 1
        if prediction == was_duplicate:
            self.correct += 1
        self.record(was_duplicate)
        return prediction

    def complete(self, prediction: bool, was_duplicate: bool) -> None:
        """Score a prediction made earlier with :meth:`predict` and record truth.

        Controllers call :meth:`predict` up front (the prediction steers the
        write path) and this method once the true duplication state is known.
        """
        self.predictions += 1
        if prediction == was_duplicate:
            self.correct += 1
        self.record(was_duplicate)

    @property
    def accuracy(self) -> float:
        """Fraction of scored predictions that matched the outcome."""
        return self.correct / self.predictions if self.predictions else 0.0
