"""Duplication detection and the metadata timing layer.

Two classes:

- :class:`MetadataSystem` glues the four :class:`~repro.core.metadata_cache.
  MetadataCache` instances to the NVM device: a cache miss becomes a timed
  metadata-line read (plus the direct-encryption decrypt latency when it
  blocks the requester), and a dirty eviction becomes a posted metadata-line
  write.  Metadata traffic therefore contends for banks exactly like data
  traffic — which is how the paper's 2.6 % metadata-write overhead and
  >98 % hit rates become measurable.

- :class:`DedupEngine` is the dedup logic of Fig. 5: CRC-32 the incoming
  line (15 ns), look the fingerprint up in the hash cache, optionally fall
  through to the in-NVM hash table (gated by the prediction-based NVM
  access scheme, §III-B2), and confirm each candidate with a timed verify
  read + byte compare, exploiting the NVM read/write asymmetry (§III-B1,
  Table Ib: 15+75+1 ns for a duplicate, 15 ns for a fresh non-duplicate).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.config import DeWriteConfig
from repro.core.metadata_cache import MetadataCache
from repro.core.tables import DedupIndex, MetadataLayout, MetadataTouch, TableName
from repro.crypto.counter_mode import CounterModeEngine
from repro.crypto.otp import SplitmixPadGenerator
from repro.nvm.memory import NvmMainMemory
from repro.obs.timeline import NULL_TIMELINE, TimelineLike
from repro.obs.trace import NULL_TRACER, TracerLike


class MetadataSystem:
    """Timing bridge between the metadata caches and the NVM device."""

    def __init__(
        self,
        config: DeWriteConfig,
        layout: MetadataLayout,
        nvm: NvmMainMemory,
    ) -> None:
        mc = config.metadata_cache
        self.caches: dict[TableName, MetadataCache] = {
            "hash_table": MetadataCache("hash_table", mc.hash_cache_entries, 1),
            "address_map": MetadataCache(
                "address_map", mc.address_map_cache_blocks, mc.prefetch_entries
            ),
            "inverted_hash": MetadataCache(
                "inverted_hash", mc.inverted_hash_cache_blocks, mc.prefetch_entries
            ),
            "fsm": MetadataCache("fsm", mc.fsm_cache_blocks, mc.prefetch_entries),
        }
        self.layout = layout
        self.nvm = nvm
        self.decrypt_ns = config.metadata_decrypt_ns
        self.persistence = config.persistence
        # The persistence config is frozen; under the default battery-backed
        # policy every dirtying access would otherwise pay two enum-property
        # checks in _enforce_persistence for nothing.
        self._persistence_active = (
            config.persistence.is_write_through or config.persistence.is_periodic
        )
        self._last_periodic_flush_ns = 0.0
        self.metadata_reads = 0
        self.metadata_writebacks = 0
        # Metadata lines are direct-encrypted; each writeback rewrites a full
        # diffused line.  The payload generator models that (≈50 % flips).
        self._payloads = SplitmixPadGenerator(b"\xa5" * 16)
        self._payload_version = 0
        self.tracer: TracerLike = NULL_TRACER
        self.timeline: TimelineLike = NULL_TIMELINE
        # (base line, table lines) per table, precomputed: the layout's
        # properties rebuild their dicts on every call, which shows up on
        # the miss/writeback paths.  Same arithmetic as ``nvm_line_for``.
        table_lines = layout.table_lines
        self._line_map: dict[TableName, tuple[int, int]] = {
            name: (layout.table_base(name), table_lines[name]) for name in self.caches
        }
        self._line_size = nvm.config.organization.line_size_bytes

    def access(
        self,
        table: TableName,
        entry_index: int,
        write: bool,
        now_ns: float,
        blocking: bool,
        fetch_on_miss: bool = True,
    ) -> float:
        """Touch one table entry through its cache.

        Returns the latency added to the requester's critical path: zero on
        a hit or when the access is posted (``blocking=False``); the NVM
        read plus metadata-decrypt latency on a blocking miss.  Dirty
        evictions always schedule a posted metadata write.  Creating a
        brand-new entry (``fetch_on_miss=False``) allocates without reading
        NVM — there is nothing to fetch.
        """
        cache = self.caches[table]
        # Fast path: resident block, no timeline observer.  Mirrors the hit
        # arm of MetadataCache.access (same statistics, same LRU motion,
        # same persistence hook) without allocating a CacheAccess.
        blocks = cache._blocks
        block = entry_index // cache.entries_per_block
        if block in blocks and not self.timeline.enabled:
            if fetch_on_miss:
                cache.hits += 1
            blocks.move_to_end(block)
            if write:
                blocks[block] = True
                if self._persistence_active:
                    self._enforce_persistence(table, entry_index, now_ns)
            return 0.0
        result = cache.access(entry_index, write, is_insert=not fetch_on_miss)
        if self.timeline.enabled:
            self.timeline.record_metadata(now_ns, hit=result.hit)
        extra = 0.0
        if not result.hit and fetch_on_miss:
            base, table_lines = self._line_map[table]
            fetched = self.nvm.read_complete_ns(base + result.block % table_lines, now_ns)
            self.metadata_reads += 1
            if blocking:
                extra = (fetched - now_ns) + self.decrypt_ns
            if self.tracer.enabled:
                self.tracer.event(
                    "metadata.miss", sim_ns=now_ns, table=table, blocking=blocking
                )
        if result.evicted_dirty_block is not None:
            self._writeback(table, result.evicted_dirty_block, now_ns)
        if write:
            self._enforce_persistence(table, entry_index, now_ns)
        return extra

    def _enforce_persistence(self, table: TableName, entry_index: int, now_ns: float) -> None:
        """Apply the §V crash-consistency policy to a just-dirtied entry."""
        policy = self.persistence
        if policy.is_write_through:
            cache = self.caches[table]
            self._writeback(table, cache.block_of(entry_index), now_ns)
            cache.mark_clean(entry_index)
        elif policy.is_periodic and (
            now_ns - self._last_periodic_flush_ns >= policy.writeback_interval_ns
        ):
            self._last_periodic_flush_ns = now_ns
            for name, cache in self.caches.items():
                for block in cache.dirty_blocks():
                    self._writeback(name, block, now_ns)
                cache.clean_all()

    @property
    def last_periodic_flush_ns(self) -> float:
        """Sim time of the most recent periodic full flush (0.0 before any).

        Only meaningful under ``PERIODIC_WRITEBACK``; the fault-injection
        crash model (:mod:`repro.faults`) reads it to bound what a crash
        can strand in the dirty caches.
        """
        return self._last_periodic_flush_ns

    def replay(self, touches: list[MetadataTouch], now_ns: float) -> None:
        """Post a batch of functional-update touches (non-blocking)."""
        caches = self.caches
        timeline_off = not self.timeline.enabled
        persistence = self._persistence_active
        access = self.access
        for table, index, write, insert in touches:
            # Resident-block fast path, inlined from access(): posted
            # touches are the hottest metadata traffic, and the call
            # overhead alone is measurable on dedup-heavy traces.
            cache = caches[table]
            blocks = cache._blocks
            block = index // cache.entries_per_block
            if timeline_off and block in blocks:
                if not insert:
                    cache.hits += 1
                blocks.move_to_end(block)
                if write:
                    blocks[block] = True
                    if persistence:
                        self._enforce_persistence(table, index, now_ns)
                continue
            access(table, index, write, now_ns, False, not insert)

    def flush(self, now_ns: float) -> int:
        """Write back every dirty block (shutdown / end of run)."""
        count = 0
        for table, cache in self.caches.items():
            for block in cache.flush():
                self._writeback(table, block, now_ns)
                count += 1
        return count

    def hit_rates(self) -> dict[str, float]:
        """Per-cache hit rates (Fig. 21)."""
        return {name: cache.hit_rate for name, cache in self.caches.items()}

    def reset_stats(self) -> None:
        """Zero cache/traffic counters after warmup; contents stay resident."""
        for cache in self.caches.values():
            cache.reset_stats()
        self.metadata_reads = 0
        self.metadata_writebacks = 0

    def verify(self) -> None:
        """Check every metadata cache plus the traffic counters.

        Raises ``ValueError`` on the first structural breach; called by the
        runtime invariant pass after every simulated request batch.
        """
        for cache in self.caches.values():
            cache.verify()
        if self.metadata_reads < 0 or self.metadata_writebacks < 0:
            raise ValueError("negative metadata traffic counter")

    def _writeback(self, table: TableName, block: int, now_ns: float) -> None:
        base, table_lines = self._line_map[table]
        line = base + block % table_lines
        self._payload_version += 1
        payload = self._payloads.pad(line, self._payload_version, self._line_size)
        self.nvm.write(line, payload, now_ns)
        self.metadata_writebacks += 1


class DetectionResult(NamedTuple):
    """Outcome of one duplication detection.

    A NamedTuple rather than a dataclass: one is allocated per write on
    the hot path.  Every constructor passes ``touches`` explicitly (the
    ``()`` default is shared, never mutated).
    """

    duplicate_target: int | None
    done_ns: float
    verify_reads: int = 0
    collisions: int = 0
    capped_rejects: int = 0
    pna_skipped: bool = False
    hash_hit_in_cache: bool = False
    queried_nvm_hash_table: bool = False
    touches: "list[MetadataTouch] | tuple[MetadataTouch, ...]" = ()

    @property
    def is_duplicate(self) -> bool:
        """Whether a dedup target was confirmed."""
        return self.duplicate_target is not None


class DedupEngine:
    """The dedup logic block of Fig. 5."""

    def __init__(
        self,
        config: DeWriteConfig,
        index: DedupIndex,
        metadata: MetadataSystem,
        nvm: NvmMainMemory,
        cme: CounterModeEngine,
    ) -> None:
        self.config = config
        self.index = index
        self.metadata = metadata
        self.nvm = nvm
        self.cme = cme
        self.tracer: TracerLike = NULL_TRACER
        # Hot-path constants hoisted from the frozen config.
        self._fp_ns = config.fingerprint_latency_ns
        self._compare_ns = config.compare_latency_ns
        self._enable_pna = config.enable_pna
        self._trust_fingerprint = config.trust_fingerprint
        self._reference_cap = config.reference_cap
        self._max_verify_reads = config.max_verify_reads
        self._hash_cache = metadata.caches["hash_table"]
        # The hash cache holds individual entries (entries_per_block == 1),
        # so detect() can probe/refresh it with plain dict operations.
        self._hash_blocks = self._hash_cache._blocks
        self._nvm_line_size = nvm.config.organization.line_size_bytes

    def detect(
        self, plaintext: bytes, crc: int, arrival_ns: float, predicted_duplicate: bool
    ) -> DetectionResult:
        """Run duplication detection for one incoming line write.

        Timeline: CRC latency, then the hash-cache lookup (free), then — on
        a miss — either the PNA short-circuit (predicted non-duplicate:
        declare unique immediately) or a blocking in-NVM hash-table query,
        then one verify read + compare per surviving candidate.
        """
        now = arrival_ns + self._fp_ns
        touches: list[MetadataTouch] = []

        hash_blocks = self._hash_blocks
        cached = crc in hash_blocks
        queried_nvm = False
        if cached:
            # Refresh LRU/hit bookkeeping; guaranteed hit (inlined
            # MetadataCache.touch_hit for the 1-entry-per-block hash cache).
            self._hash_cache.hits += 1
            hash_blocks.move_to_end(crc)
        else:
            if self._enable_pna and not predicted_duplicate:
                # PNA: skip the expensive in-NVM query; declare non-duplicate.
                return DetectionResult(
                    duplicate_target=None,
                    done_ns=now,
                    pna_skipped=True,
                    touches=touches,
                )
            now += self.metadata.access("hash_table", crc, write=False, now_ns=now, blocking=True)
            queried_nvm = True

        verify_reads = 0
        collisions = 0
        capped = 0
        target: int | None = None
        # Newest entries first: when a highly referenced line saturates its
        # 8-bit reference (§III-B2), the freshest copy of the same content
        # is the live dedup target, so it must be checked first.  Saturated
        # entries are skipped without a read — they can never be targets.
        candidates = []
        entry = self.index.candidate_entry(crc)
        if entry:
            for physical, reference in reversed(entry.items()):
                if reference >= self._reference_cap:
                    capped += 1
                    continue
                candidates.append((physical, reference))
                if len(candidates) >= self._max_verify_reads:
                    break

        if self._trust_fingerprint:
            # Traditional dedup (Table Ib): the cryptographic fingerprint is
            # trusted, so no verifying read — match means duplicate.
            if candidates:
                target = candidates[0][0]
            return DetectionResult(
                duplicate_target=target,
                done_ns=now,
                capped_rejects=capped,
                hash_hit_in_cache=cached,
                queried_nvm_hash_table=queried_nvm,
                touches=touches,
            )

        if candidates:
            n = len(plaintext)
            full_line = n == self._nvm_line_size
            if full_line:
                plaintext_int = int.from_bytes(plaintext, "little")
            nvm = self.nvm
            read_done = nvm.read_complete_ns
            peek_int = nvm.peek_int
            peek_counter = self.index.peek_counter
            pad_int_for = self.cme.pad_int_for
            add_dedup_op = nvm.energy.add_dedup_op
        for physical, reference in candidates:
            # Verify read: the asymmetric-latency trade of §III-B1.  The OTP
            # for the comparison overlaps the array read (Table Ib prices a
            # confirmed duplicate at hash + read + compare = 91 ns), and its
            # energy is part of the dedup logic, not the AES write path.
            # trace=False: the verify read's interval lives inside the
            # enclosing write.dedup span; a device-level nvm.read span per
            # candidate would dominate the trace on dedup-heavy workloads.
            complete = read_done(physical, now, trace=False)
            verify_reads += 1
            counter = peek_counter(physical)
            # Compare in the integer domain: stored ^ pad == plaintext is
            # decrypt(stored) == plaintext for equal-length lines, minus two
            # bytes<->int conversions.  Stored lines are always one full
            # line, so an off-size probe plaintext can never match.
            matched = (
                full_line
                and peek_int(physical) ^ pad_int_for(physical, counter, n) == plaintext_int
            )
            add_dedup_op()
            now = complete + self._compare_ns
            # Only the anomalous case gets an event: a verify read that
            # fails to match is a CRC collision worth flagging per-candidate,
            # while the common confirmed-duplicate case is already fully
            # described by the enclosing write.dedup span's verify_reads /
            # duplicate attrs (and a per-candidate event there costs ~17 %
            # of all trace records on dedup-heavy workloads).
            if not matched and self.tracer.enabled:
                self.tracer.event(
                    "dedup.verify_read", sim_ns=now, candidate=physical, matched=False
                )
            if matched:
                target = physical
                break
            collisions += 1

        return DetectionResult(
            duplicate_target=target,
            done_ns=now,
            verify_reads=verify_reads,
            collisions=collisions,
            capped_rejects=capped,
            pna_skipped=False,
            hash_hit_in_cache=cached,
            queried_nvm_hash_table=queried_nvm,
            touches=touches,
        )

    def truth_has_duplicate(self, plaintext: bytes, crc: int) -> bool:
        """Ground-truth duplicate check (statistics only, no timing).

        Used to count duplicates the PNA short-circuit missed (§IV-B's
        1.5 %).  Bypasses caches and reads the device functionally.
        """
        for physical, reference in self.index.candidates(crc):
            if reference >= self.config.reference_cap:
                continue
            counter = self.index.peek_counter(physical)
            stored_plain = self.cme.decrypt(self.nvm.peek(physical), physical, counter)
            if stored_plain == plaintext:
                return True
        return False
