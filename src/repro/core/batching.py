"""Batch servicing state shared by the simulator and the controllers.

The batched contract is: the *simulator* owns trace splitting and the CPU
stall model parameters, a :class:`BatchCursor` carries the replay state
(per-core position and local time, cycle accumulators) across
``service_batch`` calls, and the *controller* owns the issue loop so it can
fuse crypto/hash/dedup work across the requests of one batch.

Correctness bar (tested property): driving a cursor through any
controller's ``service_batch`` — default loop or fused kernel — produces
the same floating-point state evolution as the scalar
:meth:`SystemSimulator.run <repro.system.simulator.SystemSimulator>` loop,
request for request, so reports are byte-identical.

The cursor replays requests in *global arrival order* via the same
``min(active, key=next_arrival)`` merge as the scalar loop (including its
tie-breaking, which follows the set's iteration order), because bank
occupancy makes request order causally significant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.batch import AccessBatch


class BatchOutcome(NamedTuple):
    """What one ``service_batch`` call issued."""

    serviced: int
    reads: int
    writes: int
    deduplicated: int


class BatchCursor:
    """Replay state of one batch across ``service_batch`` calls.

    Mirrors the scalar simulator loop's locals exactly: per-core index
    streams (trace order), per-core positions and local clocks, and the
    instruction/cycle accumulators the report is built from.
    """

    __slots__ = (
        "batch",
        "streams",
        "positions",
        "core_time",
        "active",
        "instructions",
        "stall_cycles",
        "compute_cycles",
        "ns_per_instruction",
        "read_stall_exposure",
        "clock_ghz",
        "base_cpi",
    )

    def __init__(
        self,
        batch: AccessBatch,
        *,
        ns_per_instruction: float,
        read_stall_exposure: float,
        clock_ghz: float,
        base_cpi: float,
    ) -> None:
        # Same construction as the scalar loop: per-core streams in trace
        # order, then the active set — the set's element history determines
        # min()'s tie-breaking, so it must be built identically.
        streams: dict[int, list[int]] = {}
        cores = batch.cores
        for index in range(len(batch)):
            core = cores[index]
            stream = streams.get(core)
            if stream is None:
                streams[core] = stream = []
            stream.append(index)
        self.batch = batch
        self.streams = streams
        self.positions = {core: 0 for core in streams}
        self.core_time = {core: 0.0 for core in streams}
        self.active = {core for core, stream in streams.items() if stream}
        self.instructions = 0
        self.stall_cycles = 0.0
        self.compute_cycles = 0.0
        self.ns_per_instruction = ns_per_instruction
        self.read_stall_exposure = read_stall_exposure
        self.clock_ghz = clock_ghz
        self.base_cpi = base_cpi

    @property
    def done(self) -> bool:
        """Whether every access of the batch has been serviced."""
        return not self.active

    @property
    def serviced(self) -> int:
        """Accesses issued so far."""
        return sum(self.positions.values())

    def makespan_ns(self) -> float:
        """Latest per-core local time (the run's makespan once done)."""
        return max(self.core_time.values(), default=0.0)
