"""Metadata-colocation accounting (paper §III-C, §IV-E1).

The placement logic itself lives in
:meth:`repro.core.tables.DedupIndex.counter_slot`; this module computes the
storage-overhead arithmetic the paper reports:

- DeWrite's dedup tables cost ≈6.25 % of data capacity
  ((4 B + 4 B + ≤8 B + 3 bit) per 256 B line);
- colocation makes the 28-bit per-line encryption counters free by parking
  them in the guaranteed-null slot of either the address-mapping or the
  inverted-hash entry;
- DEUCE, the main competing scheme, pays 6.25 % in word-modified flags plus
  28 bits/line of counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import DeWriteConfig
from repro.core.tables import DedupIndex


@dataclass(frozen=True)
class StorageOverhead:
    """Metadata storage cost of one scheme, normalised per data line."""

    scheme: str
    bits_per_line: float
    line_bits: int

    @property
    def fraction(self) -> float:
        """Metadata bits as a fraction of data bits (§IV-E1's metric).

        Raises :class:`ValueError` on a non-positive line size rather than
        letting a bare ``ZeroDivisionError`` escape.
        """
        if self.line_bits <= 0:
            raise ValueError(f"line_bits must be positive, got {self.line_bits}")
        return self.bits_per_line / self.line_bits


def dewrite_overhead(config: DeWriteConfig | None = None) -> StorageOverhead:
    """DeWrite's metadata overhead under its active colocation setting."""
    cfg = config if config is not None else DeWriteConfig()
    return StorageOverhead(
        scheme="DeWrite" if cfg.enable_colocation else "DeWrite (no colocation)",
        bits_per_line=cfg.metadata_bits_per_line(),
        line_bits=cfg.line_size_bytes * 8,
    )


def deuce_overhead(line_size_bytes: int = 256, word_bits: int = 16, counter_bits: int = 28) -> StorageOverhead:
    """DEUCE's overhead: one modified-flag bit per word + per-line counter."""
    line_bits = line_size_bytes * 8
    flag_bits = line_bits / word_bits
    return StorageOverhead(
        scheme="DEUCE",
        bits_per_line=flag_bits + counter_bits,
        line_bits=line_bits,
    )


def counter_mode_overhead(line_size_bytes: int = 256, counter_bits: int = 28) -> StorageOverhead:
    """Plain counter-mode encryption: just the per-line counters."""
    return StorageOverhead(
        scheme="Counter-mode encryption",
        bits_per_line=float(counter_bits),
        line_bits=line_size_bytes * 8,
    )


@dataclass(frozen=True)
class ColocationReport:
    """How the live counters of a run were placed (§III-C in action)."""

    in_address_map_slots: int
    in_inverted_hash_slots: int
    in_overflow: int

    @property
    def total(self) -> int:
        """Counters placed in total."""
        return self.in_address_map_slots + self.in_inverted_hash_slots + self.in_overflow

    @property
    def overflow_fraction(self) -> float:
        """Fraction that could not be colocated (the paper assumes 0)."""
        return self.in_overflow / self.total if self.total else 0.0


def audit_colocation(index: DedupIndex) -> ColocationReport:
    """Classify every live counter's resting place in a dedup index."""
    in_map = in_inv = overflow = 0
    for physical in index._counters:  # noqa: SLF001 - audit is a friend of the index
        slot = index.counter_slot(physical)
        if slot == "address_map":
            in_map += 1
        elif slot == "inverted_hash":
            in_inv += 1
        else:
            overflow += 1
    return ColocationReport(
        in_address_map_slots=in_map,
        in_inverted_hash_slots=in_inv,
        in_overflow=overflow,
    )
