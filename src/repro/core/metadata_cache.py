"""On-chip metadata cache (paper §III-B2, Fig. 21).

Secure-NVM designs already carry a write-back counter cache in the memory
controller; DeWrite reuses it to buffer the hot entries of all four dedup
tables.  We model four logical caches (hash, address-map, inverted-hash,
FSM) sharing the 2 MB budget:

- the three *sequentially stored* tables cache fixed-size **prefetch
  blocks** — one NVM access loads ``prefetch_entries`` consecutive entries,
  exploiting the address locality §III-B2 describes;
- the **hash cache** holds individual entries (hash values have no
  locality to prefetch).

The cache only models *presence and dirtiness*; table contents always live
in the functional :class:`repro.core.tables.DedupIndex`, so there is no
coherence problem to get wrong.  A miss costs the caller an NVM metadata
read (plus the direct-encryption decrypt latency); evicting a dirty block
costs a posted NVM metadata write — the source of the ~2.6 % extra writes
§IV-B reports.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import NamedTuple


class CacheAccess(NamedTuple):
    """Outcome of one cache access.

    A NamedTuple rather than a dataclass: one is allocated per metadata
    touch on the hot path.
    """

    hit: bool
    block: int
    evicted_dirty_block: int | None = None


class MetadataCache:
    """LRU, write-back, write-allocate cache over table entries."""

    def __init__(self, name: str, capacity_blocks: int, entries_per_block: int = 1) -> None:
        """Create a cache.

        Args:
            name: label for reports ("hash", "address_map", ...).
            capacity_blocks: how many blocks fit (0 disables caching — every
                access misses, nothing is retained).
            entries_per_block: prefetch granularity; entry index // this
                value is the block index.
        """
        if capacity_blocks < 0:
            raise ValueError("capacity must be non-negative")
        if entries_per_block < 1:
            raise ValueError("entries_per_block must be at least 1")
        self.name = name
        self.capacity_blocks = capacity_blocks
        self.entries_per_block = entries_per_block
        self._blocks: OrderedDict[int, bool] = OrderedDict()  # block -> dirty
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    def block_of(self, entry_index: int) -> int:
        """Block an entry index falls into."""
        return entry_index // self.entries_per_block

    def probe(self, entry_index: int) -> bool:
        """Whether the entry's block is resident, with no side effects.

        Used by the PNA scheme, which must know if the hash entry is cached
        before deciding whether to pay the in-NVM query on a miss.
        """
        return self.block_of(entry_index) in self._blocks

    def access(self, entry_index: int, write: bool, is_insert: bool = False) -> CacheAccess:
        """Touch one entry; allocate its block on miss.

        Returns whether it hit and, when the allocation evicted a dirty
        block, that block's index (the caller schedules its writeback).
        ``is_insert`` marks the creation of a brand-new entry: the
        allocation is not a failed lookup, so it is excluded from the
        hit/miss statistics (Fig. 21 measures query hit rates).
        """
        block = entry_index // self.entries_per_block
        blocks = self._blocks
        if block in blocks:
            if not is_insert:
                self.hits += 1
            blocks.move_to_end(block)
            if write:
                blocks[block] = True
            return CacheAccess(True, block)

        if not is_insert:
            self.misses += 1
        evicted: int | None = None
        if self.capacity_blocks == 0:
            # Degenerate cache: nothing retained; a write goes straight out.
            if write:
                self.writebacks += 1
                evicted = block
            return CacheAccess(hit=False, block=block, evicted_dirty_block=evicted)

        if len(self._blocks) >= self.capacity_blocks:
            victim, dirty = self._blocks.popitem(last=False)
            if dirty:
                self.writebacks += 1
                evicted = victim
        self._blocks[block] = write
        return CacheAccess(hit=False, block=block, evicted_dirty_block=evicted)

    def touch_hit(self, entry_index: int, write: bool = False) -> None:
        """Refresh a **known-resident** entry: LRU position, dirty bit, hit count.

        Semantically identical to :meth:`access` when the entry's block is
        resident (same statistics, same LRU motion) but without allocating
        a :class:`CacheAccess` — the batched hot paths pair it with
        :meth:`probe`.  Calling it for a non-resident entry is a bug; the
        ``move_to_end`` raises ``KeyError`` rather than corrupting state.
        """
        self.hits += 1
        block = entry_index // self.entries_per_block
        self._blocks.move_to_end(block)
        if write:
            self._blocks[block] = True

    def flush(self) -> list[int]:
        """Write back and drop every dirty block (e.g. at shutdown).

        Returns the dirty block indices in LRU order.
        """
        dirty = [block for block, is_dirty in self._blocks.items() if is_dirty]
        self.writebacks += len(dirty)
        self._blocks.clear()
        return dirty

    def mark_clean(self, entry_index: int) -> None:
        """Clear the dirty bit of an entry's block (write-through policy:
        the update has already reached NVM, so eviction owes nothing)."""
        block = self.block_of(entry_index)
        if block in self._blocks:
            self._blocks[block] = False

    def dirty_blocks(self) -> list[int]:
        """Currently dirty blocks (in LRU order), without side effects."""
        return [block for block, dirty in self._blocks.items() if dirty]

    def clean_all(self) -> None:
        """Clear every dirty bit (after a bulk writeback)."""
        for block in self._blocks:
            self._blocks[block] = False

    def reset_stats(self) -> None:
        """Zero hit/miss/writeback counters, keeping contents resident.

        Used after a warmup phase so hit rates reflect steady state, the
        way the paper warms caches for 10 M instructions before measuring.
        """
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def accesses(self) -> int:
        """Total accesses."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction (Fig. 21's y-axis)."""
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def resident_blocks(self) -> int:
        """Blocks currently cached."""
        return len(self._blocks)

    def stats_dict(self) -> dict[str, float]:
        """JSON-shaped statistics snapshot (manifests, metrics export)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writebacks": self.writebacks,
            "hit_rate": self.hit_rate,
            "resident_blocks": len(self._blocks),
        }

    def verify(self) -> None:
        """Check the cache's structural invariants; raises ``ValueError``.

        Capacity is never exceeded (a zero-capacity cache retains nothing)
        and the statistics counters are non-negative — the checks the
        runtime invariant pass (:mod:`repro.check.invariants`) runs after
        every simulated request batch.
        """
        if self.capacity_blocks == 0:
            if self._blocks:
                raise ValueError(
                    f"cache {self.name!r}: zero capacity but {len(self._blocks)} resident blocks"
                )
        elif len(self._blocks) > self.capacity_blocks:
            raise ValueError(
                f"cache {self.name!r}: {len(self._blocks)} resident blocks exceed "
                f"capacity {self.capacity_blocks}"
            )
        if self.hits < 0 or self.misses < 0 or self.writebacks < 0:
            raise ValueError(f"cache {self.name!r}: negative statistics counter")
