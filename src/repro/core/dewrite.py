"""The DeWrite memory controller (paper §III, Figs. 5/10/11).

Write path: predict the duplication state from the 3-bit history window
(§III-A); run the dedup logic (§III-B); for predicted non-duplicates start
counter-mode encryption *in parallel* with detection, for predicted
duplicates skip encryption until detection says otherwise.  A confirmed
duplicate cancels the NVM write and only updates metadata; a unique line is
encrypted under its destination line's bumped counter and written through
the banked NVM.  All metadata updates ride the write-back metadata cache.

Read path: address-mapping lookup (possibly redirected to a deduplicated
line), counter fetch, NVM read with the OTP generated in parallel, XOR.

The same class also implements the paper's two strawman integration modes
(Fig. 3): ``mode="direct"`` always serialises detection before encryption,
``mode="parallel"`` always encrypts concurrently; ``mode="predictive"`` is
DeWrite.  Figs. 15 and 20 compare the three.
"""

from __future__ import annotations

import hashlib
from typing import Literal

from repro.core.batching import BatchOutcome
from repro.core.config import DeWriteConfig
from repro.core.dedup_engine import DedupEngine, MetadataSystem
from repro.core.interface import MemoryController, ReadOutcome, WriteOutcome
from repro.core.predictor import HistoryWindowPredictor
from repro.core.stats import DeWriteStats
from repro.core.tables import DedupIndex, MetadataLayout, MetadataTouch
from repro.crypto.counter_mode import CounterModeEngine
from repro.hashes.crc32 import line_fingerprint
from repro.nvm.memory import NvmMainMemory
from repro.obs.timeline import TimelineLike
from repro.obs.trace import TracerLike

IntegrationMode = Literal["predictive", "direct", "parallel"]


class DeWriteController(MemoryController):
    """Secure NVM memory controller with in-line cache-line deduplication."""

    def __init__(
        self,
        nvm: NvmMainMemory,
        config: DeWriteConfig | None = None,
        mode: IntegrationMode = "predictive",
        cme: CounterModeEngine | None = None,
    ) -> None:
        super().__init__(nvm)
        if mode not in ("predictive", "direct", "parallel"):
            raise ValueError(f"unknown integration mode {mode!r}")
        self.config = config if config is not None else DeWriteConfig()
        if self.config.line_size_bytes != self.line_size:
            raise ValueError(
                f"controller line size {self.config.line_size_bytes} != "
                f"device line size {self.line_size}"
            )
        self.mode = mode
        mc = self.config.metadata_cache
        org = nvm.config.organization
        self.layout = MetadataLayout(
            total_lines=org.total_lines,
            line_size_bytes=org.line_size_bytes,
            address_map_entry_bits=mc.address_map_entry_bits,
            inverted_hash_entry_bits=mc.inverted_hash_entry_bits,
            hash_entry_bits=mc.hash_entry_bits,
            fsm_entry_bits=mc.fsm_entry_bits,
        )
        self.index = DedupIndex(
            total_lines=self.layout.data_lines, reference_cap=self.config.reference_cap
        )
        self.metadata = MetadataSystem(self.config, self.layout, nvm)
        self.cme = cme if cme is not None else CounterModeEngine()
        self.engine = DedupEngine(self.config, self.index, self.metadata, nvm, self.cme)
        self.predictor = HistoryWindowPredictor(window=self.config.history_window)
        self.stats = DeWriteStats()
        # Hot-path constants: pure functions of the frozen config/layout,
        # hoisted out of the per-request paths.
        self._data_lines = self.layout.data_lines
        self._aes_ns = self.config.aes_latency_ns
        self._xor_ns = self.config.xor_latency_ns
        self._use_crc32 = self.config.fingerprint == "crc32"
        self._hash_ctor = (
            None
            if self._use_crc32
            else getattr(hashlib, self.config.fingerprint, None)
        )

    # -- write path (Fig. 10) ------------------------------------------------

    def write(self, address: int, data: bytes, arrival_ns: float) -> WriteOutcome:
        """Service one line write."""
        self._check_line(data)
        self._check_data_address(address)
        stats = self.stats
        stats.writes_requested += 1

        predicted_dup = self._predict()
        crc = self._fingerprint(data)
        detection = self.engine.detect(data, crc, arrival_ns, predicted_dup)
        self.nvm.energy.add_dedup_op()
        tracer = self.tracer
        if tracer.enabled:
            hash_done = arrival_ns + self.config.fingerprint_latency_ns
            tracer.span(
                "write.hash", arrival_ns, hash_done, fingerprint=self.config.fingerprint
            )
            tracer.span(
                "write.dedup",
                hash_done,
                detection.done_ns,
                duplicate=detection.is_duplicate,
                verify_reads=detection.verify_reads,
                pna_skipped=detection.pna_skipped,
            )
        if self.stages.enabled:
            hash_done = arrival_ns + self.config.fingerprint_latency_ns
            self.stages.record("write.hash", hash_done - arrival_ns)
            self.stages.record("write.dedup", detection.done_ns - hash_done)
        stats.verify_reads += detection.verify_reads
        stats.crc_collisions += detection.collisions
        stats.capped_reference_rejects += detection.capped_rejects
        if detection.verify_reads:
            stats.hash_matches += 1
        if detection.pna_skipped and self.engine.truth_has_duplicate(data, crc):
            stats.missed_duplicates_pna += 1

        if detection.is_duplicate:
            outcome = self._commit_duplicate(address, detection, predicted_dup, arrival_ns)
        else:
            outcome = self._commit_unique(address, data, crc, detection, predicted_dup, arrival_ns)

        self._score_prediction(predicted_dup, outcome.deduplicated)
        stats.write_latency.add(outcome.latency_ns)
        self._sync_metadata_stats()
        if self.timeline.enabled:
            self.timeline.record_write(
                arrival_ns,
                deduplicated=outcome.deduplicated,
                latency_ns=outcome.latency_ns,
            )
        if tracer.enabled:
            tracer.span(
                "write",
                arrival_ns,
                outcome.complete_ns,
                deduplicated=outcome.deduplicated,
                predicted_dup=predicted_dup,
            )
        if self.stages.enabled:
            self.stages.record("write", outcome.complete_ns - arrival_ns)
        return outcome

    def _commit_duplicate(
        self,
        address: int,
        detection,
        predicted_dup: bool,
        arrival_ns: float,
    ) -> WriteOutcome:
        """Cancel the write; record the address mapping (§III-B2)."""
        stats = self.stats
        stats.writes_deduplicated += 1
        touches: list[MetadataTouch] = list(detection.touches)
        self.index.apply_duplicate(address, detection.duplicate_target, touches)
        done = detection.done_ns
        self.metadata.replay(touches, done)
        if self._encrypted_in_parallel(predicted_dup):
            # The speculative encryption was wasted: energy only (§III-A).
            self.nvm.energy.add_aes_line()
            stats.wasted_encryptions += 1
            if self.tracer.enabled:
                self.tracer.span(
                    "write.crypto",
                    arrival_ns,
                    arrival_ns + self.config.aes_latency_ns,
                    wasted=True,
                )
            if self.stages.enabled:
                self.stages.record(
                    "write.crypto", arrival_ns + self.config.aes_latency_ns - arrival_ns
                )
        return WriteOutcome(
            latency_ns=done - arrival_ns, deduplicated=True, complete_ns=done
        )

    def _commit_unique(
        self,
        address: int,
        data: bytes,
        crc: int,
        detection,
        predicted_dup: bool,
        arrival_ns: float,
    ) -> WriteOutcome:
        """Encrypt and write a non-duplicate line."""
        stats = self.stats
        stats.writes_stored += 1
        touches: list[MetadataTouch] = list(detection.touches)
        dest = self.index.apply_unique(address, crc, touches)
        counter = self.index.bump_counter(dest, touches)
        ciphertext = self.cme.encrypt(data, dest, counter)
        self.nvm.energy.add_aes_line()

        parallel_crypto = self._encrypted_in_parallel(predicted_dup)
        if parallel_crypto:
            # Encryption started at arrival, concurrently with detection;
            # the write issues once both have finished.
            crypto_start = arrival_ns
            issue = max(arrival_ns + self._aes_ns, detection.done_ns)
        else:
            # Serial: detection first, then AES (the direct way / a
            # predicted-duplicate misprediction).
            crypto_start = detection.done_ns
            issue = detection.done_ns + self._aes_ns
            if self.mode == "predictive" and predicted_dup:
                stats.serialized_detections += 1

        write = self.nvm.write(dest, ciphertext, issue)
        self.metadata.replay(touches, write.complete_ns)
        if self.tracer.enabled:
            self.tracer.span(
                "write.crypto",
                crypto_start,
                crypto_start + self.config.aes_latency_ns,
                parallel=parallel_crypto,
            )
            self.tracer.span(
                "write.nvm", issue, write.complete_ns, dest=dest, wait_ns=write.wait_ns
            )
        if self.stages.enabled:
            self.stages.record(
                "write.crypto", crypto_start + self.config.aes_latency_ns - crypto_start
            )
            self.stages.record("write.nvm", write.complete_ns - issue)
        return WriteOutcome(
            latency_ns=write.complete_ns - arrival_ns,
            deduplicated=False,
            complete_ns=write.complete_ns,
        )

    # -- read path (Fig. 11) ---------------------------------------------------

    def read(self, address: int, arrival_ns: float) -> ReadOutcome:
        """Service one line read."""
        self._check_data_address(address)
        stats = self.stats
        stats.reads_requested += 1
        now = arrival_ns

        # Address-mapping lookup is on the critical path (§IV-C2).
        now += self.metadata.access("address_map", address, write=False, now_ns=now, blocking=True)
        physical = self.index.physical_of(address)

        if physical is None:
            # Never-written line: the array read happens regardless; the
            # device returns the erased (all-zero) pattern.
            issue = now
            read = self.nvm.read(address, now)
            now = read.complete_ns + self._xor_ns
            data = bytes(self.line_size)
        else:
            if physical != address:
                stats.reads_redirected += 1
            # Counter fetch so the OTP overlaps the array read (Fig. 1).
            slot = self.index.counter_slot(physical)
            table = "address_map" if slot == "overflow" else slot
            now += self.metadata.access(table, physical, write=False, now_ns=now, blocking=True)
            counter = self.index.peek_counter(physical)
            issue = now
            read = self.nvm.read(physical, now)
            self.nvm.energy.add_aes_line()  # OTP generation for decryption
            now = read.complete_ns + self._xor_ns
            data = self.cme.decrypt(read.data, physical, counter)

        latency = now - arrival_ns
        stats.read_latency.add(latency)
        self._sync_metadata_stats()
        if self.timeline.enabled:
            self.timeline.record_read(arrival_ns, latency_ns=latency)
        tracer = self.tracer
        if tracer.enabled:
            redirected = physical is not None and physical != address
            tracer.span("read.metadata", arrival_ns, issue, redirected=redirected)
            tracer.span("read.nvm", issue, read.complete_ns, wait_ns=read.wait_ns)
            tracer.span(
                "read.crypto", read.complete_ns, now, decrypted=physical is not None
            )
            tracer.span("read", arrival_ns, now, redirected=redirected)
        stages = self.stages
        if stages.enabled:
            stages.record("read.metadata", issue - arrival_ns)
            stages.record("read.nvm", read.complete_ns - issue)
            stages.record("read.crypto", now - read.complete_ns)
            stages.record("read", now - arrival_ns)
        return ReadOutcome(latency_ns=latency, data=data, complete_ns=now)

    # -- batched request interface ---------------------------------------------

    def service_batch(self, batch, cursor, max_requests=None):
        """Fused single-stream write/read kernel (byte-identical to scalar).

        Inlines the scalar :meth:`write` / :meth:`read` pipelines into the
        issue loop with every per-request allocation (Write/ReadOutcome,
        latency-accumulator calls, per-request stats syncs) hoisted into
        locals that are written back once per batch.  Float arithmetic is
        performed in exactly the scalar order, so reports are bit-identical
        — the property suite enforces this per controller.

        Falls back to the generic driver whenever per-request effects are
        observable (tracer/timeline attached), the scalar methods are
        overridden, or more than one core stream is active (the fused loop
        services a single arrival-ordered stream).  A stage accumulator
        (summary mode) does *not* force the fallback: the kernel collects
        per-stage durations columnar and flushes them per batch, producing
        the same per-stage sums the scalar trace spans would aggregate to.
        """
        cls = type(self)
        if (
            cls.write is not DeWriteController.write
            or cls.read is not DeWriteController.read
            or self.tracer.enabled
            or self.timeline.enabled
            or len(cursor.active) != 1
        ):
            return super().service_batch(batch, cursor, max_requests)

        ops = batch.ops
        addresses = batch.addresses
        gaps = batch.gaps
        persistent = batch.persistent
        slots = batch.slots
        payload = batch.payload
        line_size = batch.line_size
        npi = cursor.ns_per_instruction
        exposure = cursor.read_stall_exposure
        clock = cursor.clock_ghz
        base_cpi = cursor.base_cpi

        instructions = cursor.instructions
        stall_cycles = cursor.stall_cycles
        compute_cycles = cursor.compute_cycles
        issued = reads = writes = deduplicated = 0

        # Controller internals, hoisted once per batch.
        stats = self.stats
        engine = self.engine
        detect = engine.detect
        truth_has_duplicate = engine.truth_has_duplicate
        energy = self.nvm.energy
        add_dedup_op = energy.add_dedup_op
        add_aes_line = energy.add_aes_line
        index = self.index
        apply_duplicate = index.apply_duplicate
        physical_of = index.physical_of
        counter_slot = index.counter_slot
        replay = self.metadata.replay
        metadata_access = self.metadata.access
        commit_unique = self._commit_unique
        nvm_read_done = self.nvm.read_complete_ns
        enable_prediction = self.config.enable_prediction
        predict = self.predictor.predict
        score = self.predictor.complete
        use_crc32 = self._use_crc32
        slow_fingerprint = self._fingerprint
        xor_ns = self._xor_ns
        data_lines = self._data_lines
        is_direct = self.mode == "direct"
        is_parallel = self.mode == "parallel"
        par_enc = self.config.enable_parallel_encryption
        aes_ns = self._aes_ns
        fp_ns = self.config.fingerprint_latency_ns

        # Summary-mode stage accounting: durations are collected into
        # plain lists (request order) and flushed once per batch.  The
        # write.crypto/write.nvm samples of unique writes are recorded by
        # _commit_unique itself, so the wasted-encryption sample below
        # also records directly to keep that stage's sample order scalar.
        stages = self.stages
        stage_on = stages.enabled
        stage_record = stages.record
        st_whash: list[float] = []
        st_wdedup: list[float] = []
        st_write: list[float] = []
        st_rmeta: list[float] = []
        st_rnvm: list[float] = []
        st_rcrypto: list[float] = []
        st_read: list[float] = []

        # Counter batching: plain integers, written back after the loop.
        writes_requested = stats.writes_requested
        writes_deduplicated = stats.writes_deduplicated
        verify_reads_total = stats.verify_reads
        crc_collisions = stats.crc_collisions
        capped_rejects = stats.capped_reference_rejects
        hash_matches = stats.hash_matches
        missed_pna = stats.missed_duplicates_pna
        wasted_encryptions = stats.wasted_encryptions
        reads_requested = stats.reads_requested
        reads_redirected = stats.reads_redirected
        wl = stats.write_latency
        wl_total = wl.total_ns
        wl_count = wl.count
        wl_max = wl.max_ns
        wl_min = wl.min_ns
        rl = stats.read_latency
        rl_total = rl.total_ns
        rl_count = rl.count
        rl_max = rl.max_ns
        rl_min = rl.min_ns

        core = next(iter(cursor.active))
        stream = cursor.streams[core]
        position = cursor.positions[core]
        length = len(stream)
        now = cursor.core_time[core]

        while position < length and issued != max_requests:
            req = stream[position]
            gap = gaps[req]
            arrival = now + gap * npi
            instructions += gap
            compute_cycles += gap * base_cpi
            address = addresses[req]
            if ops[req]:
                # ---- inlined write() ------------------------------------
                slot = slots[req]
                line = payload[slot : slot + line_size]
                if len(line) != line_size:
                    self._check_line(line)
                if not 0 <= address < data_lines:
                    self._check_data_address(address)
                writes_requested += 1
                predicted = predict() if enable_prediction else False
                crc = line_fingerprint(line) if use_crc32 else slow_fingerprint(line)
                detection = detect(line, crc, arrival, predicted)
                add_dedup_op()
                v = detection.verify_reads
                if v:
                    verify_reads_total += v
                    hash_matches += 1
                    crc_collisions += detection.collisions
                capped_rejects += detection.capped_rejects
                if detection.pna_skipped and truth_has_duplicate(line, crc):
                    missed_pna += 1
                if stage_on:
                    hash_done = arrival + fp_ns
                    st_whash.append(hash_done - arrival)
                    st_wdedup.append(detection.done_ns - hash_done)
                target = detection.duplicate_target
                if target is not None:
                    # ---- inlined _commit_duplicate() --------------------
                    writes_deduplicated += 1
                    touches = list(detection.touches)
                    apply_duplicate(address, target, touches)
                    complete = detection.done_ns
                    replay(touches, complete)
                    if not is_direct and (
                        is_parallel or (par_enc and not predicted)
                    ):
                        add_aes_line()
                        wasted_encryptions += 1
                        if stage_on:
                            stage_record("write.crypto", arrival + aes_ns - arrival)
                    latency = complete - arrival
                    dedup = True
                    deduplicated += 1
                else:
                    outcome = commit_unique(
                        address, line, crc, detection, predicted, arrival
                    )
                    latency = outcome.latency_ns
                    complete = outcome.complete_ns
                    dedup = False
                if enable_prediction:
                    score(predicted, dedup)
                if stage_on:
                    st_write.append(complete - arrival)
                wl_total += latency
                wl_count += 1
                if latency > wl_max:
                    wl_max = latency
                if wl_count == 1 or latency < wl_min:
                    wl_min = latency
                writes += 1
                if persistent[req]:
                    now = complete
                    stall_cycles += latency * clock
                else:
                    now = arrival
            else:
                # ---- inlined read() -------------------------------------
                # The issue loop discards ReadOutcome.data, so the plaintext
                # reconstruction (OTP decrypt / zero-line materialisation)
                # is skipped; its timing surrogates (metadata access, array
                # read, AES energy, xor latency) are all still charged.
                if not 0 <= address < data_lines:
                    self._check_data_address(address)
                reads_requested += 1
                rnow = arrival + metadata_access(
                    "address_map", address, False, arrival, True
                )
                physical = physical_of(address)
                if physical is None:
                    issue = rnow
                    rc = nvm_read_done(address, rnow)
                    rnow = rc + xor_ns
                else:
                    if physical != address:
                        reads_redirected += 1
                    slot_table = counter_slot(physical)
                    if slot_table == "overflow":
                        slot_table = "address_map"
                    rnow += metadata_access(slot_table, physical, False, rnow, True)
                    issue = rnow
                    rc = nvm_read_done(physical, rnow)
                    rnow = rc + xor_ns
                    add_aes_line()
                if stage_on:
                    st_rmeta.append(issue - arrival)
                    st_rnvm.append(rc - issue)
                    st_rcrypto.append(rnow - rc)
                    st_read.append(rnow - arrival)
                latency = rnow - arrival
                rl_total += latency
                rl_count += 1
                if latency > rl_max:
                    rl_max = latency
                if rl_count == 1 or latency < rl_min:
                    rl_min = latency
                exposed = latency * exposure
                now = arrival + exposed
                stall_cycles += exposed * clock
                reads += 1
            issued += 1
            position += 1

        # Write the batched counters and accumulators back.
        stats.writes_requested = writes_requested
        stats.writes_deduplicated = writes_deduplicated
        stats.verify_reads = verify_reads_total
        stats.crc_collisions = crc_collisions
        stats.capped_reference_rejects = capped_rejects
        stats.hash_matches = hash_matches
        stats.missed_duplicates_pna = missed_pna
        stats.wasted_encryptions = wasted_encryptions
        stats.reads_requested = reads_requested
        stats.reads_redirected = reads_redirected
        wl.total_ns = wl_total
        wl.count = wl_count
        wl.max_ns = wl_max
        wl.min_ns = wl_min
        rl.total_ns = rl_total
        rl.count = rl_count
        rl.max_ns = rl_max
        rl.min_ns = rl_min
        if enable_prediction:
            stats.predictions = self.predictor.predictions
            stats.correct_predictions = self.predictor.correct
        self._sync_metadata_stats()
        if stage_on:
            record_many = stages.record_many
            record_many("write.hash", st_whash)
            record_many("write.dedup", st_wdedup)
            record_many("write", st_write)
            record_many("read.metadata", st_rmeta)
            record_many("read.nvm", st_rnvm)
            record_many("read.crypto", st_rcrypto)
            record_many("read", st_read)

        cursor.positions[core] = position
        cursor.core_time[core] = now
        if position >= length:
            cursor.active.discard(core)
        cursor.instructions = instructions
        cursor.stall_cycles = stall_cycles
        cursor.compute_cycles = compute_cycles
        return BatchOutcome(issued, reads, writes, deduplicated)

    # -- maintenance -----------------------------------------------------------

    def flush_metadata(self, now_ns: float = 0.0) -> int:
        """Force all dirty metadata back to NVM; returns lines written."""
        flushed = self.metadata.flush(now_ns)
        self._sync_metadata_stats()
        return flushed

    def check_invariants(self) -> None:
        """Assert the dedup index is internally consistent (testing aid)."""
        self.index.check_invariants()

    # -- internals -----------------------------------------------------------

    def _propagate_observers(self, tracer: TracerLike, timeline: TimelineLike) -> None:
        self.metadata.tracer = tracer
        self.engine.tracer = tracer
        self.metadata.timeline = timeline

    def _fingerprint(self, data: bytes) -> int:
        """Line fingerprint under the configured scheme, as an integer key.

        The cryptographic paths use the stdlib engines for speed; the
        from-scratch implementations in :mod:`repro.hashes` are asserted
        bit-identical to them by the test suite.
        """
        if self._use_crc32:
            return line_fingerprint(data)
        ctor = self._hash_ctor
        digest = (
            ctor(data).digest()
            if ctor is not None
            else hashlib.new(self.config.fingerprint, data).digest()
        )
        return int.from_bytes(digest, "big")

    def _predict(self) -> bool:
        """Duplication-state prediction steering PNA (all modes use it)."""
        if not self.config.enable_prediction:
            return False
        return self.predictor.predict()

    def _encrypted_in_parallel(self, predicted_dup: bool) -> bool:
        """Whether encryption ran concurrently with detection (§III-A).

        The integration mode decides: the direct way is always serial, the
        parallel way always speculates, DeWrite speculates only on writes
        predicted non-duplicate.
        """
        if self.mode == "direct":
            return False
        if self.mode == "parallel":
            return True
        return self.config.enable_parallel_encryption and not predicted_dup

    def _score_prediction(self, predicted_dup: bool, was_duplicate: bool) -> None:
        if self.config.enable_prediction:
            self.predictor.complete(predicted_dup, was_duplicate)
            self.stats.predictions = self.predictor.predictions
            self.stats.correct_predictions = self.predictor.correct

    def _sync_metadata_stats(self) -> None:
        self.stats.metadata_reads = self.metadata.metadata_reads
        self.stats.metadata_writebacks = self.metadata.metadata_writebacks

    def _check_data_address(self, address: int) -> None:
        if not 0 <= address < self._data_lines:
            raise IndexError(
                f"data line {address} out of range [0, {self._data_lines})"
            )
