"""Statistics gathered by the DeWrite controller.

One counter object feeds every figure: write-reduction (Fig. 12), missed
duplicates and metadata-eviction writes (§IV-B's 1.5 % + 2.6 %), prediction
accuracy (Fig. 4), collision rate (Fig. 6), reference saturation (Fig. 7),
latency sums (Figs. 14–16) and energy (via the NVM account).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class LatencyAccumulator:
    """Mean/min/max tracker for one latency population."""

    total_ns: float = 0.0
    count: int = 0
    max_ns: float = 0.0
    min_ns: float = 0.0

    def add(self, latency_ns: float) -> None:
        """Record one observation."""
        self.total_ns += latency_ns
        self.count += 1
        if latency_ns > self.max_ns:
            self.max_ns = latency_ns
        if self.count == 1 or latency_ns < self.min_ns:
            self.min_ns = latency_ns

    @property
    def mean_ns(self) -> float:
        """Average latency, 0 when empty."""
        return self.total_ns / self.count if self.count else 0.0

    def reset(self) -> None:
        """Zero the accumulator (new measurement phase)."""
        self.total_ns = 0.0
        self.count = 0
        self.max_ns = 0.0
        self.min_ns = 0.0

    def to_dict(self) -> dict[str, float]:
        """Lossless JSON-shaped snapshot (cache blobs, worker transport)."""
        return {
            "total_ns": self.total_ns,
            "count": self.count,
            "max_ns": self.max_ns,
            "min_ns": self.min_ns,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, float]) -> "LatencyAccumulator":
        """Rebuild an accumulator from :meth:`to_dict` output.

        ``min_ns`` is absent from snapshots cached before it existed; those
        rebuild with the empty-accumulator default of 0.0.
        """
        return cls(
            total_ns=float(payload["total_ns"]),
            count=int(payload["count"]),
            max_ns=float(payload["max_ns"]),
            min_ns=float(payload.get("min_ns", 0.0)),
        )


@dataclass
class DeWriteStats:
    """Event counters of one controller run."""

    # Write-path outcomes.
    writes_requested: int = 0
    writes_deduplicated: int = 0
    writes_stored: int = 0

    # Why potential duplicates were not eliminated.
    missed_duplicates_pna: int = 0
    capped_reference_rejects: int = 0

    # Detection internals.
    hash_matches: int = 0
    verify_reads: int = 0
    crc_collisions: int = 0  # hash matched, byte compare failed

    # Prediction (mirrors the predictor's own counters for convenience).
    predictions: int = 0
    correct_predictions: int = 0
    wasted_encryptions: int = 0  # predicted non-dup, was dup (energy cost)
    serialized_detections: int = 0  # predicted dup, was non-dup (latency cost)

    # Metadata traffic.
    metadata_reads: int = 0
    metadata_writebacks: int = 0

    # Read path.
    reads_requested: int = 0
    reads_redirected: int = 0  # served from a deduplicated (remapped) line

    # Latency populations.
    write_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    read_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)

    def reset(self) -> None:
        """Zero every counter (start of a measured phase after warmup).

        The simlint SIM004 rule checks that every stats field a controller
        mutates is both declared above and re-zeroed here, so a new counter
        cannot silently leak warmup state into measurement.
        """
        self.writes_requested = 0
        self.writes_deduplicated = 0
        self.writes_stored = 0
        self.missed_duplicates_pna = 0
        self.capped_reference_rejects = 0
        self.hash_matches = 0
        self.verify_reads = 0
        self.crc_collisions = 0
        self.predictions = 0
        self.correct_predictions = 0
        self.wasted_encryptions = 0
        self.serialized_detections = 0
        self.metadata_reads = 0
        self.metadata_writebacks = 0
        self.reads_requested = 0
        self.reads_redirected = 0
        self.write_latency.reset()
        self.read_latency.reset()

    @property
    def write_reduction(self) -> float:
        """Fraction of requested line writes eliminated (Fig. 12's metric)."""
        if not self.writes_requested:
            return 0.0
        return self.writes_deduplicated / self.writes_requested

    @property
    def prediction_accuracy(self) -> float:
        """Fraction of duplication-state predictions that were right (Fig. 4)."""
        if not self.predictions:
            return 0.0
        return self.correct_predictions / self.predictions

    @property
    def collision_rate(self) -> float:
        """CRC matches that failed the byte compare, per write (Fig. 6)."""
        if not self.writes_requested:
            return 0.0
        return self.crc_collisions / self.writes_requested

    _COUNTER_FIELDS = (
        "writes_requested",
        "writes_deduplicated",
        "writes_stored",
        "missed_duplicates_pna",
        "capped_reference_rejects",
        "hash_matches",
        "verify_reads",
        "crc_collisions",
        "predictions",
        "correct_predictions",
        "wasted_encryptions",
        "serialized_detections",
        "metadata_reads",
        "metadata_writebacks",
        "reads_requested",
        "reads_redirected",
    )

    def to_dict(self) -> dict[str, Any]:
        """Lossless JSON-shaped snapshot of every counter and accumulator.

        Unlike :meth:`as_dict` (a flat summary with derived ratios), this
        round-trips bit-for-bit through :meth:`from_dict`, which the result
        cache and worker transport rely on.
        """
        payload: dict[str, Any] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS
        }
        payload["write_latency"] = self.write_latency.to_dict()
        payload["read_latency"] = self.read_latency.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DeWriteStats":
        """Rebuild a stats object from :meth:`to_dict` output."""
        stats = cls(**{name: int(payload[name]) for name in cls._COUNTER_FIELDS})
        stats.write_latency = LatencyAccumulator.from_dict(payload["write_latency"])
        stats.read_latency = LatencyAccumulator.from_dict(payload["read_latency"])
        return stats

    def as_dict(self) -> dict[str, float]:
        """Flat summary for reports."""
        return {
            "writes_requested": self.writes_requested,
            "writes_deduplicated": self.writes_deduplicated,
            "writes_stored": self.writes_stored,
            "write_reduction": self.write_reduction,
            "missed_duplicates_pna": self.missed_duplicates_pna,
            "capped_reference_rejects": self.capped_reference_rejects,
            "crc_collisions": self.crc_collisions,
            "collision_rate": self.collision_rate,
            "prediction_accuracy": self.prediction_accuracy,
            "wasted_encryptions": self.wasted_encryptions,
            "serialized_detections": self.serialized_detections,
            "metadata_reads": self.metadata_reads,
            "metadata_writebacks": self.metadata_writebacks,
            "reads_requested": self.reads_requested,
            "reads_redirected": self.reads_redirected,
            "mean_write_latency_ns": self.write_latency.mean_ns,
            "mean_read_latency_ns": self.read_latency.mean_ns,
        }
