"""DeWrite core: the paper's contribution.

The public entry point is :class:`DeWriteController` — a drop-in secure-NVM
memory controller that deduplicates line writes in-line (§III-B), overlaps
deduplication with counter-mode encryption under a history-window predictor
(§III-A), and colocates the encryption counters inside the dedup metadata
(§III-C).  The supporting pieces (predictor, tables, caches, engine) are
exported for experiments and ablations.
"""

from repro.core.config import DeWriteConfig, MetadataCacheConfig
from repro.core.colocation import (
    ColocationReport,
    StorageOverhead,
    audit_colocation,
    counter_mode_overhead,
    deuce_overhead,
    dewrite_overhead,
)
from repro.core.dedup_engine import DedupEngine, DetectionResult, MetadataSystem
from repro.core.dewrite import DeWriteController, IntegrationMode
from repro.core.interface import MemoryController, ReadOutcome, WriteOutcome
from repro.core.metadata_cache import CacheAccess, MetadataCache
from repro.core.persistence import MetadataPersistenceConfig, MetadataPersistencePolicy
from repro.core.predictor import HistoryWindowPredictor
from repro.core.stats import DeWriteStats, LatencyAccumulator
from repro.core.tables import (
    DedupIndex,
    DedupIndexError,
    MetadataLayout,
    MetadataTouch,
)

__all__ = [
    "DeWriteController",
    "IntegrationMode",
    "DeWriteConfig",
    "MetadataCacheConfig",
    "MemoryController",
    "WriteOutcome",
    "ReadOutcome",
    "HistoryWindowPredictor",
    "MetadataPersistenceConfig",
    "MetadataPersistencePolicy",
    "DedupEngine",
    "DetectionResult",
    "MetadataSystem",
    "MetadataCache",
    "CacheAccess",
    "DedupIndex",
    "DedupIndexError",
    "MetadataLayout",
    "MetadataTouch",
    "DeWriteStats",
    "LatencyAccumulator",
    "StorageOverhead",
    "ColocationReport",
    "dewrite_overhead",
    "deuce_overhead",
    "counter_mode_overhead",
    "audit_colocation",
]
