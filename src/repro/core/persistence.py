"""Metadata persistence policies (paper §V, related work).

The metadata cache is write-back, so a power failure could strand dirty
counter/dedup state.  §V surveys three remedies, all compatible with
DeWrite; this module implements them as pluggable policies:

- ``BATTERY_BACKED`` — Silent Shredder's answer: a battery (or ADR domain)
  guarantees the dirty cache drains on failure.  No extra runtime traffic;
  this is the paper's (and this repo's) default.
- ``WRITE_THROUGH`` — SecPM's answer: every metadata update is written to
  NVM immediately.  Crash-consistent with zero recovery work, at the price
  of extra metadata writes.
- ``PERIODIC_WRITEBACK`` — the Liu et al. ``counter_cache_writeback()``
  primitive: software flushes the dirty metadata every ``interval_ns``,
  bounding the vulnerability window without per-update traffic.

The policy is enforced by :class:`repro.core.dedup_engine.MetadataSystem`;
:meth:`MetadataPersistenceConfig.vulnerability_window_ns` quantifies the
crash-exposure each policy leaves, which the ablation benchmark reports.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass


class MetadataPersistencePolicy(enum.Enum):
    """How dirty metadata-cache state survives a power failure."""

    BATTERY_BACKED = "battery_backed"
    WRITE_THROUGH = "write_through"
    PERIODIC_WRITEBACK = "periodic_writeback"


@dataclass(frozen=True)
class MetadataPersistenceConfig:
    """Policy plus its single knob."""

    policy: MetadataPersistencePolicy = MetadataPersistencePolicy.BATTERY_BACKED
    writeback_interval_ns: float = 100_000.0  # PERIODIC_WRITEBACK only

    def __post_init__(self) -> None:
        if self.writeback_interval_ns <= 0:
            raise ValueError("writeback interval must be positive")

    def vulnerability_window_ns(self) -> float:
        """Worst-case age of metadata that a crash could lose.

        Battery-backed and write-through lose nothing; periodic writeback
        can lose up to one interval.
        """
        if self.policy is MetadataPersistencePolicy.PERIODIC_WRITEBACK:
            return self.writeback_interval_ns
        return 0.0

    def durable_horizon_ns(self, crash_ns: float) -> float:
        """Sim time up to which metadata updates survive a crash at ``crash_ns``.

        Battery-backed (the dirty cache drains on failure) and write-through
        (every update already reached NVM) lose nothing: the horizon is the
        crash instant itself.  Periodic writeback persists at the idealised
        software-flush boundaries ``n x interval``, so only updates up to the
        last completed boundary survive — everything younger sits inside the
        :meth:`vulnerability_window_ns` and is discarded by the crash model
        (:mod:`repro.faults`).
        """
        if crash_ns < 0:
            raise ValueError(f"crash time must be non-negative, got {crash_ns}")
        if self.policy is MetadataPersistencePolicy.PERIODIC_WRITEBACK:
            return math.floor(crash_ns / self.writeback_interval_ns) * self.writeback_interval_ns
        return crash_ns

    @property
    def is_write_through(self) -> bool:
        """Whether every metadata update must reach NVM immediately."""
        return self.policy is MetadataPersistencePolicy.WRITE_THROUGH

    @property
    def is_periodic(self) -> bool:
        """Whether a timed flush loop is active."""
        return self.policy is MetadataPersistencePolicy.PERIODIC_WRITEBACK
