"""DeWrite's four deduplication data structures (paper §III-B2).

The controller separates *function* from *timing*: this module is the purely
functional state machine over the four tables —

- **address mapping table**: logical line -> physical line holding its data
  (many-to-one once lines deduplicate);
- **hash table**: CRC-32 -> {physical line: 8-bit reference count}, the
  duplication index (collision chains allowed, references saturate at 255);
- **inverted hash table**: physical line -> CRC of its stored content, used
  to clean stale hashes on rewrite;
- **free space management (FSM) table**: 1 bit per line, free/used.

Every mutating method appends :class:`MetadataTouch` records naming the
table entries it read or wrote; the controller replays those through the
metadata cache to charge timing, so the functional core stays trivially
testable (the property tests drive it directly).

Counters for counter-mode encryption are kept per *physical* line and never
reset (pad-uniqueness invariant, §II-B); where each counter physically
resides — the null slot of the address-mapping entry, the null slot of the
inverted-hash entry, or the rare overflow region — is the colocation scheme
of §III-C, implemented in :meth:`DedupIndex.counter_slot`.

One gap in the paper is patched here and counted: §III-C claims one of the
two slots of line X is always null, but when logical X is deduplicated
*and* physical X was reallocated to hold another line's data, both slots
are occupied.  Those counters go to a small overflow store
(``overflow_counters`` statistic tracks how rare this is).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Literal, NamedTuple

from repro.containers import PagedCounterStore

TableName = Literal["address_map", "inverted_hash", "hash_table", "fsm"]

TABLE_NAMES: tuple[TableName, ...] = ("address_map", "inverted_hash", "hash_table", "fsm")


class MetadataTouch(NamedTuple):
    """One access to a metadata table entry (for the timing layer).

    ``insert`` marks the creation of a brand-new hash entry: there is
    nothing to fetch from NVM, so a cache miss allocates without a read.

    A NamedTuple rather than a dataclass: several are allocated per write
    on the hot path.
    """

    table: TableName
    index: int
    write: bool
    insert: bool = False


class DedupIndexError(RuntimeError):
    """Internal invariant of the dedup index was violated."""


class DedupIndex:
    """Functional state of all four tables plus the colocated counters."""

    def __init__(self, total_lines: int, reference_cap: int = 255) -> None:
        if total_lines <= 0:
            raise ValueError("total_lines must be positive")
        if reference_cap < 1:
            raise ValueError("reference cap must be at least 1")
        self.total_lines = total_lines
        self.reference_cap = reference_cap

        self._mapping: dict[int, int] = {}  # logical -> physical (written lines only)
        self._stored: dict[int, int] = {}  # physical -> crc of live content
        self._hash_table: dict[int, dict[int, int]] = {}  # crc -> {physical: ref}
        # physical -> write counter, array-backed (8 B per touched line,
        # no boxed ints): counters are written once per stored line and
        # monotonically grow, exactly the dense-page access pattern
        # PagedCounterStore is built for.
        self._counters = PagedCounterStore()

        # Freed physical lines are recycled LIFO; fresh allocations grow
        # downward from the top of the device so they stay clear of the
        # logical addresses applications touch first.
        self._free_stack: list[int] = []
        self._next_fresh = total_lines - 1

        self.relocations = 0
        self.pinned_lines = 0  # entries whose reference saturated at the cap

    # -- queries ---------------------------------------------------------

    def locate(self, logical: int, touches: list[MetadataTouch]) -> int | None:
        """Physical line holding ``logical``'s data, or None if never written."""
        touches.append(MetadataTouch("address_map", logical, write=False))
        return self._mapping.get(logical)

    def is_written(self, logical: int) -> bool:
        """Whether the logical line has ever been written."""
        return logical in self._mapping

    def candidates(self, crc: int) -> list[tuple[int, int]]:
        """(physical, reference) entries currently indexed under ``crc``."""
        entry = self._hash_table.get(crc)
        if not entry:
            return []
        return list(entry.items())

    def candidate_entry(self, crc: int) -> dict[int, int] | None:
        """Live ``{physical: reference}`` dict under ``crc`` (None when absent).

        The batched detection path iterates this in place;
        :meth:`candidates` returns a defensive copy for everyone else.
        Callers must not mutate the returned dict.
        """
        return self._hash_table.get(crc)

    def content_crc(self, physical: int) -> int | None:
        """CRC of the content stored at a physical line (inverted table)."""
        return self._stored.get(physical)

    def holds_data(self, physical: int) -> bool:
        """FSM view: whether the physical line holds live content."""
        return physical in self._stored

    def reference_of(self, physical: int) -> int:
        """Reference count of the content at ``physical`` (0 if free)."""
        crc = self._stored.get(physical)
        if crc is None:
            return 0
        return self._hash_table[crc][physical]

    # -- counters & colocation ------------------------------------------

    def counter_slot(self, physical: int) -> TableName | Literal["overflow"]:
        """Where the per-line counter of ``physical`` resides (§III-C).

        If logical ``physical`` is not deduplicated its address-map slot is
        null and hosts the counter; else if physical ``physical`` holds no
        data its inverted-hash slot is null and hosts it; else both slots
        are occupied and the counter overflows.
        """
        if self._mapping.get(physical, physical) == physical:
            return "address_map"
        if physical not in self._stored:
            return "inverted_hash"
        return "overflow"

    def counter_of(self, physical: int, touches: list[MetadataTouch]) -> int:
        """Current encryption counter of a physical line."""
        self._touch_counter(physical, touches, write=False)
        return self._counters.get(physical)

    def peek_counter(self, physical: int) -> int:
        """Counter value without recording a metadata touch (timing-free)."""
        return self._counters.get(physical)

    def physical_of(self, logical: int) -> int | None:
        """Mapping lookup without recording a metadata touch (timing-free)."""
        return self._mapping.get(logical)

    def bump_counter(self, physical: int, touches: list[MetadataTouch]) -> int:
        """Increment and return the counter (called once per physical write)."""
        value = self._counters.add(physical, 1)
        self._touch_counter(physical, touches, write=True)
        return value

    def overflow_counters(self) -> int:
        """How many counters currently live in the overflow store."""
        return sum(1 for p in self._counters.keys() if self.counter_slot(p) == "overflow")

    def counter_items(self) -> tuple[tuple[int, int], ...]:
        """Snapshot of every (physical line, encryption counter) pair.

        Used by the runtime invariant checker to verify counters are
        monotonically non-decreasing across operations (§II-B pad
        uniqueness); a snapshot keeps the checker out of private state.
        """
        return tuple(self._counters.items())

    def _touch_counter(
        self, physical: int, touches: list[MetadataTouch], write: bool
    ) -> None:
        slot = self.counter_slot(physical)
        if slot == "overflow":
            # The overflow store is tiny and on-chip in our patched design;
            # charge it as an address-map touch so it is not free.
            touches.append(MetadataTouch("address_map", physical, write=write))
        else:
            touches.append(MetadataTouch(slot, physical, write=write))

    # -- state transitions -------------------------------------------------

    def apply_duplicate(
        self, logical: int, target: int, touches: list[MetadataTouch]
    ) -> None:
        """Record that ``logical``'s new content duplicates line ``target``.

        The caller (dedup engine) has already verified byte equality and
        that ``target``'s reference is below the cap.
        """
        crc = self._stored.get(target)
        if crc is None:
            raise DedupIndexError(f"duplicate target {target} holds no data")
        old = self._mapping.get(logical)
        if old == target:
            # Rewrite of identical content already mapped there: pure no-op.
            return
        ref = self._hash_table[crc][target]
        if ref >= self.reference_cap:
            raise DedupIndexError(f"target {target} reference saturated; caller must reject")
        self._release(logical, touches)
        self._mapping[logical] = target
        self._hash_table[crc][target] = ref + 1
        if ref + 1 == self.reference_cap:
            self.pinned_lines += 1
        touches.append(MetadataTouch("address_map", logical, write=True))
        touches.append(MetadataTouch("hash_table", crc, write=True))

    def apply_unique(self, logical: int, crc: int, touches: list[MetadataTouch]) -> int:
        """Store new unique content for ``logical``; returns the destination.

        Picks the logical line's own physical slot when free (the common
        case), otherwise allocates via the FSM table (a relocation).
        """
        self._release(logical, touches)
        if logical not in self._stored:
            dest = logical
        else:
            dest = self._allocate()
            self.relocations += 1
        self._stored[dest] = crc
        fresh_bucket = crc not in self._hash_table
        self._hash_table.setdefault(crc, {})[dest] = 1
        self._mapping[logical] = dest
        touches.append(MetadataTouch("inverted_hash", dest, write=True))
        touches.append(MetadataTouch("hash_table", crc, write=True, insert=fresh_bucket))
        touches.append(MetadataTouch("address_map", logical, write=True))
        touches.append(MetadataTouch("fsm", dest, write=True))
        return dest

    def _release(self, logical: int, touches: list[MetadataTouch]) -> None:
        """Drop ``logical``'s reference to its current content, freeing the
        physical line when it was the last reference."""
        old = self._mapping.pop(logical, None)
        if old is None:
            return
        crc_old = self._stored.get(old)
        if crc_old is None:
            raise DedupIndexError(f"mapping of {logical} points at empty line {old}")
        touches.append(MetadataTouch("inverted_hash", old, write=False))
        refs = self._hash_table[crc_old]
        ref = refs[old]
        if ref >= self.reference_cap:
            # Saturated entries lost their exact count; they stay pinned.
            return
        if ref == 1:
            del refs[old]
            if not refs:
                del self._hash_table[crc_old]
            del self._stored[old]
            self._free_stack.append(old)
            touches.append(MetadataTouch("hash_table", crc_old, write=True))
            touches.append(MetadataTouch("inverted_hash", old, write=True))
            touches.append(MetadataTouch("fsm", old, write=True))
        else:
            refs[old] = ref - 1
            touches.append(MetadataTouch("hash_table", crc_old, write=True))

    def _allocate(self) -> int:
        """Pop a free physical line (recycled first, then fresh top-down)."""
        while self._free_stack:
            candidate = self._free_stack.pop()
            if candidate not in self._stored:
                return candidate
        while self._next_fresh >= 0 and self._next_fresh in self._stored:
            self._next_fresh -= 1
        if self._next_fresh < 0:
            raise DedupIndexError("NVM device is full; no free line to allocate")
        fresh = self._next_fresh
        self._next_fresh -= 1
        return fresh

    # -- analysis helpers --------------------------------------------------

    def reference_histogram(self) -> Counter[int]:
        """Distribution of reference counts over live lines (Fig. 7)."""
        histogram: Counter[int] = Counter()
        for refs in self._hash_table.values():
            for ref in refs.values():
                histogram[ref] += 1
        return histogram

    def live_lines(self) -> int:
        """Physical lines currently holding data."""
        return len(self._stored)

    def deduplicated_logicals(self) -> int:
        """Logical lines currently mapped away from their own slot."""
        return sum(1 for logical, phys in self._mapping.items() if phys != logical)

    def check_invariants(self) -> None:
        """Assert cross-table consistency (used heavily by property tests).

        Invariants:
        - every mapping target holds data;
        - stored/inverted and hash-table entries mirror each other;
        - each entry's reference equals the number of logicals mapped to it
          (exact below the cap; at least the cap once saturated).
        """
        mapped_refs: Counter[int] = Counter(self._mapping.values())
        for logical, phys in self._mapping.items():
            if phys not in self._stored:
                raise DedupIndexError(f"mapping {logical}->{phys} targets an empty line")
        for phys, crc in self._stored.items():
            entry = self._hash_table.get(crc)
            if entry is None or phys not in entry:
                raise DedupIndexError(f"stored line {phys} missing from hash table")
            ref = entry[phys]
            if ref < self.reference_cap and ref != mapped_refs.get(phys, 0):
                raise DedupIndexError(
                    f"line {phys}: reference {ref} != mapped logicals {mapped_refs.get(phys, 0)}"
                )
        for crc, entries in self._hash_table.items():
            for phys in entries:
                if self._stored.get(phys) != crc:
                    raise DedupIndexError(f"hash entry {crc:#x}->{phys} not mirrored in inverted table")

    def verify(self) -> None:
        """Full consistency check: cross-table mirroring plus counter laws.

        Extends :meth:`check_invariants` with the encryption-counter
        contract the paper's §III-C colocation relies on: every physical
        line holding live data has been encrypted at least once (counter
        >= 1), counters are never negative, and every mapping stays inside
        the device.  Raises :class:`DedupIndexError` on the first breach.
        """
        self.check_invariants()
        for logical, phys in self._mapping.items():
            if not 0 <= logical < self.total_lines or not 0 <= phys < self.total_lines:
                raise DedupIndexError(
                    f"mapping {logical}->{phys} leaves the device [0, {self.total_lines})"
                )
        for phys, counter in self._counters.items():
            if counter < 0:
                raise DedupIndexError(f"line {phys} has negative counter {counter}")
        for phys in self._stored:
            if self._counters.get(phys) < 1:
                raise DedupIndexError(
                    f"line {phys} holds live data but was never encrypted (counter 0)"
                )


@dataclass(frozen=True)
class MetadataLayout:
    """Physical placement of the four tables inside the NVM (§III-B2).

    The metadata region sits at the top of the device; each table occupies a
    contiguous run of lines.  The timing layer maps a (table, cache-block)
    pair to a concrete NVM line so metadata traffic contends for banks like
    any other access.
    """

    total_lines: int
    line_size_bytes: int
    address_map_entry_bits: int = 33
    inverted_hash_entry_bits: int = 33
    hash_entry_bits: int = 72
    fsm_entry_bits: int = 1

    def _table_lines(self, entry_bits: int) -> int:
        line_bits = self.line_size_bytes * 8
        return max(1, (self.total_lines * entry_bits + line_bits - 1) // line_bits)

    @property
    def table_lines(self) -> dict[TableName, int]:
        """Lines occupied by each table."""
        return {
            "address_map": self._table_lines(self.address_map_entry_bits),
            "inverted_hash": self._table_lines(self.inverted_hash_entry_bits),
            "hash_table": self._table_lines(self.hash_entry_bits),
            "fsm": self._table_lines(self.fsm_entry_bits),
        }

    @property
    def metadata_lines(self) -> int:
        """Total lines consumed by metadata."""
        return sum(self.table_lines.values())

    @property
    def data_lines(self) -> int:
        """Lines left for application data."""
        remaining = self.total_lines - self.metadata_lines
        if remaining <= 0:
            raise ValueError("device too small to host the metadata region")
        return remaining

    def table_base(self, table: TableName) -> int:
        """First NVM line of a table's region."""
        base = self.data_lines
        for name in TABLE_NAMES:
            if name == table:
                return base
            base += self.table_lines[name]
        raise KeyError(f"unknown table {table!r}")

    def nvm_line_for(self, table: TableName, block_index: int) -> int:
        """NVM line backing one metadata cache block of ``table``."""
        lines = self.table_lines[table]
        return self.table_base(table) + block_index % lines
