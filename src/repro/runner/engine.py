"""Parallel experiment execution engine.

:func:`run_jobs` takes the planner's :class:`~repro.runner.jobs.JobSpec`
list and resolves every job, fanning cache misses out over a
``ProcessPoolExecutor``:

1. **dedupe** — jobs with equal ``identity`` collapse to one run (several
   figures share the same baseline-vs-DeWrite comparison);
2. **disk lookup** — warm cache entries are served without any process
   spawn (a fully warm run executes zero simulations);
3. **schedule** — misses run on ``--parallel N`` worker processes with a
   per-job timeout and retry-once-on-crash handling (a worker that raises
   *or* dies taking the pool down gets one resubmission; a second failure
   is recorded, not raised);
4. **prime** — every payload is pushed into the active
   :mod:`~repro.runner.provider` memo (and the disk cache), so the figure
   renderers that run afterwards hit warm results only.

Determinism: each job regenerates its trace from the seed carried inside
its spec and runs in isolation, so results are bit-identical whatever the
worker count or completion order — the engine only changes *where* a job
runs, never *what* it computes.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runner import provider as provider_module
from repro.runner.cache import ResultCache, job_key
from repro.runner.jobs import JobSpec, execute_job

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class JobFailure:
    """One job that failed even after its retry."""

    spec: JobSpec
    error: str
    attempts: int


@dataclass
class RunReport:
    """Outcome and accounting of one :func:`run_jobs` invocation."""

    planned: int = 0
    unique: int = 0
    disk_hits: int = 0
    executed: int = 0
    simulations: int = 0
    retries: int = 0
    failures: list[JobFailure] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True when every unique job produced a payload."""
        return not self.failures

    def cache_stats_line(self) -> str:
        """The run summary's cache-stats line (machine-greppable)."""
        return (
            f"cache-stats: {self.unique} unique jobs "
            f"({self.planned} planned), {self.disk_hits} warm from cache, "
            f"{self.executed} executed, {self.simulations} simulations executed, "
            f"{self.retries} retried, {len(self.failures)} failed "
            f"[{self.elapsed_s:.1f}s]"
        )


def _pool_worker(kind: str, params_json: str) -> dict[str, Any]:
    """Top-level (picklable) worker entry: execute one job by content."""
    return execute_job(JobSpec(kind, params_json))


def _execute_with_retry(
    spec: JobSpec, retries: int, report: RunReport
) -> dict[str, Any] | None:
    """Serial fallback path: run in-process, retrying once on any error."""
    for attempt in range(1, retries + 2):
        try:
            return execute_job(spec)
        except Exception as exc:  # noqa: BLE001 — a failed job must not kill the run
            if attempt <= retries:
                report.retries += 1
                continue
            report.failures.append(
                JobFailure(spec=spec, error=f"{type(exc).__name__}: {exc}", attempts=attempt)
            )
    return None


def run_jobs(
    jobs: list[JobSpec],
    *,
    parallel: int = 1,
    cache: ResultCache | None = None,
    job_timeout_s: float = 600.0,
    retries: int = 1,
    progress: ProgressFn | None = None,
    prime: bool = True,
) -> RunReport:
    """Resolve every job; fan cache misses out over worker processes.

    Args:
        jobs: planned specs (duplicates by identity are collapsed).
        parallel: worker process count; ``<= 1`` runs everything serially
            in this process (bit-identical results either way).
        cache: optional on-disk cache consulted before and written after
            every execution.
        job_timeout_s: per-job wall-clock budget; an overrun counts as a
            crash (retried once, then recorded as a failure).
        retries: resubmissions per job after a crash/timeout (default 1).
        progress: optional callback receiving one line per resolved job.
        prime: push results into the active provider memo so subsequent
            figure rendering in this process executes nothing.
    """
    started = time.monotonic()
    report = RunReport(planned=len(jobs))

    unique: dict[tuple[str, str], JobSpec] = {}
    for spec in jobs:
        unique.setdefault(spec.identity, spec)
    report.unique = len(unique)
    total = len(unique)

    results: dict[tuple[str, str], dict[str, Any]] = {}

    def note(spec: JobSpec, status: str) -> None:
        if progress is not None:
            progress(f"[{len(results) + len(report.failures)}/{total}] {spec.label}: {status}")

    # Phase 1 — disk lookups.
    misses: list[JobSpec] = []
    for identity, spec in unique.items():
        payload = cache.get(job_key(spec)) if cache is not None else None
        if payload is not None:
            results[identity] = payload
            report.disk_hits += 1
            note(spec, "cached")
        else:
            misses.append(spec)

    def record(spec: JobSpec, payload: dict[str, Any]) -> None:
        results[spec.identity] = payload
        report.executed += 1
        report.simulations += int(payload.get("simulations", 0))
        if cache is not None:
            cache.put(job_key(spec), payload, meta={"label": spec.label})
        note(spec, "done")

    # Phase 2 — execute misses (serial, or across a process pool).
    if parallel <= 1 or len(misses) <= 1:
        for spec in misses:
            payload = _execute_with_retry(spec, retries, report)
            if payload is not None:
                record(spec, payload)
            else:
                note(spec, "FAILED")
    elif misses:
        _run_pool(
            misses,
            parallel=parallel,
            job_timeout_s=job_timeout_s,
            retries=retries,
            record=record,
            report=report,
            note=note,
        )

    # Phase 3 — prime the in-process provider for the render phase.
    if prime:
        active = provider_module.active()
        for identity, payload in results.items():
            active.prime(unique[identity], payload)

    report.elapsed_s = time.monotonic() - started
    return report


def _run_pool(
    misses: list[JobSpec],
    *,
    parallel: int,
    job_timeout_s: float,
    retries: int,
    record: Callable[[JobSpec, dict[str, Any]], None],
    report: RunReport,
    note: Callable[[JobSpec, str], None],
) -> None:
    """Scheduler loop: submit, collect, enforce timeouts, retry crashes."""
    max_workers = min(parallel, len(misses))
    executor = ProcessPoolExecutor(max_workers=max_workers)
    pending: dict[Future, tuple[JobSpec, float, int]] = {}

    def fail(spec: JobSpec, error: str, attempt: int) -> None:
        report.failures.append(JobFailure(spec=spec, error=error, attempts=attempt))
        note(spec, f"FAILED ({error})")

    def submit(spec: JobSpec, attempt: int) -> None:
        future = executor.submit(_pool_worker, spec.kind, spec.params_json)
        pending[future] = (spec, time.monotonic() + job_timeout_s, attempt)

    def resubmit_or_fail(spec: JobSpec, error: str, attempt: int) -> None:
        if attempt <= retries:
            report.retries += 1
            submit(spec, attempt + 1)
        else:
            fail(spec, error, attempt)

    try:
        for spec in misses:
            submit(spec, 1)
        while pending:
            try:
                done, _ = wait(list(pending), timeout=0.25, return_when=FIRST_COMPLETED)
            except BrokenProcessPool:
                done = set()
            broken = False
            for future in done:
                spec, _deadline, attempt = pending.pop(future)
                try:
                    payload = future.result()
                except BrokenProcessPool:
                    # A worker died hard (segfault / os._exit): the whole
                    # pool is poisoned.  Rebuild it and resubmit everything
                    # still outstanding, charging each job one attempt.
                    broken = True
                    resubmit_later = [(spec, attempt)]
                    resubmit_later.extend(
                        (other, other_attempt)
                        for other, _d, other_attempt in pending.values()
                    )
                    pending.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = ProcessPoolExecutor(max_workers=max_workers)
                    for other, other_attempt in resubmit_later:
                        resubmit_or_fail(other, "worker process died", other_attempt)
                    break
                except Exception as exc:  # noqa: BLE001 — job errors are data
                    resubmit_or_fail(spec, f"{type(exc).__name__}: {exc}", attempt)
                else:
                    record(spec, payload)
            if broken:
                continue
            now = time.monotonic()
            for future, (spec, deadline, attempt) in list(pending.items()):
                if now <= deadline:
                    continue
                # A running worker cannot be interrupted; abandon the
                # future (its eventual result is ignored) and move on.
                future.cancel()
                del pending[future]
                resubmit_or_fail(spec, f"timeout after {job_timeout_s:.0f}s", attempt)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)


def stderr_progress(line: str) -> None:
    """Default progress sink: one line per job on stderr."""
    print(line, file=sys.stderr, flush=True)
